"""Tests for the SAT substrate: CNF container, Tseitin, CDCL vs brute force."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import parse
from repro.sat import (
    CDCLSolver,
    CNF,
    NotPropositional,
    assert_formula,
    encode,
    solve,
    solve_brute,
)
from repro.sat.cdcl import _luby


def cnf_of(*clauses):
    cnf = CNF()
    for clause in clauses:
        cnf.add(clause)
    return cnf


class TestCNF:
    def test_new_var_counts_up(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_named_vars_are_stable(self):
        cnf = CNF()
        a = cnf.var("a")
        b = cnf.var("b")
        assert cnf.var("a") == a
        assert a != b
        assert cnf.name_of(a) == "a"
        assert cnf.name_of(-a) == "a"

    def test_duplicate_name_rejected(self):
        cnf = CNF()
        cnf.new_var("x")
        with pytest.raises(ValueError):
            cnf.new_var("x")

    def test_add_rejects_zero_literal(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add([1, 0])

    def test_add_grows_num_vars(self):
        cnf = cnf_of([5, -7])
        assert cnf.num_vars == 7

    def test_dimacs_roundtrip(self):
        cnf = cnf_of([1, -2], [2, 3], [-1])
        text = cnf.to_dimacs()
        back = CNF.from_dimacs(text)
        assert back.clauses == cnf.clauses
        assert back.num_vars == cnf.num_vars

    def test_exactly_one(self):
        cnf = CNF()
        lits = [cnf.new_var() for _ in range(4)]
        cnf.add_exactly_one(lits)
        model = solve_brute(cnf)
        assert model is not None
        assert sum(model[abs(l)] for l in lits) == 1


class TestCDCLBasics:
    def test_empty_cnf_is_sat(self):
        assert solve(CNF())

    def test_unit_propagation(self):
        result = solve(cnf_of([1], [-1, 2], [-2, 3]))
        assert result
        assert result.value(1) and result.value(2) and result.value(3)

    def test_trivial_unsat(self):
        assert not solve(cnf_of([1], [-1]))

    def test_empty_clause_unsat(self):
        cnf = CNF()
        cnf.clauses.append([])
        # normalise through the solver's add path instead
        solver = CDCLSolver(cnf_of([1]))
        solver.add_clause([])
        assert not solver.solve()

    def test_pigeonhole_3_in_2_unsat(self):
        # 3 pigeons, 2 holes: var p(i,h) = 2*i + h + 1
        cnf = CNF()
        def v(i, h):
            return 2 * i + h + 1
        for i in range(3):
            cnf.add([v(i, 0), v(i, 1)])
        for h in range(2):
            for i in range(3):
                for j in range(i + 1, 3):
                    cnf.add([-v(i, h), -v(j, h)])
        assert not solve(cnf)

    def test_model_satisfies_all_clauses(self):
        cnf = cnf_of([1, 2, 3], [-1, -2], [-2, -3], [2, 3])
        result = solve(cnf)
        assert result
        for clause in cnf.clauses:
            assert any(result.value(lit) for lit in clause)

    def test_statistics_reported(self):
        result = solve(cnf_of([1, 2], [-1, 2], [1, -2], [-1, -2, 3]))
        assert result.propagations >= 0
        assert result.conflicts >= 0

    def test_stats_method_reports_work(self):
        solver = CDCLSolver(cnf_of([1, 2], [-1, 2], [1, -2], [-1, -2, 3]))
        assert solver.solve()
        stats = solver.stats()
        for key in (
            "propagations",
            "conflicts",
            "decisions",
            "restarts",
            "clause_visits",
            "learnt_clauses",
            "clauses",
            "vars",
        ):
            assert key in stats, key
        assert stats["propagations"] > 0
        assert stats["vars"] == 3

    def test_unknown_propagation_mode_rejected(self):
        with pytest.raises(ValueError):
            CDCLSolver(cnf_of([1]), propagation="magic")


pigeonhole = CNF.pigeonhole


class TestRestartsAndLuby:
    def test_luby_sequence_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_restarts_follow_luby_with_short_interval(self):
        # restart_interval=1 restarts after every 1*luby(i) conflicts, so a
        # conflict-heavy instance must restart and still answer correctly.
        solver = CDCLSolver(pigeonhole(5, 4), restart_interval=1)
        result = solver.solve()
        assert not result
        assert solver.stats()["restarts"] >= 1
        assert result.restarts == solver.stats()["restarts"]

    def test_default_interval_rarely_restarts_on_small_instances(self):
        solver = CDCLSolver(cnf_of([1, 2], [-1, 2]))
        assert solver.solve()
        assert solver.stats()["restarts"] == 0


class TestClauseMinimisation:
    def test_self_subsumed_literal_dropped(self):
        # 1 (decision) propagates 2 via (-1 v 2).  In a learnt clause
        # [x, -2, -1] the literal -2 is redundant: its reason's other
        # literal -1 is already in the clause.
        solver = CDCLSolver(cnf_of([-1, 2]))
        solver.add_clause([-3, 1])  # give variable 3 a home
        solver.trail_lim.append(len(solver.trail))
        assert solver._enqueue(1, None)
        assert solver._propagate() is None
        assert solver._value(2) == 1 and solver.reason[2] is not None
        seen = [False] * (solver.num_vars + 1)
        learnt = solver._minimise([-3, -2, -1], seen)
        assert learnt == [-3, -1]
        assert seen == [False] * (solver.num_vars + 1)  # scratch state restored

    def test_decision_literal_never_dropped(self):
        solver = CDCLSolver(cnf_of([-1, 2]))
        solver.trail_lim.append(len(solver.trail))
        assert solver._enqueue(1, None)
        assert solver._propagate() is None
        seen = [False] * (solver.num_vars + 1)
        assert solver._minimise([2, -1], seen) == [2, -1]


class TestPropagationSchemes:
    def test_scan_mode_agrees_on_pigeonhole(self):
        cnf = pigeonhole(4, 3)
        assert not CDCLSolver(cnf, propagation="watch").solve()
        assert not CDCLSolver(cnf, propagation="scan").solve()

    def test_watchers_visit_fewer_clauses_per_propagation(self):
        cnf = pigeonhole(6, 5)
        watch = CDCLSolver(cnf, propagation="watch")
        scan = CDCLSolver(cnf, propagation="scan")
        assert not watch.solve() and not scan.solve()
        watch_rate = watch.clause_visits / max(1, watch.propagations)
        scan_rate = scan.clause_visits / max(1, scan.propagations)
        assert watch_rate * 2 <= scan_rate, (watch_rate, scan_rate)

    def test_incremental_solving_in_scan_mode(self):
        solver = CDCLSolver(cnf_of([1, 2]), propagation="scan")
        assert solver.solve()
        solver.add_clause([-1])
        result = solver.solve()
        assert result and result.value(2)
        solver.add_clause([-2])
        assert not solver.solve()


class TestDatabaseReduction:
    """Learnt-clause DB reduction with literal-block-distance scoring."""

    def test_reduction_drops_clauses_and_preserves_verdict(self):
        cnf = pigeonhole(6, 5)
        for mode in ("watch", "scan"):
            solver = CDCLSolver(cnf, propagation=mode, reduce_interval=20)
            assert not solver.solve()
            stats = solver.stats()
            assert stats["learnt_dropped"] > 0, mode
            assert stats["learnt_kept"] >= 0
            # The live DB is what the stats count; tombstones are excluded.
            live = sum(1 for clause in solver.clauses if clause is not None)
            assert stats["clauses"] == live

    def test_reduction_disabled_keeps_everything(self):
        solver = CDCLSolver(pigeonhole(6, 5), reduce_interval=0)
        assert not solver.solve()
        assert solver.stats()["learnt_dropped"] == 0

    def test_stats_gain_reduction_counters(self):
        solver = CDCLSolver(cnf_of([1, 2], [-1, 2]))
        assert solver.solve()
        stats = solver.stats()
        assert "learnt_kept" in stats
        assert "learnt_dropped" in stats

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            CDCLSolver(cnf_of([1]), reduce_interval=-1)

    def test_reduction_is_deterministic(self):
        cnf = pigeonhole(6, 5)
        first = CDCLSolver(cnf, reduce_interval=10)
        second = CDCLSolver(cnf, reduce_interval=10)
        assert not first.solve() and not second.solve()
        assert first.stats() == second.stats()

    @pytest.mark.parametrize("seed", range(15))
    def test_aggressive_reduction_agrees_with_brute_force(self, seed):
        rng = random.Random(9000 + seed)
        cnf = random_cnf(rng, num_vars=8, num_clauses=rng.randint(20, 45))
        solver = CDCLSolver(cnf, reduce_interval=3)
        result = solver.solve()
        brute = solve_brute(cnf)
        assert bool(result) == (brute is not None)
        if result:
            for clause in cnf.clauses:
                assert any(result.value(lit) for lit in clause)

    def test_glue_and_binary_clauses_survive(self):
        solver = CDCLSolver(pigeonhole(6, 5), reduce_interval=10)
        assert not solver.solve()
        for index in solver.learnt:
            clause = solver.clauses[index]
            assert clause is not None
            # Everything the reducer may keep indefinitely is glue, short,
            # or simply hasn't been the worse half yet — but nothing
            # tombstoned may linger in the live list.
        for index, lbd in solver.lbd.items():
            assert solver.clauses[index] is not None
            assert lbd >= 1


class TestAssumptions:
    def test_sat_under_assumptions(self):
        cnf = cnf_of([1, 2])
        result = solve(cnf, assumptions=[-1])
        assert result
        assert result.value(2)

    def test_unsat_under_assumptions_reports_core(self):
        cnf = cnf_of([-1, 2], [-2, 3])
        result = solve(cnf, assumptions=[1, -3])
        assert not result
        assert result.failed_assumptions
        assert set(result.failed_assumptions) <= {1, -3}

    def test_solver_reusable_after_assumption_unsat(self):
        solver = CDCLSolver(cnf_of([-1, 2]))
        assert not solver.solve(assumptions=[1, -2])
        assert solver.solve(assumptions=[1])
        assert solver.solve()

    def test_incremental_clause_addition(self):
        solver = CDCLSolver(cnf_of([1, 2]))
        assert solver.solve()
        solver.add_clause([-1])
        result = solver.solve()
        assert result and result.value(2)
        solver.add_clause([-2])
        assert not solver.solve()


class TestTseitin:
    def test_simple_formulas(self):
        for text, expected in [
            ("a && !a", False),
            ("a || !a", True),
            ("(a -> b) && a && !b", False),
            ("(a <-> b) && a", True),
            ("true", True),
            ("false", False),
        ]:
            cnf = CNF()
            assert_formula(parse(text), cnf)
            assert bool(solve(cnf)) == expected, text

    def test_shared_atoms_share_variables(self):
        cnf = CNF()
        lit1 = encode(parse("a"), cnf)
        lit2 = encode(parse("a && a"), cnf)
        cnf.add([lit1])
        cnf.add([-lit2])
        assert not solve(cnf)

    def test_temporal_rejected(self):
        cnf = CNF()
        with pytest.raises(NotPropositional):
            encode(parse("X a"), cnf)

    def test_model_matches_semantics(self):
        formula = parse("(a || b) && (!a || c) && (a <-> !b)")
        cnf = CNF()
        assert_formula(formula, cnf)
        result = solve(cnf)
        assert result
        a, b, c = (result.model[cnf.var(n)] for n in "abc")
        assert (a or b) and ((not a) or c) and (a == (not b))


def random_cnf(rng: random.Random, num_vars: int, num_clauses: int) -> CNF:
    cnf = CNF()
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        clause = []
        for _ in range(width):
            var = rng.randint(1, num_vars)
            clause.append(var if rng.random() < 0.5 else -var)
        cnf.add(clause)
    cnf.num_vars = max(cnf.num_vars, num_vars)
    return cnf


class TestCDCLAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_instances_agree(self, seed):
        rng = random.Random(seed)
        cnf = random_cnf(rng, num_vars=8, num_clauses=rng.randint(5, 40))
        brute = solve_brute(cnf)
        result = solve(cnf)
        assert bool(result) == (brute is not None)
        if result:
            for clause in cnf.clauses:
                assert any(result.value(lit) for lit in clause)

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_instances_agree(self, seed):
        rng = random.Random(seed)
        cnf = random_cnf(rng, num_vars=6, num_clauses=rng.randint(1, 30))
        brute = solve_brute(cnf)
        result = solve(cnf)
        assert bool(result) == (brute is not None)

    @pytest.mark.parametrize("seed", range(10))
    def test_assumptions_agree_with_unit_clauses(self, seed):
        rng = random.Random(1000 + seed)
        cnf = random_cnf(rng, num_vars=7, num_clauses=20)
        assumptions = [rng.choice([1, -1]) * rng.randint(1, 7) for _ in range(3)]
        with_units = CNF()
        with_units.add_all(cnf.clauses)
        consistent = len({abs(a) for a in assumptions}) == len(assumptions) or True
        for a in assumptions:
            with_units.add([a])
        expected = bool(solve(with_units))
        got = bool(solve(cnf, assumptions=assumptions))
        assert got == expected


class TestBruteForce:
    def test_cap_enforced(self):
        cnf = CNF()
        cnf.num_vars = 50
        with pytest.raises(ValueError):
            solve_brute(cnf)

    def test_unsat_detected(self):
        assert solve_brute(cnf_of([1], [-1])) is None
