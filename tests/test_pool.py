"""Tests of the persistent sharded worker pool (service/pool.py).

The contract under test: canonical reports are byte-identical across
every backend and every shard count, repeated documents land on warm
worker caches (observable through ``pool.stats()``), and the shared-pool
registry hands the same pool to equivalent tool setups.

The fault-injection half (``TestFaultInjection``) drives the supervision
layer through every scheduled failure mode — worker crash, hung worker,
mid-pipeline raise, respawn that keeps failing — and asserts the *same*
byte-identity contract plus exact recovery counters (deterministic
because dispatch is serialized per shard and the fault plan is seeded).
"""

from __future__ import annotations

import json

import pytest

from repro import BatchChecker, SpecCC, SpecCCConfig
from repro.service.faults import FaultPlan, FaultSpec
from repro.service.pool import (
    WorkerPool,
    document_signature,
    shared_pool,
    shutdown_shared_pools,
)
from repro.service.supervision import SupervisionConfig, backoff_delay

DOCS = [
    ("consistent", "If the sensor is active, the valve is opened.\n"),
    (
        "repairable",
        "If the session is active, the page is displayed.\n"
        "If the notice is posted, the page is not displayed.\n",
    ),
    ("unsat", "The valve is opened.\nThe valve is not opened.\n"),
    (
        "two-components",
        "If the button is pressed, the lamp is activated.\n"
        "If the alarm is issued, the door is not opened.\n",
    ),
    (
        "antonyms",  # a two-dependent subject: drives the semantics memo
        "If the feed is valid, the lamp is activated.\n"
        "If the feed is invalid, the lamp is not activated.\n",
    ),
]


#: The 13-document corpus of the fault-recovery acceptance criterion:
#: the five base documents plus simple variations, so a mid-corpus crash
#: has plenty of siblings before and after it.
CORPUS13 = DOCS + [
    ("c6", "If the door is closed, the fan is started.\n"),
    ("c7", "If the mode is manual, the heater is enabled.\n"),
    ("c8", "The pump is started.\nThe pump is not started.\n"),
    ("c9", "If the switch is pressed, the light is enabled.\n"),
    ("c10", "If the tank is full, the pump is not started.\n"),
    ("c11", "If the level is high, the drain is opened.\n"),
    ("c12", "If the signal is received, the motor is stopped.\n"),
    ("c13", "If the guard is closed, the press is released.\n"),
]

#: Fast supervision defaults for tests: real backoff shape, tiny delays.
FAST = dict(backoff_base=0.01, backoff_cap=0.05)


def canonical(results) -> list:
    return [json.dumps(result.data, sort_keys=True) for result in results]


@pytest.fixture(autouse=True, scope="module")
def _registry_cleanup():
    yield
    shutdown_shared_pools()


class TestDocumentSignature:
    def test_stable_for_identical_content(self):
        assert document_signature(DOCS[0][1]) == document_signature(DOCS[0][1])

    def test_distinguishes_content(self):
        signatures = {document_signature(text) for _, text in DOCS}
        assert len(signatures) == len(DOCS)

    def test_distinguishes_document_shape(self):
        text = "If the sensor is active, the valve is opened."
        assert document_signature(text) != document_signature([("R1", text)])

    def test_pair_identifiers_matter(self):
        text = "If the sensor is active, the valve is opened."
        assert document_signature([("R1", text)]) != document_signature(
            [("R2", text)]
        )


class TestWorkerPool:
    def test_reports_byte_identical_across_backends_and_shards(self):
        """The acceptance criterion: thread, fresh-process and persistent
        pool (at several shard counts) all emit the sequential bytes."""
        sequential = canonical(BatchChecker(workers=1).check_documents(DOCS))
        assert canonical(BatchChecker(workers=4).check_documents(DOCS)) == sequential
        assert (
            canonical(
                BatchChecker(workers=2, backend="process-fresh").check_documents(
                    DOCS
                )
            )
            == sequential
        )
        for shards in (1, 2, 4):
            with WorkerPool(shards=shards) as pool:
                tasks = pool.check_documents(DOCS)
                assert [
                    json.dumps(task.data, sort_keys=True) for task in tasks
                ] == sequential, f"shards={shards}"
                assert [task.name for task in tasks] == [name for name, _ in DOCS]

    def test_repeated_corpus_hits_warm_worker_caches(self):
        """Second pass over the same corpus must be served from the
        workers' component-outcome LRUs: no new misses, only hits."""
        SpecCC.clear_caches()  # forked workers must start cold
        with WorkerPool(shards=2, prewarm=False) as pool:
            pool.check_documents(DOCS)
            first = pool.stats()
            assert first["worker_cache"]["misses"] > 0

            pool.check_documents(DOCS)
            second = pool.stats()

        assert second["worker_cache"]["misses"] == first["worker_cache"]["misses"]
        assert (
            second["worker_cache"]["hits"]
            >= first["worker_cache"]["hits"] + len(DOCS)
        )
        # The Algorithm 1 memo warms the same way: the corpus has antonym
        # vocabulary, and the second pass replays none of it.
        assert first["worker_semantics"]["misses"] > 0
        assert (
            second["worker_semantics"]["misses"]
            == first["worker_semantics"]["misses"]
        )
        assert second["worker_semantics"]["hits"] > first["worker_semantics"]["hits"]
        assert second["affinity_repeats"] == len(DOCS)
        assert second["distinct_signatures"] == len(DOCS)
        assert second["tasks"] == 2 * len(DOCS)
        assert sum(second["per_shard"]) == second["tasks"]
        assert second["worker_cache"]["hit_rate"] > 0

    def test_same_document_always_routes_to_same_shard(self):
        with WorkerPool(shards=4) as pool:
            shard = pool.shard_of(DOCS[0][1])
            for _ in range(3):
                pool.submit("again", DOCS[0][1]).result()
            stats = pool.stats()
            assert stats["per_shard"][shard] == 3
            assert sum(stats["per_shard"]) == 3

    def test_startup_seconds_reported_once(self):
        pool = WorkerPool(shards=1)
        try:
            assert pool.stats()["started"] is False
            first = pool.ensure_started()
            assert first > 0
            assert pool.ensure_started() == first  # idempotent
            assert pool.stats()["startup_seconds"] == first
        finally:
            pool.shutdown()

    def test_worker_snapshots_are_per_shard(self):
        with WorkerPool(shards=2, prewarm=False) as pool:
            pool.check_documents(DOCS)
            snapshots = pool.worker_snapshots()
        assert len(snapshots) == 2
        for snapshot in snapshots:
            assert "component_cache" in snapshot
            assert "semantics" in snapshot
            assert "synthesis" in snapshot
        # The corpus was split over the shards, so at least one worker
        # actually analysed something.
        assert any(s["component_cache"]["misses"] > 0 for s in snapshots)

    def test_worker_errors_yield_error_records_not_exceptions(self):
        """Per-document isolation: a document whose pipeline raises
        resolves to the shared error record — the future never raises,
        siblings are unaffected, and the failure is counted."""
        with WorkerPool(shards=1, prewarm=False) as pool:
            bad = pool.submit("bad", [("R1", "")]).result()
            good = pool.submit("good", DOCS[0][1]).result()
            assert bad.error is not None
            assert bad.data["verdict"] == "error"
            assert bad.data["consistent"] is False
            assert bad.data["error"]["type"] == "StructuredEnglishError"
            assert good.error is None
            assert good.data["consistent"] is True
            stats = pool.stats()
            assert stats["failures"] == 1
            assert stats["supervision"]["error_records"] == 1
            # A deterministic document error is retried max_attempts
            # times before the record is emitted, on the same worker.
            assert stats["supervision"]["task_errors"] == 3
            assert stats["spawns"] == [0]

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            WorkerPool(shards=0)

    def test_shutdown_rejects_new_work(self):
        pool = WorkerPool(shards=1)
        pool.ensure_started()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit("late", DOCS[0][1])


class TestSharedRegistry:
    def test_same_setup_reuses_the_pool(self):
        first = shared_pool(shards=2)
        second = shared_pool(shards=2)
        assert first is second

    def test_distinct_shard_counts_get_distinct_pools(self):
        assert shared_pool(shards=2) is not shared_pool(shards=3)

    def test_distinct_dictionaries_get_distinct_pools(self):
        from repro.nlp.antonyms import AntonymDictionary

        dictionary = AntonymDictionary.default()
        dictionary.add_pair("active", "normal")
        custom = shared_pool(tool=SpecCC(dictionary=dictionary), shards=2)
        assert custom is not shared_pool(shards=2)

    def test_batchchecker_process_backend_uses_registry(self):
        sequential = canonical(BatchChecker(workers=1).check_documents(DOCS))
        pooled = BatchChecker(workers=2, backend="process").check_documents(DOCS)
        assert canonical(pooled) == sequential
        # A second checker with the same setup reuses the same warm pool.
        pool = shared_pool(shards=2)
        before = pool.stats()["tasks"]
        BatchChecker(workers=2, backend="process").check_documents(DOCS)
        assert shared_pool(shards=2).stats()["tasks"] == before + len(DOCS)

    def test_injected_pool_wins_over_registry(self):
        with WorkerPool(shards=1) as pool:
            checker = BatchChecker(workers=4, backend="process", pool=pool)
            results = checker.check_documents(DOCS[:2])
            assert [r.name for r in results] == [name for name, _ in DOCS[:2]]
            assert pool.stats()["tasks"] == 2

    def test_closed_pool_is_replaced_not_handed_out(self):
        first = shared_pool(shards=2)
        first.shutdown()
        second = shared_pool(shards=2)
        assert second is not first
        assert not second.closed

    def test_registry_shutdown_is_idempotent_and_tolerant(self):
        pool = shared_pool(shards=2)
        pool.ensure_started()
        # A pool shut down out from under the registry (supervisors and
        # tests do this) must not break the exit hook, and repeated
        # registry shutdowns must be no-ops.
        pool.shutdown()
        shutdown_shared_pools()
        shutdown_shared_pools()
        assert shared_pool(shards=2) is not pool


class TestFaultPlan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="explode")

    def test_json_roundtrip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="crash", shard=1, task=2, max_spawn=0),
                FaultSpec(kind="delay", seconds=0.5, times=-1),
            ),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_plan_keys_are_rejected(self):
        """A typo'd plan must fail loudly, not silently inject nothing."""
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_json('{"seed": 1, "fautls": []}')

    def test_from_env(self):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", task=0),), seed=3)
        environ = {"REPRO_FAULTS": plan.to_json()}
        assert FaultPlan.from_env(environ) == plan
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULTS": "  "}) is None

    def test_spawn_window_matching(self):
        spec = FaultSpec(kind="crash", shard=1, min_spawn=1, max_spawn=2)
        assert not spec.matches_worker(shard=0, spawn=1)
        assert not spec.matches_worker(shard=1, spawn=0)
        assert spec.matches_worker(shard=1, spawn=1)
        assert spec.matches_worker(shard=1, spawn=2)
        assert not spec.matches_worker(shard=1, spawn=3)

    def test_backoff_delay_is_deterministic_and_bounded(self):
        config = SupervisionConfig(seed=7)
        first = backoff_delay(config, "doc", 1)
        assert first == backoff_delay(config, "doc", 1)
        assert first != backoff_delay(SupervisionConfig(seed=8), "doc", 1)
        for attempt in range(1, 8):
            delay = backoff_delay(config, "doc", attempt)
            assert 0 < delay <= config.backoff_cap * (1 + config.jitter)


class TestFaultInjection:
    """The acceptance criteria: every scheduled failure recovers to
    byte-identical reports, with exact recovery counters."""

    def test_crash_mid_corpus_recovers_byte_identical(self):
        """Kill shard K's worker on its Nth task mid-13-doc-corpus: the
        batch completes, bytes match ``workers=1``, and the counters
        match the plan exactly — one death, one restart, one retry."""
        sequential = canonical(
            BatchChecker(workers=1).check_documents(CORPUS13)
        )
        shards = 2
        # Pick a shard that receives a third task to crash on: matching
        # is positional (per-worker task ordinal), so the test computes
        # the routing the same way the pool does.
        per_shard = [0] * shards
        for _, document in CORPUS13:
            per_shard[int(document_signature(document), 16) % shards] += 1
        target = max(range(shards), key=lambda shard: per_shard[shard])
        assert per_shard[target] >= 3
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="crash", shard=target, task=2, max_spawn=0),
            ),
            seed=11,
        )
        pool = WorkerPool(
            shards=shards,
            prewarm=False,
            fault_plan=plan,
            supervision=SupervisionConfig(seed=plan.seed, **FAST),
        )
        with pool:
            tasks = pool.check_documents(CORPUS13)
            got = [json.dumps(task.data, sort_keys=True) for task in tasks]
            stats = pool.stats()
        assert got == sequential
        assert all(task.error is None for task in tasks)
        supervision = stats["supervision"]
        assert supervision["worker_deaths"] == 1
        assert supervision["restarts"] == 1
        assert supervision["retries"] == 1
        assert supervision["attempts"] == len(CORPUS13) + 1
        assert supervision["timeouts"] == 0
        assert supervision["degraded_tasks"] == 0
        assert supervision["degraded"] is False
        assert stats["spawns"][target] == 1
        assert sum(stats["spawns"]) == 1
        assert stats["failures"] == 0

    def test_hung_worker_times_out_and_recovers(self):
        """A delay fault + watchdog timeout: the hung worker is killed,
        respawned, and the task retried — reports stay byte-identical."""
        docs = DOCS[:3]
        sequential = canonical(BatchChecker(workers=1).check_documents(docs))
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="delay", task=0, seconds=30.0, max_spawn=0),
            ),
            seed=5,
        )
        pool = WorkerPool(
            shards=1,
            prewarm=False,
            fault_plan=plan,
            supervision=SupervisionConfig(
                seed=plan.seed, task_timeout=2.0, **FAST
            ),
        )
        with pool:
            tasks = pool.check_documents(docs)
            got = [json.dumps(task.data, sort_keys=True) for task in tasks]
            supervision = pool.stats()["supervision"]
        assert got == sequential
        assert supervision["timeouts"] == 1
        assert supervision["restarts"] == 1
        assert supervision["retries"] == 1
        assert supervision["degraded"] is False

    def test_timeout_then_degraded_fallback_end_to_end(self):
        """Every spawn hangs on every task: timeout → respawn → retry →
        timeout again → attempts exhausted → in-process fallback.  The
        results are still byte-identical and the degradation is
        counted, never silent."""
        docs = DOCS[:2]
        sequential = canonical(BatchChecker(workers=1).check_documents(docs))
        plan = FaultPlan(
            specs=(FaultSpec(kind="delay", seconds=30.0, times=-1),),
            seed=9,
        )
        pool = WorkerPool(
            shards=1,
            prewarm=False,
            fault_plan=plan,
            supervision=SupervisionConfig(
                seed=plan.seed, task_timeout=0.5, max_attempts=2, **FAST
            ),
        )
        with pool:
            tasks = pool.check_documents(docs)
            got = [json.dumps(task.data, sort_keys=True) for task in tasks]
            supervision = pool.stats()["supervision"]
        assert got == sequential
        assert all(task.error is None for task in tasks)
        assert supervision["degraded_tasks"] == len(docs)
        assert supervision["degraded"] is True
        assert supervision["timeouts"] == 2 * len(docs)
        assert supervision["restarts"] == 2 * len(docs)

    def test_respawn_failure_trips_circuit_breaker(self):
        """Respawn forced to keep failing (``crash_init`` aimed at every
        respawn generation): the circuit breaker opens, the whole corpus
        still completes byte-identically on the in-process path, and
        ``degraded=True`` is surfaced in stats."""
        docs = DOCS[:3]
        sequential = canonical(BatchChecker(workers=1).check_documents(docs))
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="crash", task=0, max_spawn=0),
                FaultSpec(kind="crash_init", min_spawn=1, times=-1),
            ),
            seed=13,
        )
        pool = WorkerPool(
            shards=1,
            prewarm=False,
            fault_plan=plan,
            supervision=SupervisionConfig(
                seed=plan.seed, max_respawn_failures=2, **FAST
            ),
        )
        with pool:
            tasks = pool.check_documents(docs)
            got = [json.dumps(task.data, sort_keys=True) for task in tasks]
            stats = pool.stats()
        assert got == sequential
        supervision = stats["supervision"]
        assert supervision["circuit_open"] is True
        assert supervision["degraded"] is True
        assert supervision["degraded_tasks"] == len(docs)
        assert supervision["respawn_failures"] == 2
        assert supervision["worker_deaths"] == 1
        assert stats["failures"] == 0

    def test_pipeline_raise_fault_is_retried_on_same_worker(self):
        """A ``raise`` fault fires once inside ``check_translated``; the
        supervisor retries on the same (healthy) worker, where the
        fired-count keeps it from re-firing — no respawn needed."""
        docs = DOCS[:2]
        sequential = canonical(BatchChecker(workers=1).check_documents(docs))
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="raise", task=0, stage="check_translated"),
            ),
            seed=17,
        )
        pool = WorkerPool(
            shards=1,
            prewarm=False,
            fault_plan=plan,
            supervision=SupervisionConfig(seed=plan.seed, **FAST),
        )
        with pool:
            tasks = pool.check_documents(docs)
            got = [json.dumps(task.data, sort_keys=True) for task in tasks]
            supervision = pool.stats()["supervision"]
        assert got == sequential
        assert supervision["task_errors"] == 1
        assert supervision["retries"] == 1
        assert supervision["restarts"] == 0
        assert supervision["worker_deaths"] == 0
        assert supervision["degraded"] is False

    def test_batchchecker_process_backend_survives_crash(self):
        """The acceptance criterion at the BatchChecker surface: a
        seeded crash plan, ``backend="process"``, full 13-doc corpus,
        byte-identical output."""
        sequential = canonical(
            BatchChecker(workers=1).check_documents(CORPUS13)
        )
        plan = FaultPlan(
            specs=(FaultSpec(kind="crash", task=1, max_spawn=0),),
            seed=23,
        )
        with WorkerPool(
            shards=2,
            prewarm=False,
            fault_plan=plan,
            supervision=SupervisionConfig(seed=plan.seed, **FAST),
        ) as pool:
            checker = BatchChecker(workers=2, backend="process", pool=pool)
            results = checker.check_documents(CORPUS13)
            supervision = pool.stats()["supervision"]
        assert canonical(results) == sequential
        # task=1 with shard=None: each shard's worker crashes on its
        # second task — two deaths, two restarts, two retries, exactly.
        assert supervision["worker_deaths"] == 2
        assert supervision["restarts"] == 2
        assert supervision["retries"] == 2


class TestAggregateStatsAcrossPools:
    """The fleet-level supervision summary (satellite of the
    observability tier): one ``aggregate_stats`` row over many pools —
    including pools that have already been shut down, whose counters
    must still contribute."""

    def test_two_live_pools_plus_one_closed_pool(self):
        from repro.service.supervision import aggregate_stats

        # Pool 1: a scheduled mid-pipeline raise -> one task error, one
        # retry, non-zero recovery counters to make the sum meaningful.
        plan = FaultPlan(
            specs=(FaultSpec(kind="raise", task=0, max_spawn=0),),
            seed=21,
        )
        faulty = WorkerPool(
            shards=1,
            prewarm=False,
            fault_plan=plan,
            supervision=SupervisionConfig(seed=plan.seed, **FAST),
        )
        clean = WorkerPool(shards=1, prewarm=False)
        retired = WorkerPool(shards=1, prewarm=False)
        with retired:
            retired.check_documents(DOCS[:1])
        assert retired.closed  # stats() must keep working afterwards

        with faulty, clean:
            faulty.check_documents(DOCS[:2])
            clean.check_documents(DOCS[:2])
            rows = [faulty.stats(), clean.stats(), retired.stats()]

        total = aggregate_stats(rows)
        per_pool = [row["supervision"] for row in rows]
        assert per_pool[0]["task_errors"] == 1
        assert per_pool[0]["retries"] == 1
        assert per_pool[2]["attempts"] == 1  # the closed pool's history
        for key in (
            "attempts",
            "retries",
            "restarts",
            "timeouts",
            "worker_deaths",
            "task_errors",
            "respawn_failures",
            "degraded_tasks",
            "error_records",
        ):
            assert total[key] == sum(stats[key] for stats in per_pool), key
        assert total["attempts"] == 6  # 2 + 1 retry, 2, 1
        assert total["degraded"] is False
        assert total["circuit_open"] is False

    def test_boolean_flags_aggregate_by_any_and_junk_rows_are_skipped(self):
        from repro.service.supervision import aggregate_stats

        rows = [
            {"supervision": {"attempts": 2, "degraded": True}},
            {"supervision": {"attempts": 3, "circuit_open": True}},
            {},  # a row with no supervision block contributes nothing
            {"supervision": None},
            "not-a-dict",
        ]
        total = aggregate_stats(rows)
        assert total["attempts"] == 5
        assert total["degraded"] is True
        assert total["circuit_open"] is True
