"""Tests of the persistent sharded worker pool (service/pool.py).

The contract under test: canonical reports are byte-identical across
every backend and every shard count, repeated documents land on warm
worker caches (observable through ``pool.stats()``), and the shared-pool
registry hands the same pool to equivalent tool setups.
"""

from __future__ import annotations

import json

import pytest

from repro import BatchChecker, SpecCC, SpecCCConfig
from repro.service.pool import (
    WorkerPool,
    document_signature,
    shared_pool,
    shutdown_shared_pools,
)

DOCS = [
    ("consistent", "If the sensor is active, the valve is opened.\n"),
    (
        "repairable",
        "If the session is active, the page is displayed.\n"
        "If the notice is posted, the page is not displayed.\n",
    ),
    ("unsat", "The valve is opened.\nThe valve is not opened.\n"),
    (
        "two-components",
        "If the button is pressed, the lamp is activated.\n"
        "If the alarm is issued, the door is not opened.\n",
    ),
    (
        "antonyms",  # a two-dependent subject: drives the semantics memo
        "If the feed is valid, the lamp is activated.\n"
        "If the feed is invalid, the lamp is not activated.\n",
    ),
]


def canonical(results) -> list:
    return [json.dumps(result.data, sort_keys=True) for result in results]


@pytest.fixture(autouse=True, scope="module")
def _registry_cleanup():
    yield
    shutdown_shared_pools()


class TestDocumentSignature:
    def test_stable_for_identical_content(self):
        assert document_signature(DOCS[0][1]) == document_signature(DOCS[0][1])

    def test_distinguishes_content(self):
        signatures = {document_signature(text) for _, text in DOCS}
        assert len(signatures) == len(DOCS)

    def test_distinguishes_document_shape(self):
        text = "If the sensor is active, the valve is opened."
        assert document_signature(text) != document_signature([("R1", text)])

    def test_pair_identifiers_matter(self):
        text = "If the sensor is active, the valve is opened."
        assert document_signature([("R1", text)]) != document_signature(
            [("R2", text)]
        )


class TestWorkerPool:
    def test_reports_byte_identical_across_backends_and_shards(self):
        """The acceptance criterion: thread, fresh-process and persistent
        pool (at several shard counts) all emit the sequential bytes."""
        sequential = canonical(BatchChecker(workers=1).check_documents(DOCS))
        assert canonical(BatchChecker(workers=4).check_documents(DOCS)) == sequential
        assert (
            canonical(
                BatchChecker(workers=2, backend="process-fresh").check_documents(
                    DOCS
                )
            )
            == sequential
        )
        for shards in (1, 2, 4):
            with WorkerPool(shards=shards) as pool:
                tasks = pool.check_documents(DOCS)
                assert [
                    json.dumps(task.data, sort_keys=True) for task in tasks
                ] == sequential, f"shards={shards}"
                assert [task.name for task in tasks] == [name for name, _ in DOCS]

    def test_repeated_corpus_hits_warm_worker_caches(self):
        """Second pass over the same corpus must be served from the
        workers' component-outcome LRUs: no new misses, only hits."""
        SpecCC.clear_caches()  # forked workers must start cold
        with WorkerPool(shards=2, prewarm=False) as pool:
            pool.check_documents(DOCS)
            first = pool.stats()
            assert first["worker_cache"]["misses"] > 0

            pool.check_documents(DOCS)
            second = pool.stats()

        assert second["worker_cache"]["misses"] == first["worker_cache"]["misses"]
        assert (
            second["worker_cache"]["hits"]
            >= first["worker_cache"]["hits"] + len(DOCS)
        )
        # The Algorithm 1 memo warms the same way: the corpus has antonym
        # vocabulary, and the second pass replays none of it.
        assert first["worker_semantics"]["misses"] > 0
        assert (
            second["worker_semantics"]["misses"]
            == first["worker_semantics"]["misses"]
        )
        assert second["worker_semantics"]["hits"] > first["worker_semantics"]["hits"]
        assert second["affinity_repeats"] == len(DOCS)
        assert second["distinct_signatures"] == len(DOCS)
        assert second["tasks"] == 2 * len(DOCS)
        assert sum(second["per_shard"]) == second["tasks"]
        assert second["worker_cache"]["hit_rate"] > 0

    def test_same_document_always_routes_to_same_shard(self):
        with WorkerPool(shards=4) as pool:
            shard = pool.shard_of(DOCS[0][1])
            for _ in range(3):
                pool.submit("again", DOCS[0][1]).result()
            stats = pool.stats()
            assert stats["per_shard"][shard] == 3
            assert sum(stats["per_shard"]) == 3

    def test_startup_seconds_reported_once(self):
        pool = WorkerPool(shards=1)
        try:
            assert pool.stats()["started"] is False
            first = pool.ensure_started()
            assert first > 0
            assert pool.ensure_started() == first  # idempotent
            assert pool.stats()["startup_seconds"] == first
        finally:
            pool.shutdown()

    def test_worker_snapshots_are_per_shard(self):
        with WorkerPool(shards=2, prewarm=False) as pool:
            pool.check_documents(DOCS)
            snapshots = pool.worker_snapshots()
        assert len(snapshots) == 2
        for snapshot in snapshots:
            assert "component_cache" in snapshot
            assert "semantics" in snapshot
            assert "synthesis" in snapshot
        # The corpus was split over the shards, so at least one worker
        # actually analysed something.
        assert any(s["component_cache"]["misses"] > 0 for s in snapshots)

    def test_worker_errors_propagate_and_are_counted(self):
        with WorkerPool(shards=1) as pool:
            with pytest.raises(Exception):
                pool.submit("bad", [("R1", "")]).result()
            assert pool.stats()["failures"] == 1

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            WorkerPool(shards=0)

    def test_shutdown_rejects_new_work(self):
        pool = WorkerPool(shards=1)
        pool.ensure_started()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit("late", DOCS[0][1])


class TestSharedRegistry:
    def test_same_setup_reuses_the_pool(self):
        first = shared_pool(shards=2)
        second = shared_pool(shards=2)
        assert first is second

    def test_distinct_shard_counts_get_distinct_pools(self):
        assert shared_pool(shards=2) is not shared_pool(shards=3)

    def test_distinct_dictionaries_get_distinct_pools(self):
        from repro.nlp.antonyms import AntonymDictionary

        dictionary = AntonymDictionary.default()
        dictionary.add_pair("active", "normal")
        custom = shared_pool(tool=SpecCC(dictionary=dictionary), shards=2)
        assert custom is not shared_pool(shards=2)

    def test_batchchecker_process_backend_uses_registry(self):
        sequential = canonical(BatchChecker(workers=1).check_documents(DOCS))
        pooled = BatchChecker(workers=2, backend="process").check_documents(DOCS)
        assert canonical(pooled) == sequential
        # A second checker with the same setup reuses the same warm pool.
        pool = shared_pool(shards=2)
        before = pool.stats()["tasks"]
        BatchChecker(workers=2, backend="process").check_documents(DOCS)
        assert shared_pool(shards=2).stats()["tasks"] == before + len(DOCS)

    def test_injected_pool_wins_over_registry(self):
        with WorkerPool(shards=1) as pool:
            checker = BatchChecker(workers=4, backend="process", pool=pool)
            results = checker.check_documents(DOCS[:2])
            assert [r.name for r in results] == [name for name, _ in DOCS[:2]]
            assert pool.stats()["tasks"] == 2
