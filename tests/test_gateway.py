"""Tests of the TCP gateway (service/gateway.py).

The contract under test: the gateway speaks exactly the stdio serve
protocol (same ops, same error codes, byte-identical responses for the
same requests), adds connection-level behaviour — per-connection session
namespacing, raw-byte oversized handling with resync, token-bucket rate
limiting, connection caps, graceful drain — and never answers protocol
pressure by dropping a connection.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.gateway import SpecGateway, TokenBucket, _iter_lines
from repro.service.server import AsyncSpecServer, normalize_response

from test_service import run_serve_async


def normalize(response: dict) -> str:
    return json.dumps(normalize_response(response), sort_keys=True)


class _Client:
    """One JSON-lines TCP client connection."""

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, gateway: SpecGateway) -> "_Client":
        reader, writer = await asyncio.open_connection(*gateway.address)
        return cls(reader, writer)

    async def send_raw(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    async def recv(self) -> dict:
        line = await asyncio.wait_for(self.reader.readline(), timeout=30.0)
        assert line, "connection closed while a response was expected"
        return json.loads(line.decode("utf-8"))

    async def request(self, payload) -> dict:
        if isinstance(payload, (dict, list)):
            payload = json.dumps(payload)
        await self.send_raw(payload.encode("utf-8") + b"\n")
        return await self.recv()

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class _Running:
    """A started gateway plus its run() task, as an async context."""

    def __init__(self, gateway: SpecGateway) -> None:
        self.gateway = gateway
        self.task = None

    async def __aenter__(self) -> SpecGateway:
        await self.gateway.start()
        self.task = asyncio.ensure_future(self.gateway.run())
        return self.gateway

    async def __aexit__(self, *exc_info) -> None:
        await self.gateway.shutdown()
        await asyncio.wait_for(self.task, timeout=10.0)


SCRIPT = [
    {"op": "add", "id": "R1", "text": "If the sensor is active, the valve is opened.", "rid": 1},
    {"op": "check", "timings": False, "rid": 2},
    {"op": "update", "id": "R1", "text": "If the sensor is active, the valve is not opened.", "rid": 3},
    {"op": "check", "timings": False, "rid": 4},
]


class TestTokenBucket:
    def test_burst_then_refill_deterministic(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: clock[0])
        assert bucket.acquire() is True
        assert bucket.acquire() is True
        assert bucket.acquire() is False  # burst exhausted
        clock[0] = 0.5  # one token refilled (2/s * 0.5s)
        assert bucket.acquire() is True
        assert bucket.acquire() is False
        clock[0] = 100.0  # refill caps at burst, not rate * elapsed
        assert bucket.acquire() is True
        assert bucket.acquire() is True
        assert bucket.acquire() is False

    def test_rejects_nonsense(self):
        import pytest

        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=-1)


class TestLineFraming:
    """The raw-byte reader: exact bounds, guaranteed resync."""

    def _frames(self, chunks, max_bytes):
        async def drive():
            reader = asyncio.StreamReader()
            for chunk in chunks:
                reader.feed_data(chunk)
            reader.feed_eof()
            return [frame async for frame in _iter_lines(reader, max_bytes)]

        return asyncio.run(drive())

    def test_plain_lines(self):
        frames = self._frames([b"abc\ndef\n"], 16)
        assert frames == [(b"abc", False), (b"def", False)]

    def test_exact_bound_passes_one_over_fails(self):
        frames = self._frames([b"x" * 8 + b"\n" + b"y" * 9 + b"\n"], 8)
        assert frames == [(b"x" * 8, False), (b"", True)]

    def test_oversized_line_resyncs_at_newline(self):
        big = b"z" * 100
        frames = self._frames([big + b"\n" + b"ok\n"], 10)
        assert frames == [(b"", True), (b"ok", False)]

    def test_oversized_across_many_chunks(self):
        chunks = [b"z" * 7, b"z" * 7, b"z" * 7, b"\nok\n"]
        frames = self._frames(chunks, 10)
        assert frames == [(b"", True), (b"ok", False)]

    def test_trailing_line_without_newline(self):
        assert self._frames([b"tail"], 16) == [(b"tail", False)]
        assert self._frames([b"t" * 32], 16) == [(b"", True)]

    def test_crlf_stripped(self):
        assert self._frames([b"abc\r\n"], 16) == [(b"abc", False)]


class TestGateway:
    def test_protocol_byte_identical_to_stdio_async_serve(self):
        """The tentpole contract: the same request script over TCP and
        over the stdio async front end produces byte-identical
        normalized responses — the gateway adds transport, never a
        second protocol."""

        async def over_tcp():
            async with _Running(SpecGateway(AsyncSpecServer())) as gateway:
                client = await _Client.connect(gateway)
                responses = [await client.request(line) for line in SCRIPT]
                await client.close()
                return responses

        tcp = [normalize(r) for r in asyncio.run(over_tcp())]
        stdio = [normalize(r) for r in run_serve_async(SCRIPT)]
        assert tcp == stdio
        # The session was stateful across requests: the second check saw
        # the update (revision advanced, edit reanalyzed).
        assert '"revision": 2' in tcp[-1]
        assert '"reanalyzed": true' in tcp[-1]

    def test_connection_namespacing_isolates_sessions(self):
        """Two clients both using session 'default' must not share
        SpecSession state — and a closed connection's sessions are
        dropped from the shared server."""

        async def drive():
            server = AsyncSpecServer()
            async with _Running(SpecGateway(server)) as gateway:
                first = await _Client.connect(gateway)
                second = await _Client.connect(gateway)
                added = await first.request(
                    {"op": "add", "id": "R1", "text": "The valve is opened."}
                )
                other = await second.request(
                    {"op": "check", "timings": False}
                )
                names_live = server.session_names
                await first.close()
                await second.close()
                await asyncio.sleep(0.1)  # connection teardown runs async
                return added, other, names_live, server.session_names

        added, other, names_live, names_after = asyncio.run(drive())
        assert added["ok"] is True and added["size"] == 1
        assert added["session"] == "default"  # namespace prefix restored
        # The second client's 'default' session saw an empty document.
        assert other["ok"] is True
        assert other["report"]["requirements"] == []
        assert {name.split("/")[0] for name in names_live} == {"conn1", "conn2"}
        assert names_after == ()

    def test_oversized_lines_over_tcp(self):
        """Raw-byte bound at the network boundary: a multi-byte line
        whose characters fit but whose bytes do not is rejected with
        'oversized', and the connection resyncs for the next request."""

        async def drive():
            server = AsyncSpecServer(max_request_bytes=1024)
            async with _Running(SpecGateway(server)) as gateway:
                client = await _Client.connect(gateway)
                multi = json.dumps(
                    {"op": "add", "id": "R1", "text": "é" * 700},
                    ensure_ascii=False,
                )
                assert len(multi) <= 1024 < len(multi.encode("utf-8"))
                first = await client.request(multi)
                giant = await client.request("x" * 100_000)
                ping = await client.request({"op": "ping"})
                await client.close()
                return first, giant, ping

        first, giant, ping = asyncio.run(drive())
        assert first["code"] == "oversized"
        assert giant["code"] == "oversized"
        assert ping["ok"] is True

    def test_rate_limit_answers_overloaded(self):
        clock = [0.0]

        async def drive():
            gateway = SpecGateway(
                AsyncSpecServer(), rate=1.0, burst=2.0, clock=lambda: clock[0]
            )
            async with _Running(gateway):
                client = await _Client.connect(gateway)
                admitted = [
                    await client.request({"op": "ping", "rid": i})
                    for i in range(3)
                ]
                clock[0] = 1.5  # refill one token
                after = await client.request({"op": "ping", "rid": 99})
                await client.close()
                return admitted, after

        admitted, after = asyncio.run(drive())
        assert [r["ok"] for r in admitted] == [True, True, False]
        assert admitted[2]["code"] == "overloaded"
        assert admitted[2]["rid"] == 2  # rejection echoes the request id
        assert after["ok"] is True

    def test_connection_cap_rejects_with_overloaded(self):
        async def drive():
            gateway = SpecGateway(AsyncSpecServer(), max_connections=1)
            async with _Running(gateway):
                first = await _Client.connect(gateway)
                await first.request({"op": "ping"})  # connection is live
                second = await _Client.connect(gateway)
                rejection = await second.recv()
                tail = await second.reader.read()
                still = await first.request({"op": "ping"})
                await first.close()
                await second.close()
                return rejection, tail, still

        rejection, tail, still = asyncio.run(drive())
        assert rejection["ok"] is False
        assert rejection["code"] == "overloaded"
        assert tail == b""  # rejected connection is closed after the line
        assert still["ok"] is True

    def test_metrics_and_stats_over_the_wire(self):
        async def drive():
            async with _Running(SpecGateway(AsyncSpecServer())) as gateway:
                client = await _Client.connect(gateway)
                await client.request({"op": "ping"})
                metrics = await client.request({"op": "metrics", "full": False})
                await client.close()
                return metrics, gateway.stats()

        metrics, stats = asyncio.run(drive())
        assert metrics["ok"] is True
        payload = metrics["metrics"]
        assert payload["gateway"]["connections_open"] >= 1
        assert payload["counters"]["gateway.requests"] >= 1
        assert stats["connections_total"] == 1
        assert stats["draining"] is False  # captured while still serving

    def test_client_shutdown_drains_gateway(self):
        async def drive():
            gateway = SpecGateway(AsyncSpecServer())
            await gateway.start()
            run = asyncio.ensure_future(gateway.run())
            client = await _Client.connect(gateway)
            ack = await client.request({"op": "shutdown"})
            await asyncio.wait_for(run, timeout=10.0)
            await client.close()
            return ack, gateway.stats()

        ack, stats = asyncio.run(drive())
        assert ack["ok"] is True
        assert stats["draining"] is True

    def test_client_shutdown_can_be_disabled(self):
        async def drive():
            gateway = SpecGateway(AsyncSpecServer(), allow_shutdown=False)
            async with _Running(gateway):
                client = await _Client.connect(gateway)
                refusal = await client.request({"op": "shutdown"})
                ping = await client.request({"op": "ping"})
                await client.close()
                return refusal, ping

        refusal, ping = asyncio.run(drive())
        assert refusal["ok"] is False
        assert refusal["code"] == "bad_request"
        assert ping["ok"] is True  # the gateway is still serving

    def test_batch_over_tcp_byte_identical_to_sequential(self):
        """The 13-doc corpus through a TCP batch op matches the
        sequential workers=1 reference byte for byte."""
        from repro import BatchChecker
        from test_pool import CORPUS13

        sequential = [
            json.dumps(result.data, sort_keys=True)
            for result in BatchChecker(workers=1).check_documents(CORPUS13)
        ]

        async def drive():
            async with _Running(SpecGateway(AsyncSpecServer())) as gateway:
                client = await _Client.connect(gateway)
                response = await client.request(
                    {
                        "op": "batch",
                        "backend": "thread",
                        "workers": 4,
                        "documents": [
                            {"name": name, "text": text}
                            for name, text in CORPUS13
                        ],
                    }
                )
                await client.close()
                return response

        response = asyncio.run(drive())
        assert response["ok"] is True
        got = [
            json.dumps(entry["report"], sort_keys=True)
            for entry in response["results"]
        ]
        assert got == sequential


def _gateway_counters() -> dict:
    from repro.obs.metrics import registry

    counters = registry().snapshot(full=False)["counters"]
    return {
        "dropped": counters.get("gateway.sessions_dropped", 0),
        "detached": counters.get("gateway.sessions_detached", 0),
    }


class TestInFlightDisconnect:
    """Abortive connection drops racing their own in-flight handlers.

    A client that dies mid-request leaves its handler task running when
    the connection's read loop errors out; the gateway must finish that
    handler *before* touching the session namespace — otherwise the
    handler can resurrect a session the teardown already removed and the
    slot leaks forever.  The counters make the outcome exact: ephemeral
    namespaces are dropped, journal-backed ones only detached.
    """

    async def _settle(self, gateway, server) -> None:
        for _ in range(400):  # bounded: ~20s worst case
            if gateway.stats()["connections_open"] == 0 and not any(
                name.startswith("conn") for name in server.session_names
            ):
                return
            await asyncio.sleep(0.05)
        raise AssertionError("gateway never finished tearing the connection down")

    def test_abortive_drop_with_inflight_request_cleans_namespace(self):
        async def drive():
            server = AsyncSpecServer()
            before = _gateway_counters()
            async with _Running(SpecGateway(server)) as gateway:
                client = await _Client.connect(gateway)
                added = await client.request(
                    {"op": "add", "id": "R1",
                     "text": "If the sensor is active, the valve is opened."}
                )
                names_live = server.session_names
                # Fire a check and kill the socket without reading the
                # response: the handler is now in flight with no client.
                await client.send_raw(
                    json.dumps({"op": "check", "timings": False}).encode("utf-8")
                    + b"\n"
                )
                client.writer.transport.abort()
                await self._settle(gateway, server)
                return before, _gateway_counters(), added, names_live, \
                    server.session_names

        before, after, added, names_live, names_after = asyncio.run(drive())
        assert added["ok"] is True
        assert names_live == ("conn1/default",)
        assert names_after == ()  # the in-flight check did not resurrect it
        assert after["dropped"] - before["dropped"] == 1
        assert after["detached"] - before["detached"] == 0

    def test_abortive_drop_retains_durable_session_for_resume(self, tmp_path):
        from repro.service.journal import JournalStore

        store = JournalStore(tmp_path, fsync="never")

        async def drive():
            server = AsyncSpecServer(journal_store=store)
            before = _gateway_counters()
            async with _Running(SpecGateway(server)) as gateway:
                first = await _Client.connect(gateway)
                attach1 = await first.request({"op": "attach", "token": "docB"})
                await first.request(
                    {"op": "add", "id": "R1", "rid": 1,
                     "text": "If the sensor is active, the valve is opened."}
                )
                # The edit whose acknowledgement the client never sees:
                # written, then the socket dies.
                await first.send_raw(
                    json.dumps(
                        {"op": "update", "id": "R1", "rid": 2,
                         "text": "If the sensor is active, the valve is not opened."}
                    ).encode("utf-8")
                    + b"\n"
                )
                first.writer.transport.abort()
                await self._settle(gateway, server)
                mid = _gateway_counters()
                tokens = server.durable_tokens

                # Reconnect-and-resume: attach the same token, learn the
                # watermark, retry the unacknowledged edit.
                second = await _Client.connect(gateway)
                attach2 = await second.request({"op": "attach", "token": "docB"})
                retry = await second.request(
                    {"op": "update", "id": "R1", "rid": 2,
                     "text": "If the sensor is active, the valve is not opened."}
                )
                checked = await second.request(
                    {"op": "check", "timings": False, "rid": 3}
                )
                await second.close()
                return before, mid, attach1, tokens, attach2, retry, checked

        try:
            before, mid, attach1, tokens, attach2, retry, checked = asyncio.run(
                drive()
            )
        finally:
            store.close()
        assert attach1["ok"] is True and attach1["last_rid"] is None
        # The namespace went, the durable session stayed: exact counters.
        assert mid["dropped"] - before["dropped"] == 0
        assert mid["detached"] - before["detached"] == 1
        assert tokens == ("docB",)
        # The in-flight edit WAS applied and journaled before the drop —
        # attach says so, and the retry dedupes instead of re-applying.
        assert attach2["last_rid"] == 2
        assert attach2["size"] == 1
        assert retry["duplicate"] is True
        assert checked["ok"] is True and checked["revision"] == 1
        assert store.counters()["duplicates"] == 1
