"""Tests for stage 2: Mealy machines, both engines, obligations, modular
decomposition, localization, controller verification."""

from __future__ import annotations

import pytest

from repro.logic import parse
from repro.synthesis import (
    Engine,
    MealyMachine,
    SynthesisLimits,
    Verdict,
    all_letters,
    check_realizability,
    decompose,
    default_checker,
    localize,
    satisfies_specification,
    solve_safety_game,
    synthesize,
    synthesize_environment,
    violation_witness,
)
from repro.synthesis.invariants import (
    ObligationOutcome,
    check_obligations,
    extract_obligations,
)

ENGINES = [Engine.SAFETY_GAME, Engine.BOUNDED_SAT]


class TestMealyMachine:
    def machine(self):
        machine = MealyMachine(inputs=("a",), outputs=("b",), num_states=2)
        machine.add_transition(0, [], 0, [])
        machine.add_transition(0, ["a"], 1, ["b"])
        machine.add_transition(1, [], 0, [])
        machine.add_transition(1, ["a"], 1, ["b"])
        return machine

    def test_run(self):
        outputs = self.machine().run([["a"], [], ["a"]])
        assert outputs == [frozenset({"b"}), frozenset(), frozenset({"b"})]

    def test_step_ignores_non_input_props(self):
        state, output = self.machine().step(0, ["a", "other"])
        assert state == 1 and output == frozenset({"b"})

    def test_check_total(self):
        machine = MealyMachine(inputs=("a",), outputs=(), num_states=1)
        with pytest.raises(ValueError):
            machine.check_total()

    def test_all_letters(self):
        letters = all_letters(["x", "y"])
        assert len(letters) == 4
        assert frozenset() in letters and frozenset({"x", "y"}) in letters

    def test_to_dot_contains_transitions(self):
        dot = self.machine().to_dot()
        assert "digraph" in dot and "s0 -> s1" in dot


class TestEnginesAgree:
    CASES = [
        ("G (r -> X g)", ["r"], ["g"], True),
        ("G (r -> F g)", ["r"], ["g"], True),
        ("G (g <-> X X i)", ["i"], ["g"], False),  # clairvoyance (footnote 1)
        ("G (r -> g) && G (r -> !g)", ["r"], ["g"], False),
        ("G (r -> g) && G (!r -> !g)", ["r"], ["g"], True),
        ("G F g && G (g -> X !g)", [], ["g"], True),
        ("F g && G !g", [], ["g"], False),  # unsatisfiable
    ]

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("text,inputs,outputs,realizable", CASES)
    def test_verdicts(self, engine, text, inputs, outputs, realizable):
        result = check_realizability([parse(text)], inputs, outputs, engine=engine)
        expected = Verdict.REALIZABLE if realizable else Verdict.UNREALIZABLE
        assert result.verdict is expected

    @pytest.mark.parametrize("engine", ENGINES)
    def test_controller_is_verified(self, engine):
        # Disable the obligation certificate so the exact engine runs and
        # produces an explicit controller.
        result = check_realizability(
            [parse("G (r -> X g)")],
            ["r"],
            ["g"],
            engine=engine,
            limits=SynthesisLimits(use_obligations=False),
        )
        (machine,) = result.controllers
        assert satisfies_specification(machine, parse("G (r -> X g)"))

    def test_empty_specification_realizable(self):
        assert check_realizability([], ["i"], ["o"]).verdict is Verdict.REALIZABLE


class TestVerifier:
    def test_violation_found(self):
        machine = MealyMachine(inputs=("r",), outputs=("g",), num_states=1)
        machine.add_transition(0, [], 0, [])
        machine.add_transition(0, ["r"], 0, [])  # never grants
        word = violation_witness(machine, parse("G (r -> F g)"))
        assert word is not None
        assert not satisfies_specification(machine, parse("G (r -> F g)"))

    def test_correct_controller_passes(self):
        machine = MealyMachine(inputs=("r",), outputs=("g",), num_states=1)
        machine.add_transition(0, [], 0, ["g"])
        machine.add_transition(0, ["r"], 0, ["g"])
        assert satisfies_specification(machine, parse("G (r -> F g)"))


class TestSafetyGameEquivalence:
    """Golden equivalence: the partial-letter exploration must produce the
    exact results of the concrete ``2^|I| * 2^|O|`` enumeration it
    replaced — same verdicts, same explored positions, byte-identical
    winning strategies."""

    SPECS = [
        ("G (r -> X g)", ["r"], ["g"]),
        ("G (r -> g)", ["r"], ["g"]),
        ("G (r -> F g)", ["r"], ["g"]),
        ("G (g <-> X X i)", ["i"], ["g"]),
        ("G (r -> F g) && G (c -> !g)", ["r", "c"], ["g"]),
        ("G F g && G (g -> X !g)", [], ["g"]),
        ("F g && G !g", [], ["g"]),
        # Wide interfaces: the extra propositions are don't-cares.
        ("G (r -> X g)", ["r"], ["g", "o1", "o2", "o3"]),
        ("G (r -> X X g)", ["r", "i9"], ["g", "o1"]),
    ]

    @pytest.mark.parametrize("bound", [1, 2])
    @pytest.mark.parametrize("text,inputs,outputs", SPECS)
    def test_partial_matches_concrete(self, text, inputs, outputs, bound):
        partial = solve_safety_game(
            parse(text), inputs, outputs, bound=bound, exploration="partial"
        )
        concrete = solve_safety_game(
            parse(text), inputs, outputs, bound=bound, exploration="concrete"
        )
        assert partial.realizable == concrete.realizable
        assert partial.positions_explored == concrete.positions_explored
        if partial.realizable:
            assert partial.machine.transitions == concrete.machine.transitions
            assert partial.machine.num_states == concrete.machine.num_states
            assert partial.machine.describe() == concrete.machine.describe()
            partial.machine.check_total()

    def test_partial_enumeration_ignores_dont_care_outputs(self):
        base = solve_safety_game(parse("G (r -> X g)"), ["r"], ["g"], bound=2)
        wide = solve_safety_game(
            parse("G (r -> X g)"),
            ["r"],
            ["g"] + [f"o{k}" for k in range(8)],
            bound=2,
        )
        assert wide.stats["letters_enumerated"] == base.stats["letters_enumerated"]
        concrete = solve_safety_game(
            parse("G (r -> X g)"),
            ["r"],
            ["g"] + [f"o{k}" for k in range(8)],
            bound=2,
            exploration="concrete",
        )
        assert concrete.stats["letters_enumerated"] == 2 ** 8 * base.stats[
            "letters_enumerated"
        ]

    def test_unknown_exploration_mode_rejected(self):
        with pytest.raises(ValueError):
            solve_safety_game(parse("G (r -> g)"), ["r"], ["g"], exploration="fast")

    def test_case_study_components_equivalent(self):
        """All three case studies: every explicitly checkable component's
        safety game agrees between partial and concrete exploration."""
        from repro.casestudies import (
            MODE_SWITCHING_REQUIREMENTS,
            application_requirements,
            robot_requirements,
        )
        from repro.logic.ast import atoms, conj
        from repro.translate import TranslationOptions, Translator

        translator = Translator(options=TranslationOptions(next_as_x=False))
        studies = [
            ("cara", list(MODE_SWITCHING_REQUIREMENTS)[:10]),
            ("telepromise", next(iter(sorted(application_requirements().items())))[1]),
            ("robot", robot_requirements(2, 3)),
        ]
        compared = 0
        for name, requirements in studies:
            spec = translator.translate(requirements)
            inputs = frozenset(spec.partition.inputs)
            outputs = frozenset(spec.partition.outputs)
            for component in decompose(list(spec.formulas)):
                specification = conj(component.formulas)
                if len(atoms(specification)) > 8:
                    continue
                local_inputs = sorted(component.variables & inputs)
                local_outputs = sorted(component.variables & outputs)
                partial = solve_safety_game(
                    specification, local_inputs, local_outputs, bound=2
                )
                concrete = solve_safety_game(
                    specification,
                    local_inputs,
                    local_outputs,
                    bound=2,
                    exploration="concrete",
                )
                assert partial.realizable == concrete.realizable, (name, component)
                assert (
                    partial.positions_explored == concrete.positions_explored
                ), (name, component)
                if partial.realizable:
                    assert (
                        partial.machine.transitions == concrete.machine.transitions
                    ), (name, component)
                compared += 1
        assert compared >= 3  # every study contributed at least one component

    def test_realizability_verdicts_equivalent(self):
        """check_realizability with game_exploration="concrete" is the
        pre-optimisation engine; verdicts must not change."""
        for text, inputs, outputs, _ in TestEnginesAgree.CASES:
            formulas = [parse(text)]
            partial = check_realizability(
                formulas, inputs, outputs,
                limits=SynthesisLimits(use_obligations=False),
            )
            concrete = check_realizability(
                formulas, inputs, outputs,
                limits=SynthesisLimits(
                    use_obligations=False, game_exploration="concrete"
                ),
            )
            assert partial.verdict is concrete.verdict, text


class TestSynthesisStats:
    def test_game_work_recorded(self):
        from repro.synthesis import synthesis_stats
        from repro.synthesis.realizability import clear_caches

        clear_caches()
        check_realizability(
            [parse("G (r -> X g)")], ["r"], ["g"],
            limits=SynthesisLimits(use_obligations=False),
        )
        stats = synthesis_stats()
        assert stats["game_solves"] >= 1
        assert stats["game_positions"] > 0
        assert stats["game_letters"] > 0

    def test_sat_work_recorded(self):
        from repro.synthesis import synthesis_stats
        from repro.synthesis.realizability import clear_caches

        clear_caches()
        check_realizability(
            [parse("G (r -> X g)")], ["r"], ["g"],
            engine=Engine.BOUNDED_SAT,
            limits=SynthesisLimits(use_obligations=False),
        )
        stats = synthesis_stats()
        assert stats["sat_solves"] >= 1
        assert stats["sat_propagations"] > 0
        clear_caches()
        assert synthesis_stats()["sat_solves"] == 0

    def test_bounded_result_carries_solver_stats(self):
        result = synthesize(parse("G (r -> X g)"), ["r"], ["g"], num_states=2)
        assert result.solver_stats["propagations"] > 0
        assert "clause_visits" in result.solver_stats


class TestSafetyGameEngine:
    def test_bound_too_small_is_not_definitive(self):
        # G (r -> F g) with the response delayed needs a larger bound; at
        # bound 1 a single-state response still works, so pick a harder one:
        outcome = solve_safety_game(
            parse("G (r -> X X g)"), ["r"], ["g"], bound=1
        )
        # Whatever the verdict, a True answer must come with a machine.
        if outcome.realizable:
            assert outcome.machine is not None

    def test_machine_extraction(self):
        outcome = solve_safety_game(parse("G (r -> g)"), ["r"], ["g"], bound=2)
        assert outcome.realizable
        outcome.machine.check_total()
        assert satisfies_specification(outcome.machine, parse("G (r -> g)"))

    def test_position_cap(self):
        from repro.synthesis import StateSpaceLimit

        with pytest.raises(StateSpaceLimit):
            solve_safety_game(
                parse("G (a -> X X X X b)"), ["a"], ["b"], bound=3, max_positions=2
            )

    def test_position_cap_in_concrete_mode(self):
        from repro.synthesis import StateSpaceLimit

        with pytest.raises(StateSpaceLimit):
            solve_safety_game(
                parse("G (a -> X X X X b)"), ["a"], ["b"],
                bound=3, max_positions=2, exploration="concrete",
            )

    def test_position_cap_degrades_to_unknown_verdict(self):
        # The realizability driver must swallow StateSpaceLimit and report
        # UNKNOWN instead of crashing when the cap rules the game out.
        result = check_realizability(
            [parse("G (a -> X X X X b)")], ["a"], ["b"],
            limits=SynthesisLimits(use_obligations=False, max_game_positions=2),
        )
        assert result.verdict is Verdict.UNKNOWN


class TestDualSynthesis:
    def test_environment_wins_on_clairvoyance(self):
        result = synthesize_environment(
            parse("G (g <-> X X i)"), ["i"], ["g"], num_states=2
        )
        assert result.realizable
        assert result.machine is not None

    def test_environment_loses_on_realizable_spec(self):
        result = synthesize_environment(
            parse("G (r -> g)"), ["r"], ["g"], num_states=2
        )
        assert not result.realizable

    def test_system_bounded_synthesis_returns_machine(self):
        result = synthesize(parse("G (r -> X g)"), ["r"], ["g"], num_states=2)
        assert result.realizable
        assert satisfies_specification(result.machine, parse("G (r -> X g)"))


class TestModularDecomposition:
    def test_disjoint_formulas_split(self):
        components = decompose([parse("G (a -> b)"), parse("G (c -> d)")])
        assert len(components) == 2

    def test_shared_variable_merges(self):
        components = decompose(
            [parse("G (a -> b)"), parse("G (b -> c)"), parse("G (d -> e)")]
        )
        assert len(components) == 2
        sizes = sorted(len(c.formulas) for c in components)
        assert sizes == [1, 2]

    def test_indices_preserved(self):
        components = decompose([parse("G (a -> b)"), parse("G (c -> d)")])
        assert sorted(i for c in components for i in c.indices) == [0, 1]

    def test_unrealizable_component_dominates(self):
        result = check_realizability(
            [parse("G (a -> b)"), parse("G (c -> d) && G (c -> !d)")],
            ["a", "c"],
            ["b", "d"],
        )
        assert result.verdict is Verdict.UNREALIZABLE
        assert result.failing_indices() == (1,)


class TestObligations:
    def test_extraction_of_invariant(self):
        obligations = extract_obligations(
            parse("G (a -> b)"), frozenset({"b"})
        )
        assert len(obligations) == 1
        assert obligations[0].response == parse("b")

    def test_extraction_of_eventually(self):
        obligations = extract_obligations(
            parse("G (a -> F b)"), frozenset({"b"})
        )
        assert obligations is not None

    def test_anti_causal_marked_always_active(self):
        obligations = extract_obligations(
            parse("G (X X X !bp -> trig)"), frozenset({"trig"})
        )
        assert obligations[0].always_active

    def test_delayed_response_not_always_active(self):
        obligations = extract_obligations(
            parse("G (a -> X b)"), frozenset({"b"})
        )
        assert not obligations[0].always_active

    def test_response_over_inputs_rejected(self):
        assert extract_obligations(parse("G (a -> b)"), frozenset()) is None

    def test_until_fragment(self):
        formula = parse("G (e -> (!p -> (e2 W p)))")
        obligations = extract_obligations(formula, frozenset({"e2"}))
        assert obligations is not None
        assert obligations[0].response == parse("e2")

    def test_joint_conflict_detected(self):
        result = check_obligations(
            [parse("G (a -> o)"), parse("G (b -> !o)")], ["o"]
        )
        assert result.outcome is ObligationOutcome.INCONCLUSIVE
        assert result.conflict is not None

    def test_compatible_responses_realizable(self):
        result = check_obligations(
            [parse("G (a -> o1)"), parse("G (b -> !o1 || o2)")], ["o1", "o2"]
        )
        assert result.outcome is ObligationOutcome.REALIZABLE

    def test_cross_validates_with_exact_engine(self):
        # Every obligation-REALIZABLE verdict must agree with the game.
        specs = [
            (["G (a -> o)"], ["a"], ["o"]),
            (["G (a -> F o)"], ["a"], ["o"]),
            (["G (a -> o1 && o2)", "G (b -> o2)"], ["a", "b"], ["o1", "o2"]),
        ]
        for texts, inputs, outputs in specs:
            formulas = [parse(t) for t in texts]
            cert = check_obligations(formulas, outputs)
            assert cert.outcome is ObligationOutcome.REALIZABLE
            exact = check_realizability(
                formulas, inputs, outputs,
                limits=SynthesisLimits(use_obligations=False),
            )
            assert exact.verdict is Verdict.REALIZABLE

    def test_large_alphabet_handled(self):
        # 40 variables: far beyond the explicit engines.
        formulas = [parse(f"G (i{k} -> o{k})") for k in range(20)]
        result = check_realizability(
            formulas, [f"i{k}" for k in range(20)], [f"o{k}" for k in range(20)]
        )
        assert result.verdict is Verdict.REALIZABLE
        assert all(c.method == "obligations" for c in result.components)


class TestLocalization:
    def test_core_found(self):
        formulas = [
            parse("G (a -> x)"),
            parse("G (b -> y)"),
            parse("G (c -> y)"),
            parse("G (b -> !y)"),  # conflicts with formula 1
        ]
        checker = default_checker(["a", "b", "c"], ["x", "y"])
        result = localize(formulas, checker)
        assert result is not None
        assert result.culprit == 3
        # Both {1,3} and {2,3} are minimal unrealizable cores; either is
        # a correct localization.
        assert 3 in result.core and len(result.core) == 2
        assert checker([formulas[i] for i in result.core]) is Verdict.UNREALIZABLE

    def test_realizable_specification_yields_none(self):
        formulas = [parse("G (a -> x)"), parse("G (b -> y)")]
        checker = default_checker(["a", "b"], ["x", "y"])
        assert localize(formulas, checker) is None

    def test_core_is_minimal(self):
        formulas = [
            parse("G (a -> x)"),
            parse("G (a -> !x)"),
            parse("G (a -> z)"),
        ]
        checker = default_checker(["a"], ["x", "z"])
        result = localize(formulas, checker)
        assert set(result.core) == {0, 1}
