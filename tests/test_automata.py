"""Tests for the automata substrate: GPVW, emptiness, acceptance, LTL-SAT."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import (
    BuchiAutomaton,
    Label,
    accepts,
    equivalent,
    find_witness,
    is_empty,
    is_satisfiable,
    is_valid,
    satisfiable,
    translate,
)
from repro.logic import (
    FALSE,
    TRUE,
    And,
    Atom,
    Finally,
    Globally,
    Implies,
    LassoWord,
    Next,
    Not,
    Or,
    Release,
    Until,
    WeakUntil,
    parse,
    satisfies,
)


class TestLabel:
    def test_matches(self):
        label = Label.of(["a"], ["b"])
        assert label.matches(frozenset({"a"}))
        assert label.matches(frozenset({"a", "c"}))
        assert not label.matches(frozenset({"a", "b"}))
        assert not label.matches(frozenset())

    def test_conjoin(self):
        left = Label.of(["a"], ["b"])
        right = Label.of(["c"], [])
        merged = left.conjoin(right)
        assert merged == Label.of(["a", "c"], ["b"])
        assert left.conjoin(Label.of(["b"], [])) is None

    def test_restrict(self):
        label = Label.of(["a", "b"], ["c"])
        assert label.restrict(frozenset({"a", "c"})) == Label.of(["a"], ["c"])

    def test_str(self):
        assert str(Label.of(["a"], ["b"])) == "a && !b"
        assert str(Label()) == "true"


class TestTranslateBasics:
    def test_false_is_empty(self):
        assert is_empty(translate(FALSE))

    def test_true_is_nonempty(self):
        assert not is_empty(translate(TRUE))

    def test_contradiction_is_empty(self):
        assert is_empty(translate(parse("a && !a")))
        assert is_empty(translate(parse("G a && F !a")))
        assert is_empty(translate(parse("X a && X !a")))

    def test_atom(self):
        automaton = translate(parse("a"))
        assert accepts(automaton, LassoWord.of([["a"]], [[]]))
        assert not accepts(automaton, LassoWord.of([[]], [["a"]]))

    def test_globally_finally(self):
        automaton = translate(parse("G F p"))
        assert accepts(automaton, LassoWord.of([], [[], ["p"]]))
        assert not accepts(automaton, LassoWord.of([["p"]], [[]]))

    def test_until(self):
        automaton = translate(parse("a U b"))
        assert accepts(automaton, LassoWord.of([["a"], ["a"], ["b"]], [[]]))
        assert not accepts(automaton, LassoWord.of([["a"]], [["a"]]))

    def test_release(self):
        automaton = translate(parse("a R b"))
        assert accepts(automaton, LassoWord.of([], [["b"]]))
        assert accepts(automaton, LassoWord.of([["b"], ["a", "b"]], [[]]))
        assert not accepts(automaton, LassoWord.of([["b"]], [[]]))

    def test_next_chain(self):
        automaton = translate(parse("X X X p"))
        assert accepts(automaton, LassoWord.of([[], [], [], ["p"]], [[]]))
        assert not accepts(automaton, LassoWord.of([[], [], [], []], [["p"]]))

    def test_long_next_chain_no_recursion_error(self):
        # A linear chain of 150 X operators exceeds the default Python
        # recursion limit if the tableau were built recursively.  (A chain
        # *under* G is intentionally avoided: overlapping obligations blow
        # up exponentially — the very problem Section IV-E's abstraction
        # addresses.)
        formula = parse("X " * 150 + "b")
        automaton = translate(formula)
        assert automaton.num_states > 150
        assert accepts(automaton, LassoWord.of([[]] * 150 + [["b"]], [[]]))
        assert not accepts(automaton, LassoWord.of([[]] * 150, [[]]))


class TestDegeneralize:
    def test_single_set_unchanged(self):
        automaton = translate(parse("F p"))
        degeneralized = automaton.degeneralize()
        assert len(degeneralized.accepting_sets) == 1

    def test_language_preserved(self):
        for text, words in [
            (
                "G F a && G F b",
                [
                    (LassoWord.of([], [["a"], ["b"]]), True),
                    (LassoWord.of([], [["a"]]), False),
                    (LassoWord.of([], [["a", "b"]]), True),
                    (LassoWord.of([["a"], ["b"]], [[]]), False),
                ],
            ),
            (
                "F a && F b && F c",
                [
                    (LassoWord.of([["a"], ["b"]], [["c"]]), True),
                    (LassoWord.of([["a"]], [["b"]]), False),
                ],
            ),
        ]:
            automaton = translate(parse(text))
            degeneralized = automaton.degeneralize()
            assert len(degeneralized.accepting_sets) == 1
            for word, expected in words:
                assert accepts(automaton, word) == expected, (text, word)
                assert accepts(degeneralized, word) == expected, (text, word)


class TestWitness:
    def test_witness_word_satisfies_formula(self):
        for text in [
            "F p",
            "G F p",
            "a U b",
            "G (a -> X b)",
            "F (a && X !a)",
            "(F a) && (F !a)",
        ]:
            formula = parse(text)
            witness = satisfiable(formula)
            assert witness is not None, text
            assert satisfies(witness.word, formula), text

    def test_unsat_formulas_have_no_witness(self):
        for text in ["false", "a && !a", "F a && G !a", "(a U b) && G !b"]:
            assert satisfiable(parse(text)) is None, text


class TestLtlSat:
    def test_validity(self):
        assert is_valid(parse("a || !a"))
        assert is_valid(parse("G a -> a"))
        assert is_valid(parse("G a -> F a"))
        assert not is_valid(parse("F a -> G a"))

    def test_equivalence_of_duals(self):
        assert equivalent(parse("!(a U b)"), parse("!a R !b"))
        assert equivalent(parse("!F a"), parse("G !a"))
        assert equivalent(parse("a W b"), parse("(a U b) || G a"))
        assert equivalent(parse("F F a"), parse("F a"))
        assert not equivalent(parse("a U b"), parse("a W b"))

    def test_paper_footnote_formula_is_satisfiable(self):
        # The footnote-1 specification is satisfiable but (later) unrealizable.
        formula = parse("G (output <-> X X X input)")
        assert is_satisfiable(formula)


def formulas(max_aps=2):
    names = [f"p{i}" for i in range(max_aps)]
    base = st.sampled_from([Atom(n) for n in names] + [TRUE, FALSE])
    return st.recursive(
        base,
        lambda inner: st.one_of(
            st.builds(Not, inner),
            st.builds(Next, inner),
            st.builds(Finally, inner),
            st.builds(Globally, inner),
            st.builds(And, inner, inner),
            st.builds(Or, inner, inner),
            st.builds(Implies, inner, inner),
            st.builds(Until, inner, inner),
            st.builds(Release, inner, inner),
            st.builds(WeakUntil, inner, inner),
        ),
        max_leaves=6,
    )


def words(max_aps=2, max_len=3):
    letters = st.frozensets(
        st.sampled_from([f"p{i}" for i in range(max_aps)]), max_size=max_aps
    )
    return st.builds(
        LassoWord,
        st.lists(letters, max_size=max_len).map(tuple),
        st.lists(letters, min_size=1, max_size=max_len).map(tuple),
    )


class TestGPVWAgainstSemantics:
    @given(formulas(), words())
    @settings(max_examples=120, deadline=None)
    def test_acceptance_matches_trace_semantics(self, formula, word):
        automaton = translate(formula)
        assert accepts(automaton, word) == satisfies(word, formula)

    @given(formulas())
    @settings(max_examples=60, deadline=None)
    def test_witness_if_any_satisfies_formula(self, formula):
        witness = satisfiable(formula)
        if witness is not None:
            assert satisfies(witness.word, formula)

    @given(formulas(), words())
    @settings(max_examples=60, deadline=None)
    def test_degeneralization_preserves_acceptance(self, formula, word):
        automaton = translate(formula)
        assert accepts(automaton.degeneralize(), word) == satisfies(word, formula)


class TestBuchiDataStructure:
    def test_inconsistent_transition_dropped(self):
        automaton = BuchiAutomaton()
        s0 = automaton.new_state()
        s1 = automaton.new_state()
        automaton.add_transition(s0, Label.of(["a"], ["a"]), s1)
        assert automaton.num_transitions() == 0

    def test_reachable_states(self):
        automaton = BuchiAutomaton()
        s0, s1, s2 = (automaton.new_state() for _ in range(3))
        automaton.initial = {s0}
        automaton.add_transition(s0, Label(), s1)
        assert automaton.reachable_states() == {s0, s1}
        assert s2 not in automaton.reachable_states()
