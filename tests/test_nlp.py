"""Tests for the NLP substrate: tokenizer, lexicon, grammar, tree, deps."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp import (
    AntonymDictionary,
    StructuredEnglishError,
    TimeConstraint,
    clause_dependencies,
    normalise_name,
    parse_sentence,
    render_sentence,
    split_sentences,
    subject_dependents,
    syntax_tree,
    tokenize,
)
from repro.nlp import lexicon


class TestTokenizer:
    def test_simple_sentence(self):
        tokens = tokenize("The cuff is inflated.")
        assert [t.text for t in tokens] == ["the", "cuff", "is", "inflated", "."]

    def test_hyphenated_word_kept_together(self):
        tokens = tokenize("auto-control mode")
        assert tokens[0].text == "auto-control"

    def test_numbers(self):
        tokens = tokenize("in 180 seconds")
        assert [t.text for t in tokens] == ["in", "180", "seconds"]

    def test_split_sentences_skips_comments_and_blanks(self):
        document = """
        # CARA requirements
        The pump is started.

        The pump is stopped.
        """
        assert len(list(split_sentences(document))) == 2

    def test_split_on_full_stop_within_line(self):
        sentences = list(split_sentences("A is started. B is stopped."))
        assert len(sentences) == 2


class TestLexicon:
    @pytest.mark.parametrize(
        "word,lemma",
        [
            ("pressed", "press"),
            ("terminated", "terminate"),
            ("plugged", "plug"),
            ("issued", "issue"),
            ("lost", "lose"),
            ("running", "run"),
            ("monitors", "monitor"),
            ("is", "be"),
            ("inflated", "inflate"),
        ],
    )
    def test_verb_lemma(self, word, lemma):
        assert lexicon.verb_lemma(word) == lemma

    def test_unknown_word_is_not_verb(self):
        assert lexicon.verb_lemma("cuff") is None
        assert lexicon.verb_lemma("xylophone") is None

    def test_adjectives(self):
        assert lexicon.is_adjective("available")
        assert lexicon.is_adjective("unavailable")
        assert lexicon.is_adjective("nonoperational")
        assert not lexicon.is_adjective("press")

    def test_parse_number(self):
        assert lexicon.parse_number("3") == 3
        assert lexicon.parse_number("three") == 3
        assert lexicon.parse_number("sixty") == 60
        assert lexicon.parse_number("banana") is None


class TestTimeConstraint:
    def test_ticks_in_seconds(self):
        assert TimeConstraint(3, "seconds").ticks() == 3
        assert TimeConstraint(2, "minutes").ticks() == 120
        assert TimeConstraint(120, "seconds").ticks(unit_seconds=60) == 2

    def test_ticks_rejects_fractional(self):
        with pytest.raises(ValueError):
            TimeConstraint(90, "seconds").ticks(unit_seconds=60)


class TestClauseParsing:
    def test_passive(self):
        sentence = parse_sentence("The cuff is inflated.")
        clause = sentence.main.clauses[0]
        assert clause.subjects == ["cuff"]
        assert clause.verb == "inflate"
        assert clause.passive

    def test_progressive(self):
        clause = parse_sentence("Auto control mode is running.").main.clauses[0]
        assert clause.verb == "run"
        assert clause.progressive

    def test_complement(self):
        clause = parse_sentence("The pulse wave is available.").main.clauses[0]
        assert clause.verb is None
        assert clause.complement == "available"

    def test_negation(self):
        clause = parse_sentence("The cuff is not available.").main.clauses[0]
        assert clause.negated

    def test_modality_and_future(self):
        clause = parse_sentence("The alarm should sound.").main.clauses[0]
        assert clause.modality == "should"
        clause = parse_sentence("The cuff will be inflated.").main.clauses[0]
        assert clause.modality == "will"

    def test_cannot_sets_negation(self):
        clause = parse_sentence("The pump cannot be started.").main.clauses[0]
        assert clause.negated and clause.modality == "can"

    def test_linking_verb(self):
        clause = parse_sentence("Air Ok signal remains low.").main.clauses[0]
        assert clause.complement == "low"
        assert clause.subjects == ["air_ok_signal"]

    def test_active_with_object(self):
        clause = parse_sentence("The system enters the manual mode.").main.clauses[0]
        assert clause.verb == "enter"
        assert clause.object == "manual_mode"

    def test_particle(self):
        clause = parse_sentence("The LSTAT is powered on.").main.clauses[0]
        assert clause.verb == "power" and clause.particle == "on"

    def test_prepositional_complement(self):
        clause = parse_sentence("Robot 1 is in room 3.").main.clauses[0]
        assert clause.complement == "in_room_3"

    def test_constraint(self):
        clause = parse_sentence("The alarm is issued in 60 seconds.").main.clauses[0]
        assert clause.constraint == TimeConstraint(60, "seconds")

    def test_subject_conjunction(self):
        clause = parse_sentence("Pulse wave or arterial line is available.").main.clauses[0]
        assert clause.subjects == ["pulse_wave", "arterial_line"]
        assert clause.subject_conjunction == "or"

    def test_attributive_adjective_dropped(self):
        clause = parse_sentence("A valid blood pressure is unavailable.").main.clauses[0]
        assert clause.subjects == ["blood_pressure"]

    def test_mixed_subject_conjunction_rejected(self):
        with pytest.raises(StructuredEnglishError):
            parse_sentence("The cuff and pulse wave or arterial line is lost.")

    def test_missing_predicate_rejected(self):
        with pytest.raises(StructuredEnglishError):
            parse_sentence("The red cuff colour thing.")

    def test_empty_sentence_rejected(self):
        with pytest.raises(StructuredEnglishError):
            parse_sentence("   ")


class TestSentenceStructure:
    def test_leading_subclause(self):
        sentence = parse_sentence(
            "When auto control mode is entered, the cuff is inflated."
        )
        assert len(sentence.pre) == 1
        assert sentence.pre[0].subordinator == "when"
        assert len(sentence.main.clauses) == 1

    def test_subclause_continuation(self):
        sentence = parse_sentence(
            "If the pump is started, and the line is clear, the rate is updated."
        )
        assert len(sentence.pre) == 1
        assert len(sentence.pre[0].group.clauses) == 2
        assert sentence.pre[0].group.connectives == ["and"]

    def test_trailing_subclause(self):
        sentence = parse_sentence(
            "The CARA will be operational whenever the LSTAT is powered on."
        )
        assert len(sentence.post) == 1
        assert sentence.post[0].subordinator == "whenever"

    def test_until_subclause(self):
        sentence = parse_sentence(
            "The button is enabled until it is pressed."
        )
        assert sentence.post[0].subordinator == "until"

    def test_next_marker_on_main(self):
        sentence = parse_sentence(
            "If the cuff is lost, next manual mode is started."
        )
        assert sentence.main.clauses[0].next_marker

    def test_nested_if(self):
        sentence = parse_sentence(
            "If override selection is provided, if override yes is pressed, "
            "next arterial line is selected."
        )
        assert len(sentence.pre) == 2

    def test_conjoined_main_clauses(self):
        sentence = parse_sentence(
            "If the cuff is lost, an alarm is issued and override selection is provided."
        )
        assert len(sentence.main.clauses) == 2
        assert sentence.main.connectives == ["and"]

    def test_modifier(self):
        sentence = parse_sentence(
            "When the mode is entered, eventually the cuff is inflated."
        )
        assert sentence.main.clauses[0].modifier == "eventually"


class TestSyntaxTree:
    def test_figure2_shape(self):
        # Figure 2 of the paper: Req-17 decomposes into a when-subclause and
        # a main clause with the "eventually" modifier.
        sentence = parse_sentence(
            "When auto-control mode is entered, eventually the cuff will be inflated."
        )
        tree = syntax_tree(sentence)
        assert tree.label == "sentence"
        labels = [child.label for child in tree.children]
        assert labels == ["subclause", "clause"]
        subclause = tree.children[0]
        assert subclause.children[0].label == "subordinator"
        assert subclause.children[0].text == "when"
        main = tree.children[1]
        assert [c.label for c in main.children] == ["modifier", "subject", "predicate"]

    def test_render_is_stable(self):
        sentence = parse_sentence("If the cuff is lost, the alarm is issued.")
        assert render_sentence(sentence) == render_sentence(sentence)
        assert "subordinator: if" in render_sentence(sentence)


class TestDependencies:
    def test_acomp_for_complement(self):
        sentence = parse_sentence("The pulse wave is available.")
        deps = clause_dependencies(sentence.main.clauses[0])
        assert any(
            d.relation == "acomp" and d.head == "pulse_wave" and d.dependent == "available"
            for d in deps
        )

    def test_nsubjpass_for_passive(self):
        sentence = parse_sentence("The cuff is inflated.")
        deps = clause_dependencies(sentence.main.clauses[0])
        assert any(d.relation == "nsubjpass" for d in deps)

    def test_subject_dependents_table(self):
        sentences = [
            parse_sentence("The pulse wave is available."),
            parse_sentence("The pulse wave is unavailable."),
            parse_sentence("The cuff is inflated."),
        ]
        table = subject_dependents(sentences)
        assert table == {"pulse_wave": {"available", "unavailable"}}


class TestAntonymDictionary:
    def test_curated_pairs(self):
        dictionary = AntonymDictionary.default()
        assert dictionary.are_antonyms("available", "unavailable")
        assert dictionary.are_antonyms("unavailable", "available")
        assert dictionary.are_antonyms("lost", "available")

    def test_morphology(self):
        dictionary = AntonymDictionary.default()
        assert "unreachable" in dictionary.lookup("reachable")
        assert "reachable" in dictionary.lookup("unreachable")

    def test_polarity(self):
        dictionary = AntonymDictionary.default()
        assert dictionary.is_positive("available", "unavailable")
        assert not dictionary.is_positive("unavailable", "available")
        assert dictionary.is_positive("enabled", "disabled")

    def test_polarity_deterministic_for_unknown_pairs(self):
        dictionary = AntonymDictionary.default()
        assert dictionary.is_positive("alpha", "beta")
        assert not dictionary.is_positive("beta", "alpha")

    def test_custom_pairs(self):
        dictionary = AntonymDictionary.from_pairs([("hot", "cold")])
        assert dictionary.are_antonyms("hot", "cold")
        assert dictionary.is_positive("hot", "cold")


class TestNormaliseName:
    def test_joins_with_underscore(self):
        assert normalise_name(["auto-control", "mode"]) == "auto_control_mode"

    @given(st.lists(st.sampled_from(["pump", "line-a", "it's"]), min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_never_contains_hyphen_or_quote(self, parts):
        name = normalise_name(parts)
        assert "-" not in name and "'" not in name
