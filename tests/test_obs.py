"""Tests of the observability layer (``repro.obs``).

The contracts under test, in order of importance:

* **Tracing never changes results** — the canonical report bytes are
  identical with a tracer installed and without one.
* **Tracing off is a no-op** — instrumented call sites get the shared
  null handle when no tracer is active.
* **Exports are well-formed** — Chrome trace JSON passes the same
  structural validator CI runs (``benchmarks/trace_schema.py``): only
  balanced ``B``/``E`` pairs, monotone per-track timestamps.
* **Cross-process stitching** — pool-worker spans ship back through the
  result pipe and land under the dispatching ``pool.task`` span, one
  track per shard.
* **One metrics surface, one reset** — the registry exposes the legacy
  counter surfaces as namespaces without changing their shapes, and
  :func:`repro.obs.reset_counters` zeroes every surface together while
  leaving cached values untouched.
"""

from __future__ import annotations

import importlib.util
import io
import json
import logging
from pathlib import Path

import pytest

from repro import SpecCC, SpecSession
from repro.__main__ import main as cli_main
from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    Tracer,
    activated,
    chrome_events,
    get_tracer,
    registry,
    reset_counters,
    set_process_tracer,
    span,
    tracing_active,
)
from repro.service.server import normalize_response, serve, serve_async

DOC = (
    "If the sensor is active, the valve is opened.\n"
    "If the button is pressed, the lamp is activated.\n"
)


def _load_trace_schema():
    """The CI validator, imported from benchmarks/ (not a package)."""
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "trace_schema.py"
    spec = importlib.util.spec_from_file_location("trace_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


trace_schema = _load_trace_schema()


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing off."""
    set_process_tracer(None)
    yield
    set_process_tracer(None)


class TestTracer:
    def test_nested_spans_record_parent_links(self):
        tracer = Tracer(record_metrics=False)
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            with tracer.span("sibling"):
                pass
        records = tracer.records()
        by_name = {record["name"]: record for record in records}
        assert set(by_name) == {"outer", "inner", "sibling"}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["sibling"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["args"] == {"kind": "test"}
        for record in records:
            assert record["dur"] >= 0
            assert record["ts"] >= 0

    def test_no_tracer_returns_the_shared_null_span(self):
        assert not tracing_active()
        handle = span("anything", x=1)
        assert handle is NULL_SPAN
        # The null handle supports the full protocol.
        with handle as inner:
            assert inner.set(more=2) is inner
        assert handle.id is None

    def test_process_tracer_activates_module_span(self):
        tracer = Tracer(record_metrics=False)
        previous = set_process_tracer(tracer)
        assert previous is None
        assert tracing_active()
        with span("work"):
            pass
        assert [record["name"] for record in tracer.records()] == ["work"]
        assert set_process_tracer(None) is tracer

    def test_context_tracer_overrides_process_tracer(self):
        process = Tracer(name="process", record_metrics=False)
        request = Tracer(name="request", record_metrics=False)
        set_process_tracer(process)
        with activated(request):
            assert get_tracer() is request
            with span("routed"):
                pass
        assert get_tracer() is process
        assert process.records() == []
        assert [record["name"] for record in request.records()] == ["routed"]

    def test_activated_none_falls_through_to_process(self):
        process = Tracer(record_metrics=False)
        set_process_tracer(process)
        with activated(None):
            with span("still-recorded"):
                pass
        assert len(process.records()) == 1

    def test_exception_annotates_and_closes_the_span(self):
        tracer = Tracer(record_metrics=False)
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (record,) = tracer.records()
        assert record["args"]["error"] == "RuntimeError"

    def test_records_since_mark(self):
        tracer = Tracer(record_metrics=False)
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("after"):
            pass
        assert [r["name"] for r in tracer.records_since(mark)] == ["after"]

    def test_drain_empties_the_tracer(self):
        tracer = Tracer(record_metrics=False)
        with tracer.span("one"):
            pass
        batch = tracer.drain()
        assert len(batch) == 1
        assert tracer.records() == []

    def test_slow_span_logged_with_attributes(self, caplog):
        tracer = Tracer(slow_ms=0.0, record_metrics=False)
        with caplog.at_level(logging.WARNING, logger="repro.obs.trace"):
            with tracer.span("slowpoke", detail="payload"):
                pass
        messages = [r.getMessage() for r in caplog.records]
        assert any("slowpoke" in m and "payload" in m for m in messages)

    def test_adopt_stitches_a_shipped_batch(self):
        worker = Tracer(record_metrics=False)
        with worker.span("task"):
            with worker.span("step"):
                pass
        batch = worker.drain()

        parent = Tracer(record_metrics=False)
        with parent.span("dispatch") as dispatch:
            parent.adopt(batch, parent=dispatch, tid="shard3", offset_us=dispatch.ts)
        by_name = {record["name"]: record for record in parent.records()}
        assert by_name["task"]["parent"] == by_name["dispatch"]["id"]
        assert by_name["step"]["parent"] == by_name["task"]["id"]
        assert by_name["task"]["tid"] == "shard3"
        assert by_name["step"]["tid"] == "shard3"
        # Adopted ids were re-allocated: no collisions with local spans.
        ids = [record["id"] for record in parent.records()]
        assert len(ids) == len(set(ids))

    def test_every_span_feeds_a_latency_histogram(self):
        registry().reset()
        tracer = Tracer()  # record_metrics defaults on
        with tracer.span("pipeline.unit"):
            pass
        summary = registry().histograms_summary()
        assert summary["span.pipeline.unit"]["count"] == 1


class TestChromeExport:
    def test_export_passes_the_ci_validator(self, tmp_path):
        tracer = Tracer(record_metrics=False)
        with tracer.span("root", label="r"):
            with tracer.span("child"):
                pass
        target = tmp_path / "trace.json"
        events = tracer.export_chrome(target)
        assert events == 4  # two spans, one B + one E each
        summary = trace_schema.validate_file(target)
        assert summary["spans"] == 2

    def test_adopted_batch_exports_balanced_tracks(self, tmp_path):
        worker = Tracer(record_metrics=False)
        with worker.span("worker.check"):
            pass
        batch = worker.drain()
        parent = Tracer(record_metrics=False)
        with parent.span("pool.task") as sp:
            parent.adopt(batch, parent=sp, tid="shard0", offset_us=sp.ts)
        target = tmp_path / "stitched.json"
        parent.export_chrome(target)
        summary = trace_schema.validate_file(target)
        assert summary["spans"] == 2
        assert summary["tracks"] == 2  # MainThread + shard0

    def test_events_nest_even_with_tied_timestamps(self):
        records = [
            {"name": "a", "ts": 0.0, "dur": 5.0, "id": 1, "parent": None,
             "tid": "t", "args": {}},
            {"name": "b", "ts": 0.0, "dur": 5.0, "id": 2, "parent": 1,
             "tid": "t", "args": {}},
        ]
        events = chrome_events(records, pid=1)
        trace_schema.validate_events(events)
        assert [event["ph"] for event in events] == ["B", "B", "E", "E"]


class TestHistogram:
    def test_single_observation_reports_itself_exactly(self):
        histogram = Histogram()
        histogram.observe(0.0123)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["min"] == summary["max"] == 0.0123
        assert summary["p50"] == summary["p99"] == 0.0123

    def test_quantiles_are_ordered(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.004, 0.008, 0.016, 0.2, 0.9):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["p50"] <= summary["p90"] <= summary["p99"]
        assert summary["min"] <= summary["p50"]
        assert summary["p99"] <= summary["max"]

    def test_overflow_bucket_catches_outliers(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        histogram.observe(100.0)
        assert histogram.counts[-1] == 1
        assert histogram.quantile(0.5) == 100.0

    def test_empty_histogram_has_no_quantiles(self):
        assert Histogram().quantile(0.5) is None

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        assert reg.counter("serve.requests") == 1
        assert reg.counter("serve.requests", 4) == 5
        reg.set_gauge("pool.shards", 2.0)
        reg.observe("span.check", 0.25)
        snapshot = reg.snapshot()
        assert snapshot["counters"] == {"serve.requests": 5}
        assert snapshot["gauges"] == {"pool.shards": 2.0}
        assert snapshot["histograms"]["span.check"]["count"] == 1
        assert "buckets" in snapshot["histograms"]["span.check"]
        compact = reg.snapshot(full=False)
        assert "buckets" not in compact["histograms"]["span.check"]

    def test_raising_collector_reports_error_not_crash(self):
        reg = MetricsRegistry()

        def explode():
            raise RuntimeError("meter on fire")

        reg.register_collector("flaky", explode)
        snapshot = reg.snapshot()
        assert "meter on fire" in snapshot["flaky"]["error"]

    def test_process_registry_exposes_the_legacy_namespaces(self):
        SpecCC().check_document(DOC)
        snapshot = registry().snapshot()
        for namespace in ("pipeline", "sat", "game", "pool", "supervision"):
            assert namespace in snapshot, namespace
        # The legacy shapes survive: pipeline carries the cache layers,
        # sat/game split the synthesis accumulators by prefix.
        assert "component_cache" in snapshot["pipeline"]
        assert "propagations" in snapshot["sat"]
        assert "positions" in snapshot["game"]
        assert "attempts" in snapshot["supervision"]


class TestUnifiedReset:
    def test_reset_counters_zeroes_every_surface_keeping_values(self):
        tool = SpecCC()
        tool.check_document(DOC)
        tool.check_document(DOC)  # repeat: guarantees graph hits
        from repro.core.graph import shared_graph
        from repro.synthesis.realizability import synthesis_stats

        graph = shared_graph()
        before = graph.stats()
        assert any(s.hits or s.misses for s in before.values())
        sizes_before = graph.sizes()

        reset_counters()

        after = graph.stats()
        assert all(s.hits == 0 and s.misses == 0 for s in after.values())
        assert graph.sizes() == sizes_before  # values untouched
        assert all(v == 0 for v in synthesis_stats().values())
        assert registry().histograms_summary() == {}

    def test_clear_caches_routes_through_the_one_reset(self):
        tool = SpecCC()
        tool.check_document(DOC)
        registry().observe("span.probe", 0.1)
        SpecCC.clear_caches()
        from repro.synthesis.realizability import synthesis_stats

        assert all(v == 0 for v in synthesis_stats().values())
        assert registry().histograms_summary() == {}


class TestTracingNeverChangesResults:
    def test_report_bytes_identical_traced_and_untraced(self):
        from repro.service.reportjson import report_to_dict

        def canonical_bytes() -> str:
            report = SpecCC().check_document(DOC)
            return json.dumps(
                report_to_dict(report, timings=False), sort_keys=True
            )

        untraced = canonical_bytes()
        tracer = Tracer(name="identity-check")
        set_process_tracer(tracer)
        try:
            traced = canonical_bytes()
        finally:
            set_process_tracer(None)
        assert traced == untraced
        assert len(tracer.records()) > 0  # the tracer really was live


class TestCLITraceExport:
    def test_check_trace_out_writes_a_valid_trace(self, tmp_path, capsys):
        document = tmp_path / "doc.txt"
        document.write_text(DOC)
        target = tmp_path / "trace.json"
        code = cli_main(["check", str(document), "--trace-out", str(target)])
        assert code == 0
        summary = trace_schema.validate_file(target)
        assert summary["spans"] > 0
        assert f"{target}" in capsys.readouterr().err
        names = {
            event["name"]
            for event in json.loads(target.read_text())["traceEvents"]
        }
        # Every pipeline stage shows up as a span in one CLI check.
        for expected in (
            "check",
            "translate",
            "translate.parse",
            "translate.semantics",
            "translate.abstraction",
            "translate.partition",
            "pipeline.realizability",
            "solve.component",
        ):
            assert expected in names, expected

    def test_tracer_uninstalled_after_cli_run(self, tmp_path):
        document = tmp_path / "doc.txt"
        document.write_text(DOC)
        cli_main(["check", str(document), "--trace-out", str(tmp_path / "t.json")])
        assert not tracing_active()


def run_serve(requests):
    out = io.StringIO()
    serve(io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n"), out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


def run_serve_async(requests):
    out = io.StringIO()
    serve_async(
        io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n"), out
    )
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestServeObservability:
    def test_traced_request_ships_spans_on_the_response(self):
        responses = run_serve(
            [
                {"op": "add", "id": "R1", "text": "The valve is opened."},
                {"op": "check", "timings": False, "trace": True, "rid": 7},
                {"op": "shutdown"},
            ]
        )
        check = responses[1]
        assert check["ok"]
        names = [record["name"] for record in check["trace"]]
        assert "serve.check" in names
        assert "session.check" in names
        root = next(r for r in check["trace"] if r["name"] == "serve.check")
        assert root["args"]["rid"] == 7

    def test_untraced_request_has_no_trace_field(self):
        responses = run_serve(
            [
                {"op": "add", "id": "R1", "text": "The valve is opened."},
                {"op": "check", "timings": False},
                {"op": "shutdown"},
            ]
        )
        assert "trace" not in responses[1]

    def test_normalize_response_strips_the_volatile_surfaces(self):
        def script(trace: bool):
            check = {"op": "check", "timings": False}
            if trace:
                check["trace"] = True
            return [
                {"op": "add", "id": "R1", "text": "The valve is opened."},
                check,
                {"op": "shutdown"},
            ]

        traced = run_serve(script(trace=True))[1]
        untraced = run_serve(script(trace=False))[1]
        assert traced["trace"]
        assert traced["delta"]["stage_seconds"]  # timing data was captured
        assert json.dumps(
            normalize_response(traced), sort_keys=True
        ) == json.dumps(normalize_response(untraced), sort_keys=True)

    def test_metrics_op_sync(self):
        responses = run_serve([{"op": "metrics"}, {"op": "shutdown"}])
        metrics = responses[0]["metrics"]
        for namespace in (
            "counters", "gauges", "histograms",
            "pipeline", "sat", "game", "pool", "supervision",
        ):
            assert namespace in metrics, namespace

    def test_metrics_op_async(self):
        responses = run_serve_async(
            [{"op": "metrics", "full": False, "rid": 1}, {"op": "shutdown"}]
        )
        assert responses[0]["ok"]
        assert "pipeline" in responses[0]["metrics"]
        for data in responses[0]["metrics"]["histograms"].values():
            assert "buckets" not in data  # full=False: summaries only

    def test_session_check_reports_stage_seconds_when_traced(self):
        tracer = Tracer(record_metrics=False)
        set_process_tracer(tracer)
        try:
            session = SpecSession()
            session.add("R1", "If the feed is valid, the lamp is activated.")
            report = session.check()
        finally:
            set_process_tracer(None)
        assert "translate" in report.delta.stage_seconds
        assert report.delta.stage_seconds["translate"] > 0

    def test_session_check_stage_seconds_empty_untraced(self):
        session = SpecSession()
        session.add("R1", "The valve is opened.")
        assert session.check().delta.stage_seconds == {}


class TestPoolSpanStitching:
    def test_worker_spans_land_under_the_dispatching_task(self):
        from repro.service.pool import WorkerPool

        tracer = Tracer(name="pool-trace", record_metrics=False)
        set_process_tracer(tracer)
        try:
            with WorkerPool(shards=1, prewarm=False) as pool:
                tasks = pool.check_documents([("doc", DOC)])
        finally:
            set_process_tracer(None)
        assert tasks[0].error is None
        records = tracer.records()
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        assert "pool.task" in by_name
        assert "worker.check" in by_name, sorted(by_name)
        (task_span,) = by_name["pool.task"]
        (worker_span,) = by_name["worker.check"]
        # The acceptance criterion: the worker's span is stitched under
        # the dispatching request's span, on the shard's own track.
        assert worker_span["parent"] == task_span["id"]
        assert worker_span["tid"] == "shard0"
        # The worker's nested pipeline spans rode along too.
        assert "translate" in by_name
        assert "pipeline.realizability" in by_name
        roots = [r for r in records if r["parent"] is None]
        assert {r["name"] for r in roots} == {"pool.task"}

    def test_stitched_trace_exports_clean(self, tmp_path):
        from repro.service.pool import WorkerPool

        tracer = Tracer(record_metrics=False)
        set_process_tracer(tracer)
        try:
            with WorkerPool(shards=2, prewarm=False) as pool:
                pool.check_documents(
                    [("a", DOC), ("b", "The valve is opened.\n")]
                )
        finally:
            set_process_tracer(None)
        target = tmp_path / "pool_trace.json"
        tracer.export_chrome(target)
        summary = trace_schema.validate_file(target)
        assert summary["spans"] >= 4  # 2 pool.task + 2 worker.check minimum

    def test_untraced_pool_ships_no_spans(self):
        from repro.service.pool import WorkerPool

        with WorkerPool(shards=1, prewarm=False) as pool:
            tasks = pool.check_documents([("doc", DOC)])
        assert tasks[0].spans == ()
