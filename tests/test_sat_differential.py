"""Differential fuzzing of the CDCL solver against the brute-force oracle.

Hypothesis generates random CNFs (and assumption sets) and cross-checks

* ``CDCLSolver(propagation="watch")`` — the two-watched-literal default,
* ``CDCLSolver(propagation="scan")`` — the full-clause re-scan reference,
* ``solve_brute`` — exhaustive enumeration, the ground truth.

SAT answers are verified by evaluating the model against every clause;
UNSAT answers must agree on all three sides; failed-assumption cores are
checked for membership (every core literal is an assumption) and
sufficiency (the formula plus the core alone is unsatisfiable by brute
force).  All runs are derandomized so CI is deterministic; the shrink
database (``.hypothesis/``) is gitignored.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import CDCLSolver, CNF, solve_brute

NUM_VARS = 6

literals = st.integers(min_value=1, max_value=NUM_VARS).flatmap(
    lambda var: st.sampled_from([var, -var])
)
clauses = st.lists(literals, min_size=1, max_size=4)
cnfs = st.lists(clauses, min_size=0, max_size=30)
assumption_sets = st.lists(literals, min_size=1, max_size=4)

DETERMINISTIC = settings(max_examples=120, deadline=None, derandomize=True)


def build(clause_list) -> CNF:
    cnf = CNF()
    for clause in clause_list:
        cnf.add(clause)
    cnf.num_vars = max(cnf.num_vars, NUM_VARS)
    return cnf


def assert_model_satisfies(result, cnf: CNF, context: str) -> None:
    for clause in cnf.clauses:
        assert any(result.value(lit) for lit in clause), (context, clause)


class TestSolveAgainstBrute:
    @given(cnfs)
    @DETERMINISTIC
    def test_watch_mode_agrees_with_brute(self, clause_list):
        cnf = build(clause_list)
        brute = solve_brute(cnf)
        result = CDCLSolver(cnf, propagation="watch").solve()
        assert bool(result) == (brute is not None)
        if result:
            assert_model_satisfies(result, cnf, "watch")

    @given(cnfs)
    @DETERMINISTIC
    def test_scan_mode_agrees_with_brute(self, clause_list):
        cnf = build(clause_list)
        brute = solve_brute(cnf)
        result = CDCLSolver(cnf, propagation="scan").solve()
        assert bool(result) == (brute is not None)
        if result:
            assert_model_satisfies(result, cnf, "scan")

    @given(cnfs)
    @DETERMINISTIC
    def test_modes_agree_with_each_other(self, clause_list):
        watch = CDCLSolver(build(clause_list), propagation="watch").solve()
        scan = CDCLSolver(build(clause_list), propagation="scan").solve()
        assert bool(watch) == bool(scan)


class TestAssumptionCores:
    @given(cnfs, assumption_sets)
    @DETERMINISTIC
    def test_verdict_matches_unit_clauses(self, clause_list, assumptions):
        cnf = build(clause_list)
        with_units = build(clause_list)
        for lit in assumptions:
            with_units.add([lit])
        expected = solve_brute(with_units) is not None
        for mode in ("watch", "scan"):
            result = CDCLSolver(cnf, propagation=mode).solve(assumptions)
            assert bool(result) == expected, mode

    @given(cnfs, assumption_sets)
    @DETERMINISTIC
    def test_core_membership_and_sufficiency(self, clause_list, assumptions):
        cnf = build(clause_list)
        result = CDCLSolver(cnf).solve(assumptions)
        if result:
            assert_model_satisfies(result, cnf, "assumptions-sat")
            for lit in assumptions:
                assert result.value(lit), lit
            return
        core = result.failed_assumptions
        assert core is not None
        # Membership: the core only ever names given assumptions.
        assert set(core) <= set(assumptions)
        # Sufficiency: the formula plus the core alone is unsatisfiable.
        with_core = build(clause_list)
        for lit in core:
            with_core.add([lit])
        assert solve_brute(with_core) is None, (core, assumptions)

    def test_core_traces_implication_chain(self):
        # 1 -> 2 -> 3; assuming 1 and -3 must fail with exactly {1, -3}:
        # the trace excludes unrelated assumptions like 5.
        cnf = build([[-1, 2], [-2, 3]])
        result = CDCLSolver(cnf).solve(assumptions=[5, 1, -3])
        assert not result
        assert result.failed_assumptions == [1, -3]

    def test_root_falsified_assumption_is_its_own_core(self):
        cnf = build([[-4]])
        result = CDCLSolver(cnf).solve(assumptions=[2, 4])
        assert not result
        assert result.failed_assumptions == [4]


class TestIncrementalSolving:
    """Solver reuse across ``solve()`` calls: clauses added after an
    answer (with watcher/trail repair) must behave exactly as if the
    solver had been built from the combined formula, for both
    propagation schemes, with learnt clauses carried across calls."""

    @given(cnfs, cnfs)
    @DETERMINISTIC
    def test_add_clause_after_answer_agrees_with_brute(self, first, second):
        for mode in ("watch", "scan"):
            solver = CDCLSolver(build(first), propagation=mode)
            result = solver.solve()
            assert bool(result) == (solve_brute(build(first)) is not None), mode
            for clause in second:
                solver.add_clause(clause)
            combined = build(first + second)
            result = solver.solve()
            assert bool(result) == (solve_brute(combined) is not None), mode
            if result:
                assert_model_satisfies(result, combined, ("incremental", mode))

    @given(cnfs, cnfs, cnfs)
    @DETERMINISTIC
    def test_three_epochs_agree_with_brute(self, first, second, third):
        solver = CDCLSolver(build(first))
        accumulated = list(first)
        solver.solve()
        for chunk in (second, third):
            for clause in chunk:
                solver.add_clause(clause)
            accumulated.extend(chunk)
            combined = build(accumulated)
            result = solver.solve()
            assert bool(result) == (solve_brute(combined) is not None)
            if result:
                assert_model_satisfies(result, combined, "epochs")
        incremental = solver.stats()["incremental"]
        assert incremental["solves"] == 3
        assert incremental["clauses_added"] == len(second) + len(third)

    @given(cnfs, assumption_sets)
    @DETERMINISTIC
    def test_assumptions_after_clause_additions(self, clause_list, assumptions):
        solver = CDCLSolver(build([]))
        solver.solve()
        for clause in clause_list:
            solver.add_clause(clause)
        with_units = build(clause_list)
        for lit in assumptions:
            with_units.add([lit])
        expected = solve_brute(with_units) is not None
        result = solver.solve(assumptions)
        assert bool(result) == expected
        if result:
            assert_model_satisfies(result, build(clause_list), "assume-after-add")
            for lit in assumptions:
                assert result.value(lit), lit


class TestActivationLiteralGating:
    """The retractable-clause-group protocol the incremental synthesis
    encoding uses: group ``i``'s clauses are widened with ``-act_i``,
    solved under the assumption ``act_i``, and retired for good by the
    unit clause ``[-act_i]`` — after which only later groups constrain
    the solver.  Cross-checked against brute force on the clause sets
    that are active at each step."""

    ACTS = (NUM_VARS + 1, NUM_VARS + 2)

    def gated(self, chunk, act):
        return [list(clause) + [-act] for clause in chunk]

    @given(cnfs, cnfs, cnfs)
    @DETERMINISTIC
    def test_gated_groups_match_brute(self, permanent, group1, group2):
        act1, act2 = self.ACTS
        cnf = build(permanent + self.gated(group1, act1))
        cnf.num_vars = max(cnf.num_vars, act2)
        solver = CDCLSolver(cnf)
        expected = solve_brute(build(permanent + group1)) is not None
        result = solver.solve([act1])
        assert bool(result) == expected
        if result:
            assert_model_satisfies(result, build(permanent + group1), "epoch-1")
        # Retire group 1, activate group 2: group 1 must stop constraining.
        solver.add_clause([-act1])
        for clause in self.gated(group2, act2):
            solver.add_clause(clause)
        expected = solve_brute(build(permanent + group2)) is not None
        result = solver.solve([act2])
        assert bool(result) == expected
        if result:
            assert_model_satisfies(result, build(permanent + group2), "epoch-2")
        incremental = solver.stats()["incremental"]
        assert incremental["solves"] == 2
        assert incremental["clauses_added"] == len(group2) + 1

    def test_learnt_clauses_survive_growth(self):
        # A pigeonhole-flavoured UNSAT core forces real conflicts; the
        # second solve must start with learnt clauses still in the DB.
        from repro.sat.cnf import CNF as RawCNF

        cnf = RawCNF()
        n = 4
        holes = {
            (p, h): cnf.new_var(f"p{p}h{h}")
            for p in range(n + 1)
            for h in range(n)
        }
        for p in range(n + 1):
            cnf.add([holes[(p, h)] for h in range(n)])
        solver = CDCLSolver(cnf)
        assert solver.solve()  # satisfiable without exclusivity
        for h in range(n):
            for p1 in range(n + 1):
                for p2 in range(p1 + 1, n + 1):
                    solver.add_clause([-holes[(p1, h)], -holes[(p2, h)]])
        assert not solver.solve()  # pigeonhole is UNSAT
        stats = solver.stats()
        assert stats["conflicts"] > 0
        assert not solver.solve()  # re-answer from the same solver
        assert solver.stats()["incremental"]["learnt_carried"] > 0


class TestSeededCorpus:
    """A fixed random corpus on top of Hypothesis, mirroring the historical
    ``random_cnf`` tests but now exercising both propagation schemes and
    assumption handling on every instance."""

    def corpus(self, seed: int):
        rng = random.Random(seed)
        cnf = CNF()
        for _ in range(rng.randint(5, 45)):
            width = rng.randint(1, 3)
            cnf.add(
                [
                    var if rng.random() < 0.5 else -var
                    for var in (rng.randint(1, 8) for _ in range(width))
                ]
            )
        cnf.num_vars = max(cnf.num_vars, 8)
        assumptions = [
            rng.choice([1, -1]) * rng.randint(1, 8) for _ in range(rng.randint(0, 3))
        ]
        return cnf, assumptions

    @pytest.mark.parametrize("seed", range(40))
    def test_corpus_instance(self, seed):
        cnf, assumptions = self.corpus(seed)
        with_units = CNF()
        with_units.add_all(cnf.clauses)
        for lit in assumptions:
            with_units.add([lit])
        expected = solve_brute(with_units) is not None
        for mode in ("watch", "scan"):
            result = CDCLSolver(cnf, propagation=mode).solve(assumptions)
            assert bool(result) == expected, (seed, mode)
            if result:
                assert_model_satisfies(result, cnf, (seed, mode))
            elif result.failed_assumptions:
                core = result.failed_assumptions
                assert set(core) <= set(assumptions), (seed, mode)
                with_core = CNF()
                with_core.add_all(cnf.clauses)
                for lit in core:
                    with_core.add([lit])
                assert solve_brute(with_core) is None, (seed, mode, core)
