"""Differential fuzzing of the CDCL solver against the brute-force oracle.

Hypothesis generates random CNFs (and assumption sets) and cross-checks

* ``CDCLSolver(propagation="watch")`` — the two-watched-literal default,
* ``CDCLSolver(propagation="scan")`` — the full-clause re-scan reference,
* ``solve_brute`` — exhaustive enumeration, the ground truth.

SAT answers are verified by evaluating the model against every clause;
UNSAT answers must agree on all three sides; failed-assumption cores are
checked for membership (every core literal is an assumption) and
sufficiency (the formula plus the core alone is unsatisfiable by brute
force).  All runs are derandomized so CI is deterministic; the shrink
database (``.hypothesis/``) is gitignored.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import CDCLSolver, CNF, solve_brute

NUM_VARS = 6

literals = st.integers(min_value=1, max_value=NUM_VARS).flatmap(
    lambda var: st.sampled_from([var, -var])
)
clauses = st.lists(literals, min_size=1, max_size=4)
cnfs = st.lists(clauses, min_size=0, max_size=30)
assumption_sets = st.lists(literals, min_size=1, max_size=4)

DETERMINISTIC = settings(max_examples=120, deadline=None, derandomize=True)


def build(clause_list) -> CNF:
    cnf = CNF()
    for clause in clause_list:
        cnf.add(clause)
    cnf.num_vars = max(cnf.num_vars, NUM_VARS)
    return cnf


def assert_model_satisfies(result, cnf: CNF, context: str) -> None:
    for clause in cnf.clauses:
        assert any(result.value(lit) for lit in clause), (context, clause)


class TestSolveAgainstBrute:
    @given(cnfs)
    @DETERMINISTIC
    def test_watch_mode_agrees_with_brute(self, clause_list):
        cnf = build(clause_list)
        brute = solve_brute(cnf)
        result = CDCLSolver(cnf, propagation="watch").solve()
        assert bool(result) == (brute is not None)
        if result:
            assert_model_satisfies(result, cnf, "watch")

    @given(cnfs)
    @DETERMINISTIC
    def test_scan_mode_agrees_with_brute(self, clause_list):
        cnf = build(clause_list)
        brute = solve_brute(cnf)
        result = CDCLSolver(cnf, propagation="scan").solve()
        assert bool(result) == (brute is not None)
        if result:
            assert_model_satisfies(result, cnf, "scan")

    @given(cnfs)
    @DETERMINISTIC
    def test_modes_agree_with_each_other(self, clause_list):
        watch = CDCLSolver(build(clause_list), propagation="watch").solve()
        scan = CDCLSolver(build(clause_list), propagation="scan").solve()
        assert bool(watch) == bool(scan)


class TestAssumptionCores:
    @given(cnfs, assumption_sets)
    @DETERMINISTIC
    def test_verdict_matches_unit_clauses(self, clause_list, assumptions):
        cnf = build(clause_list)
        with_units = build(clause_list)
        for lit in assumptions:
            with_units.add([lit])
        expected = solve_brute(with_units) is not None
        for mode in ("watch", "scan"):
            result = CDCLSolver(cnf, propagation=mode).solve(assumptions)
            assert bool(result) == expected, mode

    @given(cnfs, assumption_sets)
    @DETERMINISTIC
    def test_core_membership_and_sufficiency(self, clause_list, assumptions):
        cnf = build(clause_list)
        result = CDCLSolver(cnf).solve(assumptions)
        if result:
            assert_model_satisfies(result, cnf, "assumptions-sat")
            for lit in assumptions:
                assert result.value(lit), lit
            return
        core = result.failed_assumptions
        assert core is not None
        # Membership: the core only ever names given assumptions.
        assert set(core) <= set(assumptions)
        # Sufficiency: the formula plus the core alone is unsatisfiable.
        with_core = build(clause_list)
        for lit in core:
            with_core.add([lit])
        assert solve_brute(with_core) is None, (core, assumptions)

    def test_core_traces_implication_chain(self):
        # 1 -> 2 -> 3; assuming 1 and -3 must fail with exactly {1, -3}:
        # the trace excludes unrelated assumptions like 5.
        cnf = build([[-1, 2], [-2, 3]])
        result = CDCLSolver(cnf).solve(assumptions=[5, 1, -3])
        assert not result
        assert result.failed_assumptions == [1, -3]

    def test_root_falsified_assumption_is_its_own_core(self):
        cnf = build([[-4]])
        result = CDCLSolver(cnf).solve(assumptions=[2, 4])
        assert not result
        assert result.failed_assumptions == [4]


class TestSeededCorpus:
    """A fixed random corpus on top of Hypothesis, mirroring the historical
    ``random_cnf`` tests but now exercising both propagation schemes and
    assumption handling on every instance."""

    def corpus(self, seed: int):
        rng = random.Random(seed)
        cnf = CNF()
        for _ in range(rng.randint(5, 45)):
            width = rng.randint(1, 3)
            cnf.add(
                [
                    var if rng.random() < 0.5 else -var
                    for var in (rng.randint(1, 8) for _ in range(width))
                ]
            )
        cnf.num_vars = max(cnf.num_vars, 8)
        assumptions = [
            rng.choice([1, -1]) * rng.randint(1, 8) for _ in range(rng.randint(0, 3))
        ]
        return cnf, assumptions

    @pytest.mark.parametrize("seed", range(40))
    def test_corpus_instance(self, seed):
        cnf, assumptions = self.corpus(seed)
        with_units = CNF()
        with_units.add_all(cnf.clauses)
        for lit in assumptions:
            with_units.add([lit])
        expected = solve_brute(with_units) is not None
        for mode in ("watch", "scan"):
            result = CDCLSolver(cnf, propagation=mode).solve(assumptions)
            assert bool(result) == expected, (seed, mode)
            if result:
                assert_model_satisfies(result, cnf, (seed, mode))
            elif result.failed_assumptions:
                core = result.failed_assumptions
                assert set(core) <= set(assumptions), (seed, mode)
                with_core = CNF()
                with_core.add_all(cnf.clauses)
                for lit in core:
                    with_core.add([lit])
                assert solve_brute(with_core) is None, (seed, mode, core)
