"""Tests of the remote worker backend (service/remote.py).

The contract under test: real ``python -m repro worker`` subprocesses
registered with a :class:`RemoteWorkerHub` produce reports byte-identical
to ``workers=1``, consistent-hash placement moves only the shards a
membership change has to move, and the supervision ladder — worker death,
respawn-as-reconnect, retry — carries over to dropped connections with
the same exact counters as the in-process pool.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import BatchChecker
from repro.service.faults import FaultPlan, FaultSpec
from repro.service.pool import WorkerPool
from repro.service.remote import RemoteWorkerHub, _hash_point
from repro.service.supervision import SupervisionConfig, WorkerUnavailable

from test_pool import CORPUS13, DOCS, FAST, canonical

SRC = Path(__file__).resolve().parents[1] / "src"


def spawn_worker(port: int, name: str) -> subprocess.Popen:
    """One real worker process, as ``python -m repro worker`` runs it."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--name",
            name,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def reap(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.terminate()
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


class TestPlacement:
    """Consistent hashing over fake membership — no sockets involved."""

    def _hub_with(self, names):
        hub = RemoteWorkerHub()
        # worker_for only needs ring membership; opaque values suffice.
        hub._workers = {name: name for name in names}
        return hub

    def test_placement_is_deterministic(self):
        first = self._hub_with(["alpha", "beta"])
        second = self._hub_with(["beta", "alpha"])  # insertion order moot
        for shard in range(64):
            assert first.worker_for(shard) == second.worker_for(shard)

    def test_placement_spreads_shards(self):
        hub = self._hub_with(["alpha", "beta"])
        owners = {hub.worker_for(shard) for shard in range(64)}
        assert owners == {"alpha", "beta"}

    def test_membership_change_moves_only_to_the_new_worker(self):
        """The consistent-hashing property the warm caches rely on: a
        joining worker only steals shards for itself; every other shard
        keeps its (warm) owner — and a leave restores exactly the old
        placement."""
        hub = self._hub_with(["alpha", "beta"])
        before = {shard: hub.worker_for(shard) for shard in range(64)}
        hub._workers["gamma"] = "gamma"
        after = {shard: hub.worker_for(shard) for shard in range(64)}
        moved = {s for s in range(64) if after[s] != before[s]}
        assert moved  # gamma took something
        assert all(after[s] == "gamma" for s in moved)
        del hub._workers["gamma"]
        assert {shard: hub.worker_for(shard) for shard in range(64)} == before

    def test_no_workers_is_unavailable(self):
        hub = self._hub_with([])
        with pytest.raises(WorkerUnavailable):
            hub.worker_for(0)

    def test_hash_point_is_stable(self):
        # PYTHONHASHSEED-free: the same key must land on the same ring
        # position in every process, or placement would churn per run.
        assert _hash_point("alpha#0") == _hash_point("alpha#0")
        assert _hash_point("alpha#0") != _hash_point("alpha#1")


class TestBatchCheckerValidation:
    def test_remote_backend_requires_a_hub(self):
        with pytest.raises(ValueError, match="RemoteWorkerHub"):
            BatchChecker(backend="remote")

    def test_registration_timeout_is_worker_unavailable(self):
        hub = RemoteWorkerHub(min_workers=1, register_timeout=0.2)
        pool = WorkerPool(shards=2, prewarm=False, remote=hub)
        try:
            with pytest.raises(WorkerUnavailable, match="0 of 1"):
                pool.submit("doc", DOCS[0][1])
        finally:
            pool.shutdown(wait=False)
            hub.close()


class TestRemoteWorkers:
    """End-to-end over loopback with real worker subprocesses."""

    def test_two_workers_byte_identical_13_docs(self):
        """The acceptance criterion: the 13-doc corpus over two remote
        workers matches ``workers=1`` byte for byte, through both the
        raw pool and ``BatchChecker(backend="remote")``."""
        sequential = canonical(
            BatchChecker(workers=1).check_documents(CORPUS13)
        )
        hub = RemoteWorkerHub(min_workers=2, register_timeout=60.0)
        hub.start()
        pool = WorkerPool(
            shards=8,
            prewarm=False,
            remote=hub,
            supervision=SupervisionConfig(seed=0, **FAST),
        )
        procs = []
        try:
            for name in ("alpha", "beta"):
                procs.append(spawn_worker(hub.port, name))
                assert hub.wait_for_workers(len(procs), 60.0)

            tasks = pool.check_documents(CORPUS13)
            got = [json.dumps(task.data, sort_keys=True) for task in tasks]
            assert got == sequential
            assert all(task.error is None for task in tasks)

            stats = pool.stats()
            remote = stats["remote"]
            assert set(remote["workers"]) == {"alpha", "beta"}
            assert remote["registrations"] == 2
            assert sum(w["tasks"] for w in remote["workers"].values()) == len(
                CORPUS13
            )
            # Both workers host shards (consistent-hash spread).
            assert set(hub.placement(8).values()) == {"alpha", "beta"}

            snapshots = pool.worker_snapshots()
            assert len(snapshots) == 2
            assert all("component_cache" in snap for snap in snapshots)

            # The BatchChecker front end over the same hub and the same
            # (now warm) workers: still the sequential bytes.
            checker = BatchChecker(
                workers=2,
                backend="remote",
                remote=hub,
                supervision=SupervisionConfig(seed=0, **FAST),
            )
            try:
                assert canonical(checker.check_documents(CORPUS13)) == sequential
            finally:
                if checker.pool is not None:
                    checker.pool.shutdown(wait=False)
        finally:
            pool.shutdown(wait=False)
            hub.close()
            codes = []
            for proc in procs:
                try:
                    codes.append(proc.wait(timeout=15))
                except subprocess.TimeoutExpired:
                    codes.append(None)
                reap(proc)
        # The hub hang-up is a clean worker exit, not a crash.
        assert codes == [0, 0]

    def test_remote_error_records_byte_identical(self):
        """A document whose pipeline raises inside a remote worker yields
        the same error record as the sequential run — the rebuilt remote
        exception surfaces under its original type name."""
        corpus = [("bad", [("R1", "")]), ("good", DOCS[0][1])]
        sequential = canonical(BatchChecker(workers=1).check_documents(corpus))
        hub = RemoteWorkerHub(min_workers=1, register_timeout=60.0)
        hub.start()
        pool = WorkerPool(
            shards=2,
            prewarm=False,
            remote=hub,
            supervision=SupervisionConfig(seed=0, **FAST),
        )
        proc = spawn_worker(hub.port, "solo")
        try:
            tasks = pool.check_documents(corpus)
            assert [
                json.dumps(task.data, sort_keys=True) for task in tasks
            ] == sequential
            bad = tasks[0]
            assert bad.error is not None
            assert bad.data["error"]["type"] == "StructuredEnglishError"
            stats = pool.stats()
            assert stats["supervision"]["error_records"] == 1
            assert stats["supervision"]["worker_deaths"] == 0
        finally:
            pool.shutdown(wait=False)
            hub.close()
            reap(proc)

    def test_worker_crash_reconnect_recovers_byte_identical(self):
        """Kill the serving worker mid-corpus via a scheduled crash
        fault; an external monitor restarts the process (as systemd or
        the CI soak harness would), it re-registers under the same name
        at spawn generation 1, and the batch completes byte-identical
        with the pool's usual exact counters: one death, one
        respawn-as-reconnect, one retry."""
        sequential = canonical(
            BatchChecker(workers=1).check_documents(CORPUS13)
        )
        # One shard ⇒ one dispatcher ⇒ serial tasks on whichever worker
        # the ring places shard 0 on — compute that name the same way
        # the hub does, so the crash targets the worker that serves.
        scratch = RemoteWorkerHub()
        scratch._workers = {"alpha": "alpha", "beta": "beta"}
        target = scratch.worker_for(0)
        standby = "beta" if target == "alpha" else "alpha"
        # The fault plan addresses workers by registration index; the
        # target registers first, so it is index 0.  ``max_spawn=0``
        # keeps the fault from re-firing after the reconnect.
        plan = FaultPlan(
            specs=(FaultSpec(kind="crash", shard=0, task=2, max_spawn=0),),
            seed=11,
        )
        hub = RemoteWorkerHub(
            min_workers=2, register_timeout=60.0, reconnect_timeout=20.0
        )
        hub.start()
        pool = WorkerPool(
            shards=1,
            prewarm=False,
            remote=hub,
            fault_plan=plan,
            supervision=SupervisionConfig(seed=plan.seed, **FAST),
        )
        procs = {}
        procs[target] = spawn_worker(hub.port, target)
        assert hub.wait_for_workers(1, 60.0)
        procs[standby] = spawn_worker(hub.port, standby)
        assert hub.wait_for_workers(2, 60.0)

        # The external supervisor: restart the target once it dies.
        def monitor():
            while True:
                if procs[target].poll() is not None:
                    procs[target] = spawn_worker(hub.port, target)
                    return
                time.sleep(0.05)

        watcher = threading.Thread(target=monitor, daemon=True)
        watcher.start()
        try:
            tasks = pool.check_documents(CORPUS13)
            got = [json.dumps(task.data, sort_keys=True) for task in tasks]
            stats = pool.stats()
            assert got == sequential
            assert all(task.error is None for task in tasks)
            supervision = stats["supervision"]
            assert supervision["worker_deaths"] == 1
            assert supervision["restarts"] == 1
            assert supervision["retries"] == 1
            assert supervision["attempts"] == len(CORPUS13) + 1
            assert supervision["timeouts"] == 0
            assert supervision["degraded"] is False
            assert stats["spawns"] == [1]
            # The restarted process re-registers under the same name at
            # the next spawn generation.
            watcher.join(timeout=30.0)
            assert not watcher.is_alive()
            assert hub.wait_for_workers(2, 30.0)
            assert hub.stats()["workers"][target]["spawn"] == 1
            assert hub.stats()["lost"] >= 1
        finally:
            pool.shutdown(wait=False)
            hub.close()
            for proc in procs.values():
                reap(proc)


class TestReconnectBackoff:
    """``worker --reconnect`` retry pacing (no sockets involved)."""

    def test_delay_sequence_is_capped_seeded_exponential(self, monkeypatch):
        from repro.service import remote
        from repro.service.remote import (
            reconnect_backoff_delay,
            run_worker_loop,
        )

        monkeypatch.setattr(
            remote, "run_worker",
            lambda host, port, name=None: (_ for _ in ()).throw(
                OSError("connection refused")
            ),
        )
        slept = []
        code = run_worker_loop(
            "127.0.0.1", 1, name="w1", reconnect_delay=0.5,
            max_reconnects=7, reconnect_cap=4.0, sleep=slept.append,
        )
        assert code == 1
        # Every consecutive failure climbs the same capped, seeded-jitter
        # exponential curve the supervisor uses for respawns — the exact
        # sequence, not just its shape.
        expected = [
            reconnect_backoff_delay(k, base=0.5, cap=4.0, key="w1")
            for k in range(1, 8)
        ]
        assert slept == expected
        # Base, doubling, and cap are all visible in the raw values: the
        # jitter stretches by at most 25%, so consecutive uncapped delays
        # still at least ~1.6x each other, and the tail stops growing.
        assert 0.5 <= slept[0] <= 0.5 * 1.25
        for earlier, later in zip(slept[:3], slept[1:4]):
            assert later > earlier * 1.5
        assert all(4.0 <= delay <= 4.0 * 1.25 for delay in slept[4:])

    def test_clean_service_resets_the_backoff(self, monkeypatch):
        from repro.service import remote
        from repro.service.remote import (
            reconnect_backoff_delay,
            run_worker_loop,
        )

        # Two hub outages with a healthy stretch between them: the loop
        # must climb, reset on the clean hang-up, and climb again from
        # the base rather than from where the first outage left off.
        codes = iter([1, 1, 1, 0, 1, 1])

        def fake_run_worker(host, port, name=None):
            return next(codes)

        monkeypatch.setattr(remote, "run_worker", fake_run_worker)
        slept = []
        run_worker_loop(
            "127.0.0.1", 1, name="w2", reconnect_delay=0.25,
            max_reconnects=5, reconnect_cap=8.0, sleep=slept.append,
        )
        delay = lambda k: reconnect_backoff_delay(k, base=0.25, cap=8.0, key="w2")  # noqa: E731
        # (The final attempt exhausts max_reconnects and returns without
        # sleeping, so the second climb shows only its first step.)
        assert slept == [delay(1), delay(2), delay(3), delay(1), delay(1)]

    def test_jitter_is_deterministic_but_desynchronised(self):
        from repro.service.remote import reconnect_backoff_delay

        assert reconnect_backoff_delay(3, key="a") == reconnect_backoff_delay(3, key="a")
        assert reconnect_backoff_delay(3, key="a") != reconnect_backoff_delay(3, key="b")
