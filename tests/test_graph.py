"""Tests of the incremental analysis graph (core/graph.py) and of the
component-decomposed Algorithm 1 riding on it.

Two contracts matter:

* the graph machinery itself — signature-keyed memos with exact hit/miss
  counters, edge recording, LRU (shared flavour) vs retain-pruning
  (per-document flavour), thread safety;
* the semantic decomposition — splitting Algorithm 1's subject table into
  word-connected components and replaying each in isolation must
  reproduce the monolithic algorithm *exactly*, including the
  order-coupled ``wordset`` mutations (the ``online(w)`` memo is filled
  at most once per word, so pairing under one subject can mask lookups
  under a later subject — a component boundary must never change that).
"""

from __future__ import annotations

import itertools
import random
import threading

import pytest

from repro.core.graph import AnalysisGraph, shared_graph
from repro.nlp import parse_sentence
from repro.nlp.antonyms import AntonymDictionary
from repro.nlp.dependencies import candidate_subjects, sentence_vocabulary
from repro.translate.semantics import (
    SemanticsDelta,
    _analyse_table,
    _analyse_table_monolithic,
    _replay_subject,
    analyse,
    analyse_incremental,
    semantics_cache_info,
)
from repro.translate.translator import TranslationCache


class TestAnalysisGraph:
    def test_compute_counts_hits_and_misses(self):
        graph = AnalysisGraph(("stage",))
        calls = []
        value = graph.compute("stage", "k", lambda: calls.append(1) or 41)
        again = graph.compute("stage", "k", lambda: calls.append(1) or 42)
        assert value == again == 41  # second call served from the node
        assert len(calls) == 1
        stats = graph.stats()["stage"]
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_unknown_stage_is_rejected(self):
        graph = AnalysisGraph(("stage",))
        with pytest.raises(KeyError):
            graph.compute("nope", "k", lambda: 1)

    def test_edges_are_recorded_both_ways(self):
        graph = AnalysisGraph(("a", "b"))
        graph.compute("a", 1, lambda: "x")
        graph.compute("b", 2, lambda: "y", deps=(("a", 1),))
        assert graph.dependencies("b", 2) == (("a", 1),)
        assert graph.dependents("a", 1) == (("b", 2),)
        assert graph.dependencies("a", 1) == ()

    def test_lru_stage_evicts_oldest_and_its_edges(self):
        graph = AnalysisGraph(("a", "b"), max_entries=2, lru=True)
        graph.compute("a", 0, lambda: "dep")
        for key in (1, 2, 3):
            graph.compute("b", key, lambda key=key: key, deps=(("a", 0),))
        stats = graph.stats()["b"]
        assert stats.size == 2
        assert not graph.contains("b", 1)  # oldest evicted
        assert graph.contains("b", 3)
        assert graph.dependencies("b", 1) == ()  # edges died with the node

    def test_lru_hit_refreshes_recency(self):
        graph = AnalysisGraph(("s",), max_entries=2, lru=True)
        graph.compute("s", 1, lambda: 1)
        graph.compute("s", 2, lambda: 2)
        graph.compute("s", 1, lambda: 1)  # refresh 1
        graph.compute("s", 3, lambda: 3)  # evicts 2, not 1
        assert graph.contains("s", 1) and not graph.contains("s", 2)

    def test_retain_prunes_only_over_bound_stages(self):
        graph = AnalysisGraph(("s",), max_entries=3)
        for key in range(3):
            graph.compute("s", key, lambda key=key: key)
        graph.retain({"s": {0}})  # under bound: untouched
        assert graph.stats()["s"].size == 3
        graph.compute("s", 3, lambda: 3)
        graph.retain({"s": {2, 3}})  # over bound: pruned to the hot set
        assert sorted(graph.sizes().items()) == [("s", 2)]
        assert graph.contains("s", 2) and graph.contains("s", 3)

    def test_clear_resets_nodes_edges_and_counters(self):
        graph = AnalysisGraph(("a", "b"))
        graph.compute("a", 1, lambda: 1)
        graph.compute("b", 1, lambda: 1, deps=(("a", 1),))
        graph.clear()
        assert graph.sizes() == {"a": 0, "b": 0}
        assert graph.stats()["a"] == (0, 2048, 0, 0)
        assert graph.dependencies("b", 1) == ()

    def test_snapshot_is_plain_data(self):
        import pickle

        graph = AnalysisGraph(("s",))
        graph.compute("s", 1, lambda: object())  # value itself not shipped
        snapshot = pickle.loads(pickle.dumps(graph.snapshot()))
        assert snapshot == {
            "s": {"size": 1, "capacity": 2048, "hits": 0, "misses": 1}
        }

    def test_concurrent_compute_is_consistent(self):
        graph = AnalysisGraph(("s",), lru=True)
        results = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(200):
                key = rng.randrange(8)
                results.append((key, graph.compute("s", key, lambda key=key: key * 7)))

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(value == key * 7 for key, value in results)
        stats = graph.stats()["s"]
        assert stats.hits + stats.misses == 8 * 200
        assert stats.size == 8

    def test_shared_graph_hosts_the_pipeline_stages(self):
        stats = shared_graph().stats()
        assert set(stats) == {"semantics", "components"}
        assert stats["components"].capacity == 2048
        assert stats["semantics"].capacity == 4096


def random_table(rng: random.Random) -> dict:
    """A random subject table over the curated antonym vocabulary."""
    words = [
        "available", "unavailable", "lost", "valid", "invalid", "enabled",
        "disabled", "on", "off", "high", "low", "ok", "open", "closed",
        "busy", "idle", "full", "empty", "normal", "abnormal", "stable",
    ]
    table = {}
    for index in range(rng.randrange(1, 7)):
        table[f"s{index}"] = set(rng.sample(words, rng.randrange(1, 5)))
    return table


class TestComponentDecomposition:
    """The component replay must equal the monolithic Algorithm 1."""

    dictionary = AntonymDictionary.default()

    def assert_equal(self, table):
        mono = _analyse_table_monolithic(table, self.dictionary)
        split = _analyse_table(table, self.dictionary)
        assert split.pairs_by_subject == mono.pairs_by_subject, table
        assert split.wordset == mono.wordset, table

    def test_masked_lookup_coupling(self):
        """The adversarial case: pairing 'lost' under s1 pre-populates its
        antonym memo with {'available'} only, so under s2 the dictionary
        lookup of 'lost' never runs — the pair with 'unavailable' is only
        found through the partner's own lookup.  Both subjects share a
        word, hence one component: the replay must preserve the masking."""
        self.assert_equal(
            {"s1": {"available", "lost"}, "s2": {"lost", "unavailable"}}
        )

    def test_chained_coupling_across_three_subjects(self):
        self.assert_equal(
            {
                "s1": {"on", "off"},
                "s2": {"off", "high"},
                "s3": {"high", "low"},
            }
        )

    def test_disjoint_subjects_are_independent_units(self):
        table = {"a": {"open", "closed"}, "b": {"busy", "idle"}, "c": {"full"}}
        units = []
        _analyse_table(table, self.dictionary, units=units)
        assert [subject for subject, _, _ in units] == ["a", "b"]  # c skipped
        self.assert_equal(table)

    def test_identical_subjects_share_one_memo_node(self):
        """Twenty sensors with the same adjective pair cost two analysis
        nodes: one with fresh pre-states, one with the threaded states
        every later subject observes."""
        table = {f"s{index:02d}": {"on", "off"} for index in range(20)}
        units = []
        _analyse_table(table, self.dictionary, units=units)
        assert len(units) == 20
        assert len({key for _, key, _ in units}) == 2
        self.assert_equal(table)

    def test_pre_states_thread_through_shared_words(self):
        """s2's unit key differs from s1's because s1's pairing populated
        the shared words' antonym memos — the edge the fold must track."""
        table = {"s1": {"on", "off"}, "s2": {"on", "off"}}
        units = []
        _analyse_table(table, self.dictionary, units=units)
        (_, key1, _), (_, key2, _) = units
        assert key1 != key2
        assert key1[1] == key2[1] == ("off", "on")  # same dependents
        assert key1[2] == (None, None)  # fresh states
        assert all(state is not None for state in key2[2])  # threaded states

    def test_replay_subject_is_state_sensitive(self):
        """The same dependents pair under fresh memos but not under masked
        ones — why pre-states belong in the unit key.  A word paired into
        while fresh carries only its partner in its memo, and the
        non-empty memo suppresses the dictionary lookup forever."""
        fresh = _replay_subject(("high", "low"), (None, None), self.dictionary)
        assert fresh.pairs == (("high", "low"),)
        assert fresh.blue == ("high", "low")
        assert dict(fresh.looked_up)["high"]  # online(high) ran
        # Primed-elsewhere memos (observable projection empty): the
        # suppressed lookups mean the pair is never found.
        masked = _replay_subject(("high", "low"), ((), ()), self.dictionary)
        assert masked.pairs == ()
        assert masked.blue == ()
        assert masked.looked_up == ()

    def test_randomised_tables(self):
        rng = random.Random(20260729)
        for _ in range(150):
            self.assert_equal(random_table(rng))

    def test_component_memo_serves_repeats(self):
        table = {"p": {"valid", "invalid"}}
        _analyse_table(table, self.dictionary)
        before = semantics_cache_info()
        _analyse_table(table, self.dictionary)
        after = semantics_cache_info()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_distinct_dictionaries_do_not_share_nodes(self):
        custom = AntonymDictionary.default()
        custom.add_pair("stable", "wobbly")
        table = {"p": {"stable", "wobbly"}}
        assert _analyse_table(table, self.dictionary).pairs_by_subject == {}
        assert _analyse_table(table, custom).pairs_by_subject == {
            "p": [("stable", "wobbly")]
        }


class TestSentenceVocabulary:
    def test_contributions_and_candidates(self):
        sentence = parse_sentence("The pulse wave is available.")
        assert sentence_vocabulary(sentence) == (("pulse_wave", ("available",)),)
        assert candidate_subjects(sentence) == frozenset({"pulse_wave"})

    def test_sentence_without_adjectives_contributes_nothing(self):
        sentence = parse_sentence("The valve is opened.")
        assert sentence_vocabulary(sentence) == ()
        assert candidate_subjects(sentence) == frozenset()


class TestAnalyseIncremental:
    dictionary = AntonymDictionary.default()

    def run(self, cache: TranslationCache, texts):
        items = [(text, cache.parse(text)) for text in texts]
        return analyse_incremental(items, self.dictionary, cache.graph)

    def test_first_pass_reanalyses_everything(self):
        cache = TranslationCache()
        texts = [
            "The pulse wave is available.",
            "The pulse wave is unavailable.",
            "The line is busy.",  # single dependent: no analysis unit
        ]
        analysis, delta = self.run(cache, texts)
        assert analysis.antonym_pairs() == [
            ("pulse_wave", "available", "unavailable")
        ]
        assert delta == SemanticsDelta(
            components=1, reanalysed_components=1, reused_components=0,
            reanalysed=(0, 1),
        )

    def test_unrelated_edit_reanalyses_nothing_else(self):
        cache = TranslationCache()
        texts = [
            "The pulse wave is available.",
            "The pulse wave is unavailable.",
            "The line is busy.",
            "The line is idle.",
        ]
        self.run(cache, texts)
        texts[3] = "The line is empty."
        analysis, delta = self.run(cache, texts)
        assert delta.components == 2
        assert delta.reanalysed_components == 1
        assert delta.reanalysed == (2, 3)  # the edited subject's sentences
        assert analysis.antonym_pairs() == [
            ("pulse_wave", "available", "unavailable")
        ]

    def test_new_pair_attributes_affected_sentences(self):
        """An edit whose vocabulary joins another sentence's component must
        re-analyse both — and only those."""
        cache = TranslationCache()
        texts = [
            "The pulse wave is available.",
            "The line is busy.",
            "The display is bright.",
        ]
        self.run(cache, texts)
        texts[2] = "The pulse wave is lost."
        analysis, delta = self.run(cache, texts)
        assert delta.reanalysed == (0, 2)  # sentence 1 untouched
        assert analysis.antonym_pairs() == [("pulse_wave", "available", "lost")]

    def test_incremental_equals_fresh_analyse(self):
        cache = TranslationCache()
        texts = [
            "The pulse wave is available.",
            "The pulse wave is unavailable.",
            "The alarm is disabled.",
            "The alarm is enabled.",
        ]
        incremental, _ = self.run(cache, texts)
        fresh = analyse([parse_sentence(text) for text in texts], self.dictionary)
        assert incremental.wordset == fresh.wordset
        assert incremental.pairs_by_subject == fresh.pairs_by_subject

    def test_seen_nodes_are_edged_to_their_vocabulary(self):
        """The graph records which sentences an analysis unit was derived
        from — the fine-grained edges behind the delta attribution."""
        cache = TranslationCache()
        texts = ["The pulse wave is available.", "The pulse wave is lost."]
        self.run(cache, texts)
        edges = [
            cache.graph.dependencies("semantics_seen", key)
            for key in list(
                cache.graph._stages["semantics_seen"].entries  # noqa: SLF001
            )
        ]
        assert edges == [(("vocab", texts[0]), ("vocab", texts[1]))]
        # ... and each vocabulary node hangs off its sentence's parse node.
        assert cache.graph.dependencies("vocab", texts[0]) == (
            ("parses", texts[0]),
        )
