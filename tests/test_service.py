"""Tests of the service subsystem: incremental sessions, parallel batch
checking with sequential-identical verdicts, the JSON-lines serve loop and
the machine-readable CLI output."""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro import (
    BatchChecker,
    SpecCC,
    SpecCCConfig,
    SpecSession,
    Verdict,
)
from repro.__main__ import main as cli_main
from repro.service.reportjson import report_to_dict
from repro.service.server import AsyncSpecServer, serve, serve_async


TWO_COMPONENTS = [
    ("R1", "If the sensor is active, the valve is opened."),
    ("R2", "If the button is pressed, the lamp is activated."),
]


def make_session(**config) -> SpecSession:
    return SpecSession(SpecCC(SpecCCConfig(**config)))


class TestSpecSession:
    def test_first_check_analyzes_every_component(self):
        session = SpecSession()
        for identifier, sentence in TWO_COMPONENTS:
            session.add(identifier, sentence)
        report = session.check()
        assert report.consistent
        assert report.revision == 1
        assert len(report.delta.components) == 2
        assert len(report.delta.reanalyzed) == 2
        assert report.delta.reused == ()

    def test_single_edit_reanalyzes_only_touched_component(self):
        """The acceptance criterion: an edit re-analyzes only the components
        containing the edited requirement's variables, asserted through the
        component-cache hit/miss counters of ``cache_stats()``."""
        SpecCC.clear_caches()  # exact miss counts need a cold outcome cache
        session = SpecSession()
        for identifier, sentence in TWO_COMPONENTS:
            session.add(identifier, sentence)
        session.check()

        session.update("R2", "If the button is pressed, the lamp is not activated.")
        report = session.check()

        assert report.delta.edited == ("R2",)
        assert [c.identifiers for c in report.delta.reanalyzed] == [("R2",)]
        assert [c.identifiers for c in report.delta.reused] == [("R1",)]
        # The hard evidence: exactly one component analysis ran; the
        # untouched component came straight from the outcome cache.
        assert report.delta.cache_misses == 1
        assert report.delta.cache_hits >= 1

    def test_unedited_recheck_hits_cache_everywhere(self):
        session = SpecSession()
        for identifier, sentence in TWO_COMPONENTS:
            session.add(identifier, sentence)
        session.check()
        session.update("R1", TWO_COMPONENTS[0][1])  # same text: a no-op
        report = session.check()
        assert report.delta.edited == ()
        assert report.delta.cache_misses == 0
        assert len(report.delta.reused) == 2

    def test_add_and_remove_requirements(self):
        session = SpecSession()
        session.add("R1", "If the sensor is active, the valve is opened.")
        session.check()
        session.add("R2", "If the button is pressed, the lamp is activated.")
        report = session.check()
        assert len(report.delta.components) == 2
        assert [c.identifiers for c in report.delta.reanalyzed] == [("R2",)]

        session.remove("R2")
        report = session.check()
        assert len(report.delta.components) == 1
        assert report.delta.cache_misses == 0  # R1's outcome is still cached

        assert "R2" not in session
        assert session.identifiers() == ("R1",)

    def test_edit_errors(self):
        session = SpecSession()
        session.add("R1", "The valve is opened.")
        with pytest.raises(ValueError):
            session.add("R1", "The valve is opened.")
        with pytest.raises(KeyError):
            session.update("R9", "The valve is opened.")
        with pytest.raises(KeyError):
            session.remove("R9")

    def test_verdict_transition_is_reported(self):
        session = make_session(max_partition_repairs=0, localize_on_failure=False)
        session.add("R1", "If the sensor is active, the valve is opened.")
        # Shares open_valve with R1, so both live in one component.
        session.add("R2", "If the button is pressed, the valve is opened.")
        first = session.check()
        assert first.verdict is Verdict.REALIZABLE

        session.update("R2", "If the sensor is active, the valve is not opened.")
        report = session.check()
        assert report.verdict is Verdict.UNREALIZABLE
        changed = report.delta.changed_verdicts()
        assert len(changed) == 1
        assert changed[0].previous_verdict is Verdict.REALIZABLE
        assert changed[0].verdict is Verdict.UNREALIZABLE

    def test_session_matches_one_shot_pipeline(self):
        session = SpecSession()
        for identifier, sentence in TWO_COMPONENTS:
            session.add(identifier, sentence)
        session.check()
        session.update("R1", "If the sensor is normal, the valve is opened.")
        session.add("R3", "If the alarm is issued, the door is not opened.")
        incremental = session.check()

        fresh = SpecCC().check(session.requirements())
        assert incremental.verdict is fresh.verdict
        assert report_to_dict(incremental.report, timings=False) == report_to_dict(
            fresh, timings=False
        )

    def test_translation_cache_stays_bounded(self):
        """A long edit stream must not accumulate stale memo entries."""
        from repro import Translator

        translator = Translator()
        cache = translator.new_cache()
        cache.max_entries = 8
        requirements = [("R1", "If the sensor is active, the valve is opened.")]
        for index in range(50):
            requirements[0] = (
                "R1",
                f"If the sensor {index} is active, the valve is opened.",
            )
            translator.translate(requirements, cache)
        stats = cache.stats()
        assert stats["parses"] <= cache.max_entries + 1
        assert stats["raw_formulas"] <= cache.max_entries + 1
        assert stats["rewritten"] <= cache.max_entries + 1
        # ... and the surviving entries still serve the current document.
        before = dict(stats)
        translator.translate(requirements, cache)
        assert cache.stats() == before

    def test_load_document(self):
        session = SpecSession()
        added = session.load_document(
            "If the sensor is active, the valve is opened.\n"
            "# a comment\n"
            "If the button is pressed, the lamp is activated.\n"
        )
        assert added == ("R1", "R2")
        assert session.check().consistent


class TestIncrementalSemantics:
    """Session invalidation through the analysis graph: Algorithm 1 runs
    only for sentences whose vocabulary an edit actually intersects,
    asserted via the semantics cache counters — with reports byte-identical
    to a fresh sequential check throughout."""

    #: Two antonym-coupled pairs over disjoint subjects plus one sentence
    #: with no adjective vocabulary at all.
    DOC = [
        ("R1", "If the pulse wave is available, the alarm is sounded."),
        ("R2", "If the pulse wave is unavailable, the alarm is not sounded."),
        ("R3", "If the feed is valid, the lamp is activated."),
        ("R4", "If the feed is invalid, the lamp is not activated."),
        ("R5", "If the button is pressed, the door is opened."),
    ]

    def fresh_bytes(self, session):
        report = SpecCC().check(session.requirements())
        return json.dumps(report_to_dict(report, timings=False), sort_keys=True)

    def session_bytes(self, session_report):
        return json.dumps(
            report_to_dict(session_report.report, timings=False), sort_keys=True
        )

    def make(self):
        session = SpecSession()
        for identifier, sentence in self.DOC:
            session.add(identifier, sentence)
        return session

    def test_first_check_analyses_all_vocabulary_sentences(self):
        session = self.make()
        report = session.check()
        delta = report.delta
        assert delta.semantics_components == 2  # pulse_wave, feed
        assert delta.semantics_reanalysed == ("R1", "R2", "R3", "R4")  # not R5
        assert report.consistent

    def test_edit_reanalyses_only_vocabulary_affected_sentences(self):
        """The acceptance criterion, in miniature: editing one sentence
        re-runs Algorithm 1 only for its own vocabulary component."""
        SpecCC.clear_caches()  # exact counter deltas need a cold memo
        session = self.make()
        session.check()

        session.update("R3", "If the feed is lost, the lamp is activated.")
        report = session.check()
        delta = report.delta
        # Algorithm 1 re-ran for the feed component only: R3 and the
        # untouched-but-coupled R4 — never for the pulse-wave sentences.
        assert delta.semantics_reanalysed == ("R3", "R4")
        assert delta.semantics_misses == 1  # one component replayed
        assert delta.semantics_hits >= 1  # the other came from the memo
        assert self.session_bytes(report) == self.fresh_bytes(session)

    def test_new_antonym_pair_invalidates_previously_unrelated_sentence(self):
        """An edit that *introduces* a pair under another sentence's subject
        must re-analyse that sentence (its propositions are rewritten
        through the new pair) while leaving the rest untouched."""
        session = SpecSession()
        session.add("R1", "If the signal is high, the alarm is sounded.")
        session.add("R2", "If the sensor is active, the lamp is activated.")
        first = session.check()
        # Single-dependent subjects form no analysis unit (Algorithm 1
        # line 3 skips them), so nothing ran yet.
        assert first.delta.semantics_components == 0
        assert first.delta.semantics_reanalysed == ()
        formula_before = str(first.report.translation.requirements[0].formula)

        # R3's vocabulary joins R1's subject and forms the (high, low) pair.
        session.add("R3", "If the signal is low, the door is opened.")
        report = session.check()
        delta = report.delta
        assert delta.semantics_reanalysed == ("R1", "R3")
        assert "R2" not in delta.semantics_reanalysed
        # The pair really changed R1's translation (single-pair
        # abbreviation renames the proposition), so the invalidation was
        # load-bearing, not cosmetic.
        formula_after = str(report.report.translation.requirements[0].formula)
        assert formula_before != formula_after
        assert self.session_bytes(report) == self.fresh_bytes(session)

    def test_remove_then_readd_reuses_everything(self):
        session = self.make()
        session.check()
        session.remove("R2")
        session.check()

        session.add("R2", dict(self.DOC)["R2"])
        report = session.check()
        delta = report.delta
        # The re-added sentence restores a component signature the session
        # graph has already seen: no Algorithm 1 replay, no realizability
        # analysis, and bytes identical to a fresh run.
        assert delta.semantics_reanalysed == ()
        assert delta.semantics_misses == 0
        assert delta.cache_misses == 0
        assert self.session_bytes(report) == self.fresh_bytes(session)

    def test_whitespace_edit_reanalyses_zero_components(self):
        session = self.make()
        before = session.check()
        spaced = dict(self.DOC)["R1"].replace(" is ", "  is ", 1)
        session.update("R1", spaced)
        report = session.check()
        delta = report.delta
        assert delta.edited == ("R1",)
        assert delta.semantics_reanalysed == ()
        assert delta.semantics_misses == 0
        assert delta.cache_misses == 0  # realizability untouched too
        assert all(not c.reanalyzed for c in delta.components)
        # Identical formulas and verdicts (only the echoed text differs).
        assert report.report.translation.formulas == (
            before.report.translation.formulas
        )
        assert self.session_bytes(report) == self.fresh_bytes(session)

    def test_forty_sentence_session_edit_is_vocabulary_local(self):
        """The acceptance criterion at full size: one edit in a
        40-sentence session replays Algorithm 1 for exactly one of the 20
        vocabulary components (2 of 40 sentences), with the report
        byte-identical to a fresh sequential check."""
        SpecCC.clear_caches()
        session = SpecSession()
        for group in range(1, 21):
            session.add(
                f"A{group}",
                f"If the sensor {group} is active, the device {group} is started.",
            )
            session.add(
                f"B{group}",
                f"If the sensor {group} is inactive, the device {group} is stopped.",
            )
        first = session.check()
        assert first.delta.semantics_components == 20
        assert len(first.delta.semantics_reanalysed) == 40
        # Twenty identical units deduplicate onto two memo nodes: one with
        # fresh antonym-memo pre-states, one with the threaded states
        # every subject after the first observes.
        assert first.delta.semantics_misses == 2

        session.update(
            "A7", "If the sensor 7 is normal, the device 7 is started."
        )
        report = session.check()
        delta = report.delta
        assert delta.semantics_reanalysed == ("A7", "B7")
        assert delta.semantics_misses == 1  # one component of twenty
        assert delta.semantics_hits >= 19  # the rest came from the memo
        assert self.session_bytes(report) == self.fresh_bytes(session)

    def test_batch_and_pool_reports_match_session_after_semantic_edit(self):
        """One document through session, one-shot, and batch (thread and
        persistent-pool backends): identical canonical bytes."""
        from repro.service.pool import WorkerPool

        session = self.make()
        session.check()
        session.update("R1", "If the pulse wave is lost, the alarm is sounded.")
        expected = self.session_bytes(session.check())

        document = [(i, t) for i, t in session.requirements()]
        batch = BatchChecker(workers=2).check_documents([("d", document)])
        assert json.dumps(batch[0].data, sort_keys=True) == expected
        with WorkerPool(shards=2) as pool:
            task = pool.check_documents([("d", document)])[0]
        assert json.dumps(task.data, sort_keys=True) == expected


BATCH_DOCS = [
    ("consistent", "If the sensor is active, the valve is opened.\n"),
    (
        "repairable",
        "If the session is active, the page is displayed.\n"
        "If the notice is posted, the page is not displayed.\n",
    ),
    ("unsat", "The valve is opened.\nThe valve is not opened.\n"),
    (
        "two-components",
        "If the button is pressed, the lamp is activated.\n"
        "If the alarm is issued, the door is not opened.\n",
    ),
]


class TestBatchChecker:
    def _canonical(self, results):
        return [json.dumps(result.data, sort_keys=True) for result in results]

    def test_parallel_is_byte_identical_to_sequential(self):
        sequential = BatchChecker(workers=1).check_documents(BATCH_DOCS)
        parallel = BatchChecker(workers=4).check_documents(BATCH_DOCS)
        assert self._canonical(sequential) == self._canonical(parallel)
        assert [r.name for r in parallel] == [name for name, _ in BATCH_DOCS]
        assert [r.verdict for r in parallel] == [
            "realizable",
            "realizable",
            "unrealizable",
            "realizable",
        ]

    def test_component_warming_does_not_change_results(self):
        warmed = BatchChecker(workers=4, warm_components=True).check_documents(
            BATCH_DOCS
        )
        unwarmed = BatchChecker(workers=4, warm_components=False).check_documents(
            BATCH_DOCS
        )
        assert self._canonical(warmed) == self._canonical(unwarmed)

    def test_requirement_pair_documents(self):
        docs = [("pairs", [("A1", "If the sensor is active, the valve is opened.")])]
        results = BatchChecker(workers=2).check_documents(docs)
        assert results[0].consistent
        assert results[0].data["requirements"][0]["identifier"] == "A1"

    def test_empty_batch(self):
        assert BatchChecker().check_documents([]) == []

    def test_bad_document_becomes_error_record_in_every_backend(self):
        """One unparsable document must not poison its batch: it yields an
        error record, siblings are judged normally, and the records are
        byte-identical across the sequential and thread backends."""
        docs = BATCH_DOCS[:2] + [("broken", [("R1", "")])] + BATCH_DOCS[2:]
        sequential = BatchChecker(workers=1).check_documents(docs)
        threaded = BatchChecker(workers=4).check_documents(docs)
        assert self._canonical(sequential) == self._canonical(threaded)
        broken = {r.name: r for r in threaded}["broken"]
        assert broken.verdict == "error"
        assert not broken.consistent
        assert broken.error["type"] == "StructuredEnglishError"
        good = [r for r in threaded if r.name != "broken"]
        assert [r.verdict for r in good] == [
            "realizable",
            "realizable",
            "unrealizable",
            "realizable",
        ]

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BatchChecker(backend="fiber")
        with pytest.raises(ValueError):
            BatchChecker(workers=0)

    def test_custom_dictionary_reaches_every_backend(self):
        """A supplied tool's antonym dictionary must shape batch verdicts
        exactly like session checks — in-process and across processes."""
        from repro.nlp.antonyms import AntonymDictionary

        doc = (
            "If the sensor is active, the valve is opened.\n"
            "If the sensor is normal, the valve is not opened.\n"
        )
        dictionary = AntonymDictionary.default()
        dictionary.add_pair("active", "normal")
        tool = SpecCC(dictionary=dictionary)

        def formulas(checker):
            result = checker.check_documents([("d", doc)])[0]
            return [entry["formula"] for entry in result.data["requirements"]]

        paired = ["G (sensor -> open_valve)", "G (!sensor -> !open_valve)"]
        assert formulas(BatchChecker(tool=tool, workers=1)) == paired
        assert formulas(BatchChecker(tool=tool, workers=2)) == paired
        assert (
            formulas(BatchChecker(tool=tool, workers=2, backend="process"))
            == paired
        )
        # ... while the default dictionary keeps the adjectives apart.
        assert formulas(BatchChecker(workers=1)) != paired

    def test_process_backend_matches_thread_backend(self):
        docs = BATCH_DOCS[:2]
        thread = BatchChecker(workers=1).check_documents(docs)
        process = BatchChecker(workers=2, backend="process").check_documents(docs)
        assert self._canonical(thread) == self._canonical(process)


def run_serve(requests):
    out = io.StringIO()
    serve(
        io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n"),
        out,
    )
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestServe:
    def test_session_lifecycle_over_the_wire(self):
        SpecCC.clear_caches()  # the test asserts an exact miss count
        responses = run_serve(
            [
                {"op": "add", "id": "R1", "text": TWO_COMPONENTS[0][1]},
                {"op": "add", "id": "R2", "text": TWO_COMPONENTS[1][1]},
                {"op": "check", "timings": False},
                {"op": "update", "id": "R2", "text": "If the button is pressed, the lamp is not activated."},
                {"op": "check", "timings": False},
                {"op": "stats"},
                {"op": "shutdown"},
            ]
        )
        assert all(response["ok"] for response in responses)
        first, second = responses[2], responses[4]
        assert first["report"]["verdict"] == "realizable"
        assert first["revision"] == 1
        assert second["delta"]["edited"] == ["R2"]
        assert second["delta"]["reanalyzed"] == 1
        assert second["delta"]["reused"] == 1
        assert second["delta"]["cache_misses"] == 1
        stats = responses[5]
        assert stats["cache"]["component_cache"]["hits"] >= 1
        assert stats["size"] == 2

    def test_batch_op(self):
        responses = run_serve(
            [
                {
                    "op": "batch",
                    "workers": 2,
                    "documents": [
                        {"name": "a", "text": BATCH_DOCS[0][1]},
                        {"name": "b", "text": BATCH_DOCS[2][1]},
                    ],
                },
            ]
        )
        results = responses[0]["results"]
        assert [entry["name"] for entry in results] == ["a", "b"]
        assert results[0]["report"]["consistent"] is True
        assert results[1]["report"]["consistent"] is False

    def test_errors_do_not_kill_the_loop(self):
        responses = run_serve(
            [
                {"op": "remove", "id": "R9"},
                {"op": "frobnicate"},
                {"op": "add", "id": "R1"},  # missing text
                {"op": "add", "id": "R1", "text": "The valve is opened."},
            ]
        )
        assert [response["ok"] for response in responses] == [
            False,
            False,
            False,
            True,
        ]

    def test_malformed_json_line(self):
        out = io.StringIO()
        serve(io.StringIO("this is not json\n[1,2]\n"), out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [response["ok"] for response in responses] == [False, False]

    def test_reset(self):
        responses = run_serve(
            [
                {"op": "add", "id": "R1", "text": "The valve is opened."},
                {"op": "reset"},
                {"op": "stats"},
            ]
        )
        assert responses[1]["size"] == 0
        assert responses[2]["size"] == 0

    def test_stats_surface_pool_counters(self):
        responses = run_serve([{"op": "stats"}])
        assert "pools" in responses[0]  # pool.stats() rows, [] before use
        # The op speaks the shared stats format: cache layers + engine work.
        assert "semantics" in responses[0]["cache"]
        assert "synthesis" in responses[0]

    def test_check_reports_semantics_delta(self):
        responses = run_serve(
            [
                {"op": "add", "id": "R1", "text": "If the feed is valid, the lamp is activated."},
                {"op": "add", "id": "R2", "text": "If the feed is invalid, the lamp is not activated."},
                {"op": "check", "timings": False},
                {"op": "update", "id": "R1", "text": "If the feed is valid, the lamp is  activated."},
                {"op": "check", "timings": False},
                {"op": "shutdown"},
            ]
        )
        first, second = responses[2], responses[4]
        assert first["delta"]["semantics_reanalysed"] == ["R1", "R2"]
        assert first["delta"]["semantics_components"] == 1
        # Whitespace-only edit: Algorithm 1 re-ran for nothing.
        assert second["delta"]["semantics_reanalysed"] == []


def run_serve_async(lines):
    """Drive the asyncio front end over string streams; parsed responses."""
    out = io.StringIO()
    payload = "\n".join(
        json.dumps(line) if isinstance(line, dict) else line for line in lines
    )
    serve_async(io.StringIO(payload + "\n"), out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


def normalize(response: dict) -> str:
    """Canonical response bytes minus the protocol's volatile fields
    (one shared normalize_response in server.py, so this cannot drift
    from the benchmark's identical comparison)."""
    from repro.service.server import normalize_response

    return json.dumps(normalize_response(response), sort_keys=True)


def client_script(client: int):
    """A small edit/check session over a client-private variable pool."""
    return [
        {
            "op": "add",
            "id": "R1",
            "text": f"If the sensor {client} is active, the device {client} is started.",
        },
        {"op": "check", "timings": False},
        {
            "op": "update",
            "id": "R1",
            "text": f"If the sensor {client} is normal, the device {client} is started.",
        },
        {"op": "check", "timings": False},
    ]


class TestServeAsync:
    def test_session_lifecycle_single_client(self):
        responses = run_serve_async(
            [
                {"op": "add", "id": "R1", "text": TWO_COMPONENTS[0][1]},
                {"op": "check", "timings": False},
                {"op": "shutdown"},
            ]
        )
        assert all(response["ok"] for response in responses)
        assert all(response["session"] == "default" for response in responses)
        assert responses[1]["report"]["verdict"] == "realizable"
        assert responses[2]["op"] == "shutdown"

    def test_rid_echoed_for_correlation(self):
        responses = run_serve_async(
            [{"op": "add", "id": "R1", "text": "The valve is opened.", "rid": 42}]
        )
        assert responses[0]["rid"] == 42

    def test_malformed_input_does_not_kill_the_async_daemon(self):
        """The hardening satellite, async half: bad JSON, a non-object
        line, a missing op and a missing field each produce an error
        response and the loop keeps serving."""
        responses = run_serve_async(
            [
                "this is not json",
                "[1, 2]",
                {"id": "R1", "text": "The valve is opened."},  # no op
                {"op": "frobnicate"},
                {"op": "add", "id": "R1"},  # missing text
                {"op": "add", "id": "R1", "text": "The valve is opened."},
            ]
        )
        assert [response["ok"] for response in responses] == [
            False,
            False,
            False,
            False,
            False,
            True,
        ]
        assert "malformed JSON" in responses[0]["error"]

    def test_sessions_are_isolated(self):
        responses = run_serve_async(
            [
                {"op": "add", "id": "R1", "text": "The valve is opened.", "session": "a"},
                {"op": "add", "id": "R1", "text": "The door is opened.", "session": "b"},
                {"op": "stats", "session": "a"},
            ]
        )
        assert all(response["ok"] for response in responses)
        stats = responses[-1]
        assert stats["size"] == 1  # session a sees only its own requirement
        assert stats["sessions"] == 2

    def test_eight_concurrent_clients_match_sequential_serve(self):
        """The acceptance criterion: >= 8 concurrent clients multiplexed
        over one async loop, per-session responses identical to each
        session running alone through the sequential serve loop."""
        clients = 8
        scripts = {f"c{index}": client_script(index) for index in range(clients)}
        interleaved = []
        for step in range(max(len(s) for s in scripts.values())):
            for name, script in scripts.items():
                if step < len(script):
                    interleaved.append(
                        {**script[step], "session": name, "rid": step}
                    )
        interleaved.append({"op": "shutdown"})

        responses = run_serve_async(interleaved)
        by_session = {name: [] for name in scripts}
        for response in responses:
            if response.get("session") in by_session:
                by_session[response["session"]].append(response)
        for name, script in scripts.items():
            got = sorted(by_session[name], key=lambda r: r["rid"])
            assert len(got) == len(script), name
            reference = run_serve(script)
            assert [normalize(r) for r in got] == [
                normalize(r) for r in reference
            ], name

    def test_concurrent_handle_requests_keep_per_session_order(self):
        """Direct API: fire all clients' requests through asyncio.gather;
        per-session revisions must still be strictly sequential."""

        async def drive():
            server = AsyncSpecServer()
            tasks = []
            for client in range(8):
                for request in client_script(client):
                    tasks.append(
                        server.handle_request({**request, "session": f"c{client}"})
                    )
            return await asyncio.gather(*tasks)

        responses = asyncio.run(drive())
        assert all(response["ok"] for response in responses)
        for client in range(8):
            revisions = [
                response["revision"]
                for response in responses
                if response["session"] == f"c{client}" and "revision" in response
            ]
            assert revisions == [1, 2]

    def test_batch_op_defaults_to_worker_pool(self):
        from repro.service.pool import shared_pool, shutdown_shared_pools

        try:
            responses = run_serve_async(
                [
                    {
                        "op": "batch",
                        "workers": 2,
                        "documents": [
                            {"name": "a", "text": BATCH_DOCS[0][1]},
                            {"name": "b", "text": BATCH_DOCS[2][1]},
                        ],
                    },
                ]
            )
            results = responses[0]["results"]
            assert [entry["name"] for entry in results] == ["a", "b"]
            assert results[0]["report"]["consistent"] is True
            assert results[1]["report"]["consistent"] is False
            # The async front end routed the batch through the shared pool.
            assert shared_pool(shards=2).stats()["tasks"] >= 2
        finally:
            shutdown_shared_pools()

    def test_invalid_op_does_not_allocate_a_session(self):
        """Invalid traffic must not grow daemon state: the op is validated
        before any per-session allocation happens."""

        async def drive():
            server = AsyncSpecServer()
            bad = await server.handle_request(
                {"op": "frobnicate", "session": "ghost"}
            )
            missing = await server.handle_request({"session": "ghost2"})
            good = await server.handle_request({"op": "stats", "session": "real"})
            return server.session_names, bad, missing, good

        names, bad, missing, good = asyncio.run(drive())
        assert not bad["ok"] and not missing["ok"]
        assert good["ok"]
        assert names == ("real",)

    def test_session_count_is_bounded(self):
        async def drive():
            server = AsyncSpecServer(max_sessions=2)
            return [
                await server.handle_request({"op": "stats", "session": name})
                for name in ("a", "b", "c")
            ]

        responses = asyncio.run(drive())
        assert [response["ok"] for response in responses] == [True, True, False]
        assert "too many sessions" in responses[2]["error"]

    def test_batch_workers_clamped(self, monkeypatch):
        """A client-chosen worker count must not be able to spawn pools
        (and their persistent processes) without bound."""
        import repro.service.server as server_module

        captured = {}
        real = server_module.BatchChecker

        def spy(*args, **kwargs):
            captured.update(kwargs)
            return real(*args, **kwargs)

        monkeypatch.setattr(server_module, "BatchChecker", spy)
        responses = run_serve(
            [
                {
                    "op": "batch",
                    "workers": 999,
                    "documents": [{"name": "a", "text": "The valve is opened."}],
                }
            ]
        )
        assert responses[0]["ok"]
        assert captured["workers"] == server_module._Server.MAX_BATCH_WORKERS

    def test_shutdown_drains_pending_requests(self):
        script = [
            {"op": "add", "id": "R1", "text": TWO_COMPONENTS[0][1], "session": "a"},
            {"op": "check", "timings": False, "session": "a"},
            {"op": "shutdown"},
            {"op": "add", "id": "R2", "text": "ignored", "session": "a"},
        ]
        responses = run_serve_async(script)
        # Everything before the shutdown is answered; nothing after is read.
        assert len(responses) == 3
        assert [response["op"] for response in responses[:3]] == [
            "add",
            "check",
            "shutdown",
        ]


class TestServeHardening:
    """The fault-tolerant serving tier at the protocol surface: health
    ops, structured error codes, timeouts, oversized guards and
    backpressure — never a dropped connection."""

    def test_ping_sync(self):
        responses = run_serve([{"op": "ping"}, {"op": "health"}])
        for response in responses:
            assert response["ok"] is True
            assert response["status"] == "ok"
            assert response["uptime_seconds"] >= 0
            assert response["sessions"] == 1
            assert response["session_stats"]["size"] == 0
            supervision = response["supervision"]
            assert supervision["degraded"] is False
            for key in ("restarts", "retries", "timeouts", "degraded_tasks"):
                assert supervision[key] == 0

    def test_ping_async(self):
        responses = run_serve_async(
            [
                {"op": "add", "id": "R1", "text": "The valve is opened.", "session": "a"},
                {"op": "ping", "session": "a"},
            ]
        )
        ping = responses[-1]
        assert ping["ok"] is True
        assert ping["status"] == "ok"
        assert ping["sessions"] == 1
        assert ping["session_stats"]["size"] == 1
        assert ping["session_stats"]["pending_edits"] == 1
        assert "supervision" in ping

    def test_error_codes_sync(self):
        out = io.StringIO()
        payload = (
            "this is not json\n"
            + json.dumps({"op": "frobnicate"})
            + "\n"
            + json.dumps({"op": "add", "id": "R1"})
            + "\n"
        )
        serve(io.StringIO(payload), out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [r["ok"] for r in responses] == [False, False, False]
        assert [r["code"] for r in responses] == [
            "bad_json",
            "bad_request",
            "bad_request",
        ]
        assert "malformed JSON" in responses[0]["error"]

    def test_error_codes_async(self):
        responses = run_serve_async(
            [
                "this is not json",
                {"op": "frobnicate"},
                {"op": "add", "id": "R1"},
            ]
        )
        assert [r["ok"] for r in responses] == [False, False, False]
        assert [r["code"] for r in responses] == [
            "bad_json",
            "bad_request",
            "bad_request",
        ]

    def test_oversized_request_sync(self):
        out = io.StringIO()
        big = json.dumps({"op": "add", "id": "R1", "text": "x" * 4096})
        payload = big + "\n" + json.dumps({"op": "ping"}) + "\n"
        serve(io.StringIO(payload), out, max_request_bytes=1024)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        # The oversized line gets a structured error; the loop lives on.
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "oversized"
        assert responses[1]["ok"] is True

    def test_oversized_request_async(self):
        from repro.service.server import serve_async_loop

        async def drive():
            out = io.StringIO()
            server = AsyncSpecServer(max_request_bytes=1024)
            big = json.dumps({"op": "add", "id": "R1", "text": "x" * 4096})
            stdin = io.StringIO(big + "\n" + json.dumps({"op": "ping"}) + "\n")
            await serve_async_loop(stdin, out, server=server)
            return [json.loads(line) for line in out.getvalue().splitlines()]

        responses = asyncio.run(drive())
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "oversized"
        assert any(r["ok"] and r.get("op") == "ping" for r in responses[1:])

    def test_request_timeout_sync(self):
        import time as time_module

        from repro.service.server import _Server

        class SlowServer(_Server):
            def _op_stall(self, request):
                time_module.sleep(0.8)
                return {}

        out = io.StringIO()
        payload = (
            json.dumps({"op": "stall"}) + "\n" + json.dumps({"op": "ping"}) + "\n"
        )
        # The ping queues behind the stalled handler thread (strictly
        # sequential semantics), so the stall must end inside the ping's
        # own deadline window for it to succeed.
        serve(
            io.StringIO(payload),
            out,
            server=SlowServer(),
            request_timeout=0.6,
        )
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "timeout"
        # The loop answered the next request instead of dropping it.
        assert responses[1]["ok"] is True

    def test_request_timeout_async(self):
        import time as time_module

        from repro.service.server import _Server

        class SlowServer(_Server):
            def _op_check(self, request):
                time_module.sleep(0.8)
                return {}

        async def drive():
            server = AsyncSpecServer(request_timeout=0.2)
            slow = SlowServer(server.tool)
            server._sessions["default"] = slow
            server._locks["default"] = asyncio.Lock()
            first = await server.handle_request({"op": "check"})
            second = await server.handle_request({"op": "add", "id": "R1", "text": "The valve is opened."})
            return first, second

        first, second = asyncio.run(drive())
        assert first["ok"] is False
        assert first["code"] == "timeout"
        assert second["ok"] is True  # session still serves after a timeout

    def test_backpressure_overloaded_async(self):
        import time as time_module

        from repro.service.server import _Server

        class SlowServer(_Server):
            def _op_check(self, request):
                time_module.sleep(0.3)
                return {}

        async def drive():
            server = AsyncSpecServer(max_queue=1)
            slow = SlowServer(server.tool)
            server._sessions["default"] = slow
            server._locks["default"] = asyncio.Lock()
            return await asyncio.gather(
                *(server.handle_request({"op": "check", "rid": i}) for i in range(3))
            )

        responses = asyncio.run(drive())
        by_rid = sorted(responses, key=lambda r: r["rid"])
        assert by_rid[0]["ok"] is True  # the in-flight request completes
        rejected = [r for r in by_rid[1:] if not r["ok"]]
        assert rejected, "queue bound must reject excess requests"
        assert all(r["code"] == "overloaded" for r in rejected)
        # Rejection is backpressure, not a broken session: once drained,
        # the same session serves again.
        followup = asyncio.run(
            AsyncSpecServer().handle_request(
                {"op": "add", "id": "R1", "text": "The valve is opened."}
            )
        )
        assert followup["ok"] is True

    def test_batch_op_isolates_document_errors(self):
        responses = run_serve(
            [
                {
                    "op": "batch",
                    "documents": [
                        {"name": "good", "text": BATCH_DOCS[0][1]},
                        {"name": "bad", "requirements": [["R1", ""]]},
                        {"name": "also-good", "text": BATCH_DOCS[2][1]},
                    ],
                }
            ]
        )
        assert responses[0]["ok"] is True
        results = responses[0]["results"]
        assert [entry["name"] for entry in results] == [
            "good",
            "bad",
            "also-good",
        ]
        assert results[0]["report"]["consistent"] is True
        assert results[1]["report"]["verdict"] == "error"
        assert results[1]["report"]["error"]["type"] == "StructuredEnglishError"
        assert results[2]["report"]["verdict"] == "unrealizable"

    def test_session_stats_shape(self):
        session = SpecSession()
        session.add("R1", "The valve is opened.")
        stats = session.stats()
        assert stats["size"] == 1
        assert stats["revision"] == 0
        assert stats["pending_edits"] == 1
        assert stats["age_seconds"] >= 0
        session.check()
        assert session.stats()["pending_edits"] == 0
        assert session.stats()["revision"] == 1

    # ------------------------------------------------- protocol bugfixes
    def test_multibyte_oversized_sync(self):
        """`max_request_bytes` bounds *bytes*, not characters: a line
        whose character count is under the bound but whose UTF-8
        encoding is over it must be rejected as oversized (pre-fix,
        ``len(line)`` counted characters and multi-byte requests up to
        4x the bound slipped past)."""
        out = io.StringIO()
        big = json.dumps(
            {"op": "add", "id": "R1", "text": "é" * 700}, ensure_ascii=False
        )
        assert len(big) <= 1024 < len(big.encode("utf-8"))
        payload = big + "\n" + json.dumps({"op": "ping"}) + "\n"
        serve(io.StringIO(payload), out, max_request_bytes=1024)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "oversized"
        assert responses[1]["ok"] is True

    def test_multibyte_oversized_async(self):
        from repro.service.server import serve_async_loop

        async def drive():
            out = io.StringIO()
            server = AsyncSpecServer(max_request_bytes=1024)
            big = json.dumps(
                {"op": "add", "id": "R1", "text": "é" * 700}, ensure_ascii=False
            )
            assert len(big) <= 1024 < len(big.encode("utf-8"))
            stdin = io.StringIO(big + "\n" + json.dumps({"op": "ping"}) + "\n")
            await serve_async_loop(stdin, out, server=server)
            return [json.loads(line) for line in out.getvalue().splitlines()]

        responses = asyncio.run(drive())
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "oversized"
        assert any(r["ok"] and r.get("op") == "ping" for r in responses[1:])

    def test_ascii_lines_under_bound_still_pass(self):
        """The byte-exact check must not reject what the old check
        accepted: ASCII lines at or under the bound go through."""
        out = io.StringIO()
        request = json.dumps({"op": "add", "id": "R1", "text": "x" * 200})
        serve(
            io.StringIO(request + "\n"),
            out,
            # The raw line includes its newline, and always has.
            max_request_bytes=len(request) + 1,
        )
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert responses[0]["ok"] is True

    def test_timeout_does_not_interleave_session_requests(self):
        """A timed-out request abandons the *response*, not the handler:
        the session's next request must queue until the abandoned
        handler thread actually finishes (pre-fix, the session lock was
        released on timeout and the next request interleaved with the
        still-running handler, violating strictly-sequential-per-session
        semantics)."""
        import threading

        from repro.service.server import _Server

        order = []
        release = threading.Event()

        class SlowServer(_Server):
            def _op_check(self, request):  # offloaded: runs on a thread
                order.append("stall:start")
                release.wait(5.0)
                order.append("stall:end")
                return {}

            def _op_add(self, request):  # inline: the probing request
                order.append("probe")
                return {"size": 0}

        async def drive():
            server = AsyncSpecServer(request_timeout=0.2)
            slow = SlowServer(server.tool)
            server._sessions["default"] = slow
            server._locks["default"] = asyncio.Lock()
            first = await server.handle_request({"op": "check"})
            assert first["code"] == "timeout"
            # The timed-out handler is still blocked on its thread.
            # Issue the session's next request, give it every chance to
            # interleave, and only then let the handler finish.
            probe = asyncio.ensure_future(
                server.handle_request({"op": "add", "id": "R1", "text": "x"})
            )
            await asyncio.sleep(0.3)
            interleaved = "probe" in order
            release.set()
            second = await probe
            return first, second, interleaved

        first, second, interleaved = asyncio.run(drive())
        assert first["ok"] is False
        assert not interleaved, "request ran while the timed-out handler was live"
        assert second["ok"] is True
        assert order == ["stall:start", "stall:end", "probe"]

    def test_batch_malformed_entry_is_bad_request_sync(self):
        """Non-object batch entries are the client's fault: they must be
        classified 'bad_request', not 'internal' (pre-fix, a list/string
        entry raised AttributeError deep in _op_batch)."""
        responses = run_serve(
            [
                {"op": "batch", "documents": "not a list"},
                {"op": "batch", "documents": [["R1", "The valve is opened."]]},
                {
                    "op": "batch",
                    "documents": [
                        {"name": "ok", "text": "The valve is opened."},
                        "nope",
                    ],
                },
            ]
        )
        assert [r["ok"] for r in responses] == [False, False, False]
        assert [r["code"] for r in responses] == ["bad_request"] * 3
        assert "documents[1]" in responses[2]["error"]

    def test_batch_malformed_entry_is_bad_request_async(self):
        responses = run_serve_async([{"op": "batch", "documents": [42]}])
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "bad_request"


class TestCLI:
    def test_check_json(self, tmp_path, capsys):
        document = tmp_path / "spec.txt"
        document.write_text("If the sensor is active, the valve is opened.\n")
        code = cli_main(["check", str(document), "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["verdict"] == "realizable"
        assert data["partition"] == {
            "inputs": ["active_sensor"],
            "outputs": ["open_valve"],
        }
        assert data["cache"]["component_cache"]["misses"] >= 1

    def test_check_json_inconsistent_exit_code(self, tmp_path, capsys):
        document = tmp_path / "spec.txt"
        document.write_text("The valve is opened.\nThe valve is not opened.\n")
        code = cli_main(["check", str(document), "--json"])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["verdict"] == "unrealizable"
        assert data["culprits"] == ["R1", "R2"]

    def test_batch_directory(self, tmp_path, capsys):
        (tmp_path / "a.txt").write_text(BATCH_DOCS[0][1])
        (tmp_path / "b.txt").write_text(BATCH_DOCS[2][1])
        out_file = tmp_path / "results.jsonl"
        code = cli_main(
            ["batch", str(tmp_path), "--workers", "2", "--output", str(out_file)]
        )
        assert code == 1  # one document is inconsistent
        lines = [json.loads(line) for line in out_file.read_text().splitlines()]
        assert [entry["name"] for entry in lines] == ["a.txt", "b.txt"]
        assert lines[0]["report"]["consistent"] is True
        assert lines[1]["report"]["consistent"] is False

    def test_check_json_stats_flag(self, tmp_path, capsys):
        document = tmp_path / "spec.txt"
        document.write_text(
            "If the feed is valid, the lamp is activated.\n"
            "If the feed is invalid, the lamp is not activated.\n"
        )
        code = cli_main(["check", str(document), "--json", "--stats"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        stats = data["stats"]
        assert stats["cache"]["semantics"]["misses"] >= 1
        assert stats["cache"]["component_cache"]["misses"] >= 1
        assert "sat_propagations" in stats["synthesis"]

    def test_check_textual_stats_flag(self, tmp_path, capsys):
        document = tmp_path / "spec.txt"
        document.write_text("The valve is opened.\n")
        assert cli_main(["check", str(document), "--stats"]) == 0
        assert '"semantics"' in capsys.readouterr().out

    def test_batch_empty_directory(self, tmp_path):
        assert cli_main(["batch", str(tmp_path)]) == 2

    def test_serve_accepts_async_flag(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["serve", "--async"])
        assert args.use_async is True
        assert build_parser().parse_args(["serve"]).use_async is False

    def test_batch_accepts_process_fresh_backend(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["batch", ".", "--backend", "process-fresh"]
        )
        assert args.backend == "process-fresh"

    def test_serve_accepts_tcp_flags(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--tcp", "127.0.0.1:0",
                "--rate-limit", "5",
                "--rate-burst", "10",
                "--max-connections", "2",
                "--no-client-shutdown",
                "--workers-bind", "127.0.0.1:0",
                "--min-workers", "2",
            ]
        )
        assert args.tcp == "127.0.0.1:0"
        assert args.rate_limit == 5.0
        assert args.rate_burst == 10.0
        assert args.max_connections == 2
        assert args.no_client_shutdown is True
        assert args.workers_bind == "127.0.0.1:0"
        assert args.min_workers == 2
        assert build_parser().parse_args(["serve"]).tcp is None

    def test_worker_subcommand_parses(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["worker", "--connect", "host:7401", "--name", "w0", "--reconnect"]
        )
        assert args.connect == "host:7401"
        assert args.name == "w0"
        assert args.reconnect is True

    def test_batch_accepts_remote_backend(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            [
                "batch", ".",
                "--backend", "remote",
                "--bind", "127.0.0.1:0",
                "--min-workers", "2",
            ]
        )
        assert args.backend == "remote"
        assert args.bind == "127.0.0.1:0"
        assert args.min_workers == 2

    def test_json_rejects_textual_flags(self, tmp_path, capsys):
        document = tmp_path / "spec.txt"
        document.write_text("The valve is opened.\n")
        with pytest.raises(SystemExit):
            cli_main(["check", str(document), "--json", "--ltl"])
        assert "--json cannot be combined" in capsys.readouterr().err


class TestCacheStats:
    def test_stats_shape_and_movement(self):
        stats = SpecCC.cache_stats()
        for key in ("size", "capacity", "hits", "misses"):
            assert key in stats["component_cache"]
            assert key in stats["semantics"]
        assert "size" in stats["automaton_cache"]
        assert stats["interned_nodes"] >= 0

        before = SpecCC.cache_stats()["component_cache"]
        tool = SpecCC()
        tool.check([("R1", "If the sensor is active, the valve is opened.")])
        tool.check([("R1", "If the sensor is active, the valve is opened.")])
        after = SpecCC.cache_stats()["component_cache"]
        assert after["hits"] > before["hits"]  # second run served from cache

    def test_semantics_memo_moves_and_clears(self):
        SpecCC.clear_caches()  # the memo may be warm from earlier tests
        tool = SpecCC()
        requirements = [
            ("R1", "If the feed is valid, the lamp is activated."),
            ("R2", "If the feed is invalid, the lamp is not activated."),
        ]
        before = SpecCC.cache_stats()["semantics"]
        tool.check(requirements)
        middle = SpecCC.cache_stats()["semantics"]
        assert middle["misses"] > before["misses"]  # Algorithm 1 ran
        tool.check(requirements)
        after = SpecCC.cache_stats()["semantics"]
        assert after["misses"] == middle["misses"]  # ... exactly once
        assert after["hits"] > middle["hits"]

        SpecCC.clear_caches()
        cleared = SpecCC.cache_stats()["semantics"]
        assert (cleared["size"], cleared["hits"], cleared["misses"]) == (0, 0, 0)

    def test_dictionary_mutation_invalidates_raw_formulas(self):
        """The stateless API must pick up dictionary edits even through
        the translator's persistent default graph: raw formulas read the
        dictionary directly (curated-positive fallback), so its content
        signature is part of their node key."""
        from repro.nlp.antonyms import AntonymDictionary

        requirements = [("R1", "If the slot is occupied, the alarm is sounded.")]
        tool = SpecCC()
        before = str(tool.check(requirements).translation.formulas[0])
        tool.translator.dictionary.add_pair("vacant", "occupied")
        after = str(tool.check(requirements).translation.formulas[0])

        fresh_dictionary = AntonymDictionary.default()
        fresh_dictionary.add_pair("vacant", "occupied")
        fresh = SpecCC(dictionary=fresh_dictionary).check(requirements)
        assert after == str(fresh.translation.formulas[0])
        assert after != before  # the pair really rewrote the proposition

    def test_clear_translation_cache_drops_the_tool_graph(self):
        tool = SpecCC()
        tool.check([("R1", "If the sensor is active, the valve is opened.")])
        assert tool.translation_cache_stats()["parses"] == 1
        tool.clear_translation_cache()
        assert all(size == 0 for size in tool.translation_cache_stats().values())

    def test_one_shot_tool_is_incremental_across_checks(self):
        """SpecCC.check rides the translator's own graph: repeating a
        document re-parses nothing."""
        tool = SpecCC()
        requirements = [("R1", "If the sensor is active, the valve is opened.")]
        tool.check(requirements)
        sizes = tool.translation_cache_stats()
        assert sizes["parses"] == 1
        graph = tool.translator.cache().graph
        hits_before = graph.stats()["parses"].hits
        tool.check(requirements)
        assert graph.stats()["parses"].hits > hits_before
        assert tool.translation_cache_stats() == sizes
