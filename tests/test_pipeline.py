"""End-to-end tests of the SpecCC pipeline (Figure 1) and its refinement
loop, plus the case-study integration checks behind Table I."""

from __future__ import annotations

import pytest

from repro import (
    SpecCC,
    SpecCCConfig,
    SynthesisLimits,
    TranslationOptions,
    Verdict,
)
from repro.automata import equivalent
from repro.casestudies import (
    GOLD_FORMULAS,
    INITIALLY_FAILING_ROWS,
    MODE_SWITCHING_REQUIREMENTS,
    application_requirements,
    component_requirements,
    robot_requirements,
)
from repro.logic import parse
from repro.translate import TranslationOptions as TOpts
from repro.translate import Translator


PAPER_CONFIG = SpecCCConfig(translation=TranslationOptions(next_as_x=False))


class TestPipelineBasics:
    def test_consistent_toy_specification(self):
        tool = SpecCC()
        report = tool.check_document(
            "If the button is pressed, the door is opened.\n"
            "If the alarm is issued, the door is not opened.\n"
        )
        # "alarm is issued" is input-like; the pair conflicts, so the
        # repair loop must move a variable before the spec checks out.
        assert report.consistent
        assert "verdict: realizable" in report.summary()

    def test_inconsistent_specification_is_localized(self):
        # Repairs disabled: the heuristic could otherwise "fix" the clash
        # by declaring the sensor an output.
        config = SpecCCConfig(max_partition_repairs=0)
        report = SpecCC(config).check(
            [
                ("R1", "If the sensor is active, the valve is opened."),
                ("R2", "If the sensor is active, the valve is not opened."),
            ]
        )
        assert not report.consistent
        assert set(report.inconsistent_requirements()) == {"R1", "R2"}

    def test_unsatisfiable_pair_detected(self):
        tool = SpecCC()
        report = tool.check(
            [
                ("R1", "The valve is opened."),
                ("R2", "The valve is not opened."),
            ]
        )
        assert not report.consistent

    def test_controllers_for_exact_engine(self):
        config = SpecCCConfig(
            limits=SynthesisLimits(use_obligations=False),
        )
        report = SpecCC(config).check(
            [("R1", "If the button is pressed, the lamp is activated.")]
        )
        assert report.consistent
        assert len(report.controllers) == 1

    def test_repair_is_reported(self):
        tool = SpecCC()
        report = tool.check(
            [
                ("R1", "If the session is active, the page is displayed."),
                ("R2", "If the notice is posted, the page is not displayed."),
            ]
        )
        assert report.consistent
        assert report.repair_attempts >= 1
        assert report.repaired_partition is not None

    def test_repair_can_be_disabled(self):
        config = SpecCCConfig(max_partition_repairs=0, localize_on_failure=False)
        report = SpecCC(config).check(
            [
                ("R1", "If the session is active, the page is displayed."),
                ("R2", "If the notice is posted, the page is not displayed."),
            ]
        )
        assert not report.consistent

    def test_check_translated_stamps_seconds(self):
        translator = Translator()
        translation = translator.translate(
            [("R1", "If the sensor is active, the valve is opened.")]
        )
        report = SpecCC().check_translated(translation)
        assert report.seconds > 0.0

    def test_check_formulas_is_stage_two_only(self):
        # The same clash the repair loop fixes end-to-end: stage 2 alone
        # must report it unrealizable under the unrepaired partition.
        translation = Translator().translate(
            [
                ("R1", "If the session is active, the page is displayed."),
                ("R2", "If the notice is posted, the page is not displayed."),
            ]
        )
        tool = SpecCC()
        result = tool.check_formulas(translation.formulas, translation.partition)
        assert result.verdict is Verdict.UNREALIZABLE
        repaired = tool.check_translated(translation)
        assert repaired.consistent
        assert tool.check_formulas(
            translation.formulas, repaired.partition
        ).verdict is Verdict.REALIZABLE


class TestPartitionRepair:
    """The Section V-B repair heuristic, including the fallback branch."""

    def _failing_result(self, formulas, variables):
        from repro.synthesis.modular import Component
        from repro.synthesis.realizability import (
            ComponentResult,
            RealizabilityResult,
        )

        component = Component(
            tuple(range(len(formulas))), tuple(formulas), frozenset(variables)
        )
        part = ComponentResult(component, Verdict.UNREALIZABLE)
        return RealizabilityResult(Verdict.UNREALIZABLE, [part])

    def test_fallback_moves_an_input_of_the_failing_component(self):
        """No response-side candidate: both formulas put only `b` on the
        response side and `b` is already an output — the fallback must
        reach for *any* input of the failing component instead."""
        from repro.translate.partition import Partition

        formulas = [parse("G (a -> b)"), parse("G (a -> !b)")]
        partition = Partition(frozenset({"a"}), frozenset({"b"}))
        result = self._failing_result(formulas, {"a", "b"})
        repaired = SpecCC()._repair_partition(formulas, partition, result)
        assert repaired is not None
        assert "a" in repaired.outputs
        assert repaired.inputs == frozenset()

    def test_no_candidate_returns_none(self):
        from repro.translate.partition import Partition

        formulas = [parse("G b"), parse("G !b")]
        partition = Partition(frozenset(), frozenset({"b"}))
        result = self._failing_result(formulas, {"b"})
        assert SpecCC()._repair_partition(formulas, partition, result) is None

    def test_response_side_candidate_preferred_over_fallback(self):
        from repro.translate.partition import Partition

        # `b` sits on the response side but is (wrongly) an input: the
        # first loop must pick it, never falling through to `a`.
        formulas = [parse("G (a -> b)")]
        partition = Partition(frozenset({"a", "b"}), frozenset())
        result = self._failing_result(formulas, {"a", "b"})
        repaired = SpecCC()._repair_partition(formulas, partition, result)
        assert repaired is not None
        assert repaired.outputs == frozenset({"b"})
        assert "a" in repaired.inputs

    def test_failed_repairs_keep_bookkeeping_honest(self):
        """Attempts are counted even when no repair succeeds, and
        ``repaired_partition`` stays None unless a repair *fixed* it."""
        report = SpecCC().check(
            [
                ("R1", "The valve is opened."),
                ("R2", "The valve is not opened."),
            ]
        )
        assert not report.consistent
        # The promoted input (open_valve) is moved back to the outputs by
        # the repair loop, which cannot help an unsatisfiable pair.
        assert report.repair_attempts == 1
        assert report.repaired_partition is None

    def test_attempts_never_exceed_the_configured_cap(self):
        config = SpecCCConfig(max_partition_repairs=2, localize_on_failure=False)
        report = SpecCC(config).check(
            [
                ("R1", "The valve is opened."),
                ("R2", "The valve is not opened."),
            ]
        )
        assert report.repair_attempts <= 2
        assert report.repaired_partition is None

    def test_successful_repair_records_the_partition(self):
        report = SpecCC().check(
            [
                ("R1", "If the session is active, the page is displayed."),
                ("R2", "If the notice is posted, the page is not displayed."),
            ]
        )
        assert report.consistent
        assert report.repair_attempts >= 1
        assert report.repaired_partition is not None
        assert report.partition == report.repaired_partition


class TestCaraGold:
    """Translation fidelity against the appendix's hand-listed LTL."""

    @pytest.fixture(scope="class")
    def translated(self):
        translator = Translator(options=TOpts(next_as_x=False))
        return translator.translate(list(MODE_SWITCHING_REQUIREMENTS))

    def test_every_requirement_matches_gold(self, translated):
        for requirement in translated.requirements:
            gold = parse(GOLD_FORMULAS[requirement.identifier])
            assert requirement.formula == gold or equivalent(
                requirement.formula, gold
            ), requirement.identifier

    def test_time_abstraction_matches_paper(self, translated):
        # Section IV-E running example: Theta={3,60,180}, B=5 -> d=60.
        solution = translated.abstraction.solution
        assert solution.divisor == 60
        assert translated.abstraction.mapping == {3: 0, 60: 1, 180: 3}

    def test_antonym_pairs_include_paper_example(self, translated):
        pairs = translated.analysis.antonym_pairs()
        assert ("pulse_wave", "available", "unavailable") in pairs

    def test_specification_is_consistent(self, translated):
        report = SpecCC(PAPER_CONFIG).check_translated(translated)
        assert report.verdict is Verdict.REALIZABLE

    def test_formula_count_matches_table(self, translated):
        assert len(translated.requirements) == 30


class TestTableIScales:
    EXPECTED = {
        "1": (20, 9, 14),
        "2.1.1": (14, 13, 12),
        "2.1.2": (15, 11, 14),
        "2.1.3": (14, 9, 12),
        "2.2.1": (16, 14, 15),
        "2.2.2": (19, 11, 16),
        "2.2.3": (13, 11, 10),
        "2.2.4": (11, 9, 10),
        "2.2.5": (16, 9, 13),
        "2.2.6": (12, 8, 13),
        "2.2.7": (20, 10, 21),
        "3.1": (9, 15, 11),
        "3.2": (56, 12, 20),
    }

    @pytest.fixture(scope="class")
    def translator(self):
        return Translator(options=TOpts(next_as_x=False))

    def test_cara_component_scales(self, translator):
        for row, requirements in component_requirements().items():
            spec = translator.translate(requirements)
            got = (len(spec.requirements), spec.num_inputs, spec.num_outputs)
            assert got == self.EXPECTED[row], row

    def test_telepromise_scales(self, translator):
        expected = {
            "1": (29, 11, 24),
            "2": (17, 3, 13),
            "3": (6, 3, 4),
            "4": (15, 8, 14),
            "5": (17, 7, 16),
        }
        for row, requirements in application_requirements().items():
            spec = translator.translate(requirements)
            got = (len(spec.requirements), spec.num_inputs, spec.num_outputs)
            assert got == expected[row], row

    def test_robot_scales(self, translator):
        expected = {(1, 4): (9, 2, 5), (1, 9): (14, 2, 10), (2, 5): (25, 2, 11)}
        for (robots, rooms), scale in expected.items():
            spec = translator.translate(robot_requirements(robots, rooms))
            got = (len(spec.requirements), spec.num_inputs, spec.num_outputs)
            assert got == scale, (robots, rooms)


class TestTableIVerdicts:
    def test_cara_components_consistent(self):
        tool = SpecCC(PAPER_CONFIG)
        for row, requirements in list(component_requirements().items())[:4]:
            report = tool.check(requirements)
            assert report.verdict is Verdict.REALIZABLE, row

    def test_telepromise_failing_rows_need_repair(self):
        tool = SpecCC(PAPER_CONFIG)
        for row, requirements in application_requirements().items():
            report = tool.check(requirements)
            assert report.verdict is Verdict.REALIZABLE, row
            if row in INITIALLY_FAILING_ROWS:
                assert report.repair_attempts >= 1, row
            else:
                assert report.repair_attempts == 0, row

    def test_single_robot_instances_consistent(self):
        tool = SpecCC(PAPER_CONFIG)
        for robots, rooms in [(1, 4), (1, 9)]:
            report = tool.check(robot_requirements(robots, rooms))
            assert report.verdict is Verdict.REALIZABLE, (robots, rooms)


class TestPrewarm:
    """The worker-pool initializer hook: cheap, transparent, observable."""

    def test_prewarm_populates_caches(self):
        SpecCC.clear_caches()
        stats = SpecCC().prewarm()
        assert stats["component_cache"]["misses"] >= 1
        assert stats["automaton_cache"]["size"] >= 0
        assert stats["interned_nodes"] > 0

    def test_prewarm_does_not_change_later_verdicts(self):
        SpecCC.clear_caches()
        cold = SpecCC().check([("R1", "If the sensor is active, the valve is opened.")])
        SpecCC.clear_caches()
        tool = SpecCC()
        tool.prewarm()
        warm = tool.check([("R1", "If the sensor is active, the valve is opened.")])
        from repro.service.reportjson import report_to_dict

        assert report_to_dict(cold, timings=False) == report_to_dict(
            warm, timings=False
        )

    def test_prewarm_custom_and_empty_workloads(self):
        tool = SpecCC()
        stats = tool.prewarm(["The valve is opened."])
        assert "component_cache" in stats
        assert tool.prewarm([]) == tool.cache_stats()  # no-op workload

    def test_cache_stats_snapshot_is_picklable(self):
        import pickle

        snapshot = SpecCC.cache_stats()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
