"""Tests of durable sessions (service/journal.py) and recovery wiring.

The contract under test, end to end: every session mutation is
write-ahead journaled before it is acknowledged; replaying any journaled
prefix through a fresh session — including prefixes ending in a
fault-injected torn tail, which must be CRC-detected and truncated,
never silently replayed — reproduces byte-identical reports to the
uninterrupted run; and a client that retries its last edit after
``attach`` observes exactly-once application (the rid watermark), on the
sync loop, the async front end, and across real process crashes.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
import zlib
from pathlib import Path

import pytest

from repro import SpecCC
from repro.service.faults import FaultPlan, install_journal, uninstall_journal
from repro.service.journal import (
    JournalStore,
    frame_record,
    read_records,
    validate_token,
)
from repro.service.server import AsyncSpecServer, _Server, serve
from repro.service.session import SpecSession

SRC = Path(__file__).resolve().parents[1] / "src"

#: A two-component document plus one edit per requirement — enough to
#: exercise add/load/update/check/compaction without slow analyses.
DOC = (
    "If the sensor is active, the valve is opened.\n"
    "If the button is pressed, the lamp is activated."
)
EDIT = "If the button is pressed, the lamp is not activated."


def scripted(server: _Server, requests) -> list:
    return [server.handle(dict(request)) for request in requests]


SCRIPT = [
    {"op": "load", "document": DOC, "rid": 1},
    {"op": "check", "timings": False, "rid": 2},
    {"op": "update", "id": "R2", "text": EDIT, "rid": 3},
    {"op": "check", "timings": False, "rid": 4},
    {"op": "remove", "id": "R1", "rid": 5},
    {"op": "check", "timings": False, "rid": 6},
]


class TestFraming:
    def test_round_trip(self):
        records = [{"op": "add", "id": "R1", "text": "x"}, {"op": "check"}]
        data = b"".join(frame_record(record) for record in records)
        parsed, valid, torn = read_records(data)
        assert parsed == records
        assert valid == len(data)
        assert torn is False

    def test_empty(self):
        assert read_records(b"") == ([], 0, False)

    def test_torn_tails_truncate_at_last_valid_record(self):
        whole = frame_record({"op": "check"})
        prefix = frame_record({"op": "add", "id": "R1", "text": "x"})
        # Every way a crash can shear the last record: mid-header,
        # mid-payload, and missing the terminating newline.
        for cut in (1, 10, len(whole) // 2, len(whole) - 1):
            records, valid, torn = read_records(prefix + whole[:cut])
            assert torn is True
            assert valid == len(prefix)
            assert records == [{"op": "add", "id": "R1", "text": "x"}]

    def test_corrupt_payload_is_detected_by_crc(self):
        data = bytearray(frame_record({"op": "check"}))
        data[-3] ^= 0xFF  # flip a payload byte, keep length and newline
        records, valid, torn = read_records(bytes(data))
        assert (records, valid, torn) == ([], 0, True)

    def test_garbage_header_is_torn(self):
        records, valid, torn = read_records(b"not a journal record\n")
        assert (records, valid, torn) == ([], 0, True)

    def test_crc_matches_payload_bytes(self):
        framed = frame_record({"op": "check"})
        payload = framed[18:-1]
        assert int(framed[9:17], 16) == zlib.crc32(payload) & 0xFFFFFFFF
        assert int(framed[0:8], 16) == len(payload)


class TestTokens:
    def test_accepts_safe_tokens(self):
        for token in ("default", "doc-3", "A.b_c", "x" * 64):
            assert validate_token(token) == token

    def test_rejects_path_tricks_and_nonsense(self):
        for token in ("", ".", "..", "../evil", "a/b", "a\\b", ".hidden",
                      "x" * 65, "sp ace", "nul\x00"):
            with pytest.raises(ValueError):
                validate_token(token)


class TestStore:
    def test_fsync_policy_parsing(self, tmp_path):
        assert JournalStore(tmp_path / "a", fsync="always").fsync_every == 1
        assert JournalStore(tmp_path / "b", fsync="never").fsync_every == 0
        assert JournalStore(tmp_path / "c", fsync="interval:5").fsync_every == 5
        with pytest.raises(ValueError):
            JournalStore(tmp_path / "d", fsync="sometimes")
        with pytest.raises(ValueError):
            JournalStore(tmp_path / "e", fsync="interval:0")

    def test_fsync_interval_counts_appends(self, tmp_path):
        store = JournalStore(tmp_path, fsync="interval:3", compact_every=0)
        durable = store.attach("t", SpecCC())
        for index in range(7):
            durable.journal.append({"op": "check", "rid": index})
        counters = store.counters()
        assert counters["appends"] == 7
        assert counters["fsyncs"] == 2  # after the 3rd and 6th append
        store.close()

    def test_journal_metrics_collector_registered(self, tmp_path):
        from repro.obs.metrics import registry

        store = JournalStore(tmp_path, fsync="never")
        snapshot = registry().snapshot(full=False)
        assert snapshot["journal"]["directory"] == str(tmp_path)
        assert snapshot["journal"]["appends"] == 0
        store.close()

    def test_compact_requires_checked_boundary(self, tmp_path):
        store = JournalStore(tmp_path, fsync="never")
        durable = store.attach("t", SpecCC())
        durable.session.add("R1", "The valve is opened.")
        with pytest.raises(ValueError):
            durable.journal.compact(durable.session, None)
        store.close()


class TestSyncRecovery:
    """The sync serve path: journal, crash, recover, resume."""

    def _run_script(self, store):
        tool = SpecCC()
        server = _Server(tool, journal_store=store)
        server.handle({"op": "attach", "token": "docA"})
        return scripted(server, SCRIPT)

    def test_replay_reproduces_byte_identical_reports(self, tmp_path):
        SpecCC.clear_caches()
        store = JournalStore(tmp_path, fsync="never", compact_every=0)
        reference = self._run_script(store)
        store.close()

        SpecCC.clear_caches()  # the "crash": all in-memory state gone
        recovered_store = JournalStore(tmp_path, fsync="never", compact_every=0)
        tool = SpecCC()
        durable = recovered_store.recover(tool)["docA"]
        assert durable.last_rid == 6
        assert durable.replayed_records == len(SCRIPT)
        assert durable.session.revision == 3
        # The recovered session's last report matches the last
        # acknowledged check byte for byte.
        from repro.service.reportjson import report_to_dict

        assert json.dumps(
            report_to_dict(durable.session.last_report.report, timings=False),
            sort_keys=True,
        ) == json.dumps(reference[-1]["report"], sort_keys=True)
        assert recovered_store.counters()["truncated_tails"] == 0
        recovered_store.close()

    def test_every_journaled_prefix_replays_consistently(self, tmp_path):
        """The crash-consistency invariant, exhaustively: for *every*
        record-boundary prefix of the journal, replay yields exactly the
        state an uninterrupted run had at that point."""
        SpecCC.clear_caches()
        store = JournalStore(tmp_path / "full", fsync="never", compact_every=0)
        self._run_script(store)
        store.close()
        data = (tmp_path / "full" / "docA.journal").read_bytes()
        records, valid, torn = read_records(data)
        assert torn is False and len(records) == len(SCRIPT)

        # Shadow the same history in plain sessions to know the expected
        # state after each prefix.
        boundaries = []
        offset = 0
        for record in records:
            offset += len(frame_record(record))
            boundaries.append(offset)
        tool = SpecCC()
        shadow = SpecSession(tool)
        expected = []
        for request in SCRIPT:
            op = request["op"]
            if op == "load":
                shadow.load_document(request["document"])
            elif op == "update":
                shadow.update(request["id"], request["text"])
            elif op == "remove":
                shadow.remove(request["id"])
            elif op == "check":
                shadow.check()
            expected.append((tuple(shadow.requirements()), shadow.revision))

        for index, boundary in enumerate(boundaries):
            prefix_dir = tmp_path / f"prefix{index}"
            prefix_dir.mkdir()
            (prefix_dir / "docA.journal").write_bytes(data[:boundary])
            prefix_store = JournalStore(prefix_dir, fsync="never")
            durable = prefix_store.recover(tool)["docA"]
            assert (
                tuple(durable.session.requirements()),
                durable.session.revision,
            ) == expected[index], f"prefix of {index + 1} records diverged"
            assert durable.last_rid == index + 1  # rids are 1..n in SCRIPT
            prefix_store.close()

    def test_compaction_bounds_journal_and_preserves_replay(self, tmp_path):
        SpecCC.clear_caches()
        compact_store = JournalStore(tmp_path / "c", fsync="never", compact_every=3)
        reference = self._run_script(compact_store)
        compact_store.close()
        assert compact_store.counters()["compactions"] >= 1

        data = (tmp_path / "c" / "docA.journal").read_bytes()
        records, _, torn = read_records(data)
        assert torn is False
        assert len(records) < len(SCRIPT)  # the log actually shrank
        assert records[0]["op"] == "snapshot"

        SpecCC.clear_caches()
        recovered_store = JournalStore(tmp_path / "c", fsync="never")
        durable = recovered_store.recover(SpecCC())["docA"]
        assert durable.session.revision == 3
        assert durable.last_rid == 6
        from repro.service.reportjson import report_to_dict

        assert json.dumps(
            report_to_dict(durable.session.last_report.report, timings=False),
            sort_keys=True,
        ) == json.dumps(reference[-1]["report"], sort_keys=True)
        recovered_store.close()

    def test_duplicate_rids_are_not_reapplied(self, tmp_path):
        store = JournalStore(tmp_path, fsync="never")
        server = _Server(SpecCC(), journal_store=store)
        server.handle({"op": "attach", "token": "docA"})
        first = server.handle({"op": "add", "id": "R1",
                               "text": "The valve is opened.", "rid": 1})
        assert first == {"size": 1}
        retry = server.handle({"op": "add", "id": "R1",
                               "text": "The valve is opened.", "rid": 1})
        assert retry["duplicate"] is True
        assert retry["size"] == 1  # exactly-once: not applied twice
        assert store.counters()["duplicates"] == 1
        # A duplicate check re-serves the last report without re-running.
        checked = server.handle({"op": "check", "timings": False, "rid": 2})
        again = server.handle({"op": "check", "timings": False, "rid": 2})
        assert again["duplicate"] is True
        assert json.dumps(again["report"], sort_keys=True) == json.dumps(
            checked["report"], sort_keys=True
        )
        assert again["revision"] == checked["revision"]
        store.close()

    def test_reset_is_journaled(self, tmp_path):
        store = JournalStore(tmp_path, fsync="never")
        server = _Server(SpecCC(), journal_store=store)
        server.handle({"op": "attach", "token": "docA"})
        server.handle({"op": "add", "id": "R1",
                       "text": "The valve is opened.", "rid": 1})
        server.handle({"op": "reset", "rid": 2})
        server.handle({"op": "add", "id": "R9",
                       "text": "The lamp is activated.", "rid": 3})
        store.close()
        recovered = JournalStore(tmp_path, fsync="never")
        durable = recovered.recover(SpecCC())["docA"]
        assert [i for i, _ in durable.session.requirements()] == ["R9"]
        assert durable.last_rid == 3
        recovered.close()

    def test_attach_requires_journaling(self):
        server = _Server(SpecCC())
        response_error = None
        try:
            server.handle({"op": "attach", "token": "docA"})
        except Exception as error:  # noqa: BLE001
            response_error = error
        from repro.service.server import ServiceError, error_code

        assert isinstance(response_error, ServiceError)
        assert error_code(response_error) == "bad_request"

    def test_serve_loop_with_journal_auto_attaches(self, tmp_path):
        import io

        store = JournalStore(tmp_path, fsync="never")
        out = io.StringIO()
        requests = [
            {"op": "add", "id": "R1", "text": "The valve is opened.", "rid": 1},
            {"op": "shutdown"},
        ]
        serve(
            io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n"),
            out,
            journal_store=store,
        )
        store.close()
        recovered = JournalStore(tmp_path, fsync="never")
        assert recovered.tokens_on_disk() == ("default",)
        durable = recovered.recover(SpecCC())["default"]
        assert len(durable.session) == 1 and durable.last_rid == 1
        recovered.close()


class TestJournalFaultHooks:
    """The fault vocabulary (in-process part: scheduling, not dying)."""

    def teardown_method(self):
        uninstall_journal()

    def test_plans_parse_journal_kinds(self):
        plan = FaultPlan.from_json(
            '{"faults": [{"kind": "journal_crash", "task": 3},'
            ' {"kind": "journal_torn", "task": 7}]}'
        )
        assert [spec.kind for spec in plan.specs] == [
            "journal_crash", "journal_torn",
        ]

    def test_append_ordinal_matching(self):
        from repro.service.faults import on_journal_append

        install_journal(FaultPlan.from_json(
            '{"faults": [{"kind": "journal_crash", "task": 2}]}'
        ))
        assert [on_journal_append() for _ in range(4)] == [
            None, None, "crash", None,
        ]

    def test_worker_plans_do_not_arm_journal_state(self):
        from repro.service.faults import on_journal_append

        install_journal(FaultPlan.from_json('{"faults": [{"kind": "crash"}]}'))
        assert on_journal_append() is None


def _spawn_serve(tmp_path: Path, *extra, faults=None) -> subprocess.Popen:
    """A real ``python -m repro serve --journal`` child on pipes."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if faults is not None:
        env["REPRO_FAULTS"] = json.dumps(faults)
    else:
        env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--journal", str(tmp_path / "journal"), *extra],
        env=env,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _request(proc: subprocess.Popen, payload: dict) -> dict:
    proc.stdin.write(json.dumps(payload) + "\n")
    proc.stdin.flush()
    line = proc.stdout.readline()
    assert line, "serve child died before responding"
    return json.loads(line)


class TestCrashRecoverySubprocess:
    """Real process death: injected journal faults + SIGTERM drain."""

    def test_journal_crash_fault_preserves_append_and_dedupes_retry(
        self, tmp_path
    ):
        # Fault: die on the 2nd journal append (the check's), after the
        # record is durable, before the ack reaches the client.
        crashing = _spawn_serve(
            tmp_path,
            faults={"faults": [{"kind": "journal_crash", "task": 1}]},
        )
        try:
            added = _request(
                crashing,
                {"op": "add", "id": "R1",
                 "text": "The valve is opened.", "rid": 1},
            )
            assert added["ok"] is True
            crashing.stdin.write(
                json.dumps({"op": "check", "timings": False, "rid": 2}) + "\n"
            )
            crashing.stdin.flush()
            assert crashing.stdout.readline() == ""  # no ack: it crashed
            assert crashing.wait(timeout=30) == 1
        finally:
            _reap(crashing)

        # Restart on the same journal; the unacknowledged check WAS
        # journaled, so the client's retry dedupes (exactly-once) and
        # still gets the full report.
        restarted = _spawn_serve(tmp_path)
        try:
            retried = _request(
                restarted, {"op": "check", "timings": False, "rid": 2}
            )
            assert retried["ok"] is True
            assert retried["duplicate"] is True
            assert retried["revision"] == 1
            assert [r["identifier"] for r in retried["report"]["requirements"]] \
                == ["R1"]
            stats = _request(restarted, {"op": "stats"})
            assert stats["journal"]["replayed_records"] == 2
            assert stats["journal"]["truncated_tails"] == 0
            assert stats["journal"]["duplicates"] == 1
        finally:
            _reap(restarted)

    def test_journal_torn_fault_is_truncated_and_retry_applies_fresh(
        self, tmp_path
    ):
        torn = _spawn_serve(
            tmp_path,
            faults={"faults": [{"kind": "journal_torn", "task": 1}]},
        )
        try:
            _request(torn, {"op": "add", "id": "R1",
                            "text": "The valve is opened.", "rid": 1})
            torn.stdin.write(
                json.dumps({"op": "add", "id": "R2", "rid": 2,
                            "text": "The lamp is activated."}) + "\n"
            )
            torn.stdin.flush()
            assert torn.stdout.readline() == ""
            assert torn.wait(timeout=30) == 1
        finally:
            _reap(torn)
        # The half-written record must be on disk (the fault wrote it)...
        journal = tmp_path / "journal" / "default.journal"
        _, _, torn_tail = read_records(journal.read_bytes())
        assert torn_tail is True

        restarted = _spawn_serve(tmp_path)
        try:
            # ...and recovery truncated it: R2 was never acknowledged and
            # is NOT replayed; the retry applies it fresh (not duplicate).
            retried = _request(
                restarted, {"op": "add", "id": "R2", "rid": 2,
                            "text": "The lamp is activated."})
            assert retried["ok"] is True
            assert "duplicate" not in retried
            assert retried["size"] == 2
            stats = _request(restarted, {"op": "stats"})
            assert stats["journal"]["truncated_tails"] == 1
            assert stats["journal"]["replayed_records"] == 1
        finally:
            _reap(restarted)

    def test_sigterm_drains_flushes_and_exits_zero(self, tmp_path):
        proc = _spawn_serve(tmp_path)
        try:
            added = _request(proc, {"op": "add", "id": "R1",
                                    "text": "The valve is opened.", "rid": 1})
            assert added["ok"] is True
            # A request goes in and the signal lands right behind it: the
            # in-flight request must finish and its response flush before
            # the drain exits.
            proc.stdin.write(
                json.dumps({"op": "check", "timings": False, "rid": 2}) + "\n"
            )
            proc.stdin.flush()
            time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            response = proc.stdout.readline()
            assert response, "in-flight check was dropped by the drain"
            assert json.loads(response)["ok"] is True
            assert proc.wait(timeout=30) == 0
        finally:
            _reap(proc)
        # The journal survived the drain: both records fsynced.
        recovered = JournalStore(tmp_path / "journal", fsync="never")
        durable = recovered.recover(SpecCC())["default"]
        assert durable.last_rid == 2 and durable.session.revision == 1
        recovered.close()

    def test_sigterm_while_idle_exits_zero(self, tmp_path):
        proc = _spawn_serve(tmp_path)
        try:
            assert _request(proc, {"op": "ping"})["ok"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            _reap(proc)


def _reap(proc: subprocess.Popen) -> None:
    for stream in (proc.stdin, proc.stdout):
        try:
            if stream is not None:
                stream.close()
        except OSError:
            pass
    if proc.poll() is None:
        proc.terminate()
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


class TestAsyncDurable:
    """The async front end: attach aliases, detach-vs-drop, resume."""

    def _drive(self, coro):
        return asyncio.run(coro)

    def test_attach_resume_and_dedupe_across_front_ends(self, tmp_path):
        store = JournalStore(tmp_path, fsync="never")

        async def first_life():
            server = AsyncSpecServer(SpecCC(), journal_store=store)
            responses = []
            await server.handle_request({"op": "attach", "token": "docA",
                                         "session": "s1"})
            for request in SCRIPT[:4]:
                responses.append(
                    await server.handle_request(dict(request, session="s1"))
                )
            return server, responses

        server, responses = self._drive(first_life())
        assert all(r["ok"] for r in responses)
        # Dropping the namespace keeps the durable session.
        assert server.drop_sessions("s1") == 0
        assert server.detach_sessions("s1") == 1
        assert server.durable_tokens == ("docA",)
        store.close()

        # Second life: a fresh store over the same directory (the
        # restart), resumed through a different session name.
        SpecCC.clear_caches()
        recovered_store = JournalStore(tmp_path, fsync="never")

        async def second_life():
            server = AsyncSpecServer(SpecCC(), journal_store=recovered_store)
            attach = await server.handle_request(
                {"op": "attach", "token": "docA", "session": "other"}
            )
            retry = await server.handle_request(
                {"op": "update", "id": "R2", "text": EDIT,
                 "rid": 3, "session": "other"}
            )
            check = await server.handle_request(
                {"op": "check", "timings": False, "rid": 7, "session": "other"}
            )
            return attach, retry, check

        attach, retry, check = self._drive(second_life())
        assert attach["ok"] is True
        assert attach["last_rid"] == 4
        assert attach["revision"] == 2
        assert retry["duplicate"] is True  # exactly-once across restart
        # The replayed document checks to the byte-identical report the
        # first life acknowledged (revision/delta are fresh-run state and
        # legitimately differ; the report is the pure function).
        assert json.dumps(check["report"], sort_keys=True) == json.dumps(
            responses[3]["report"], sort_keys=True
        )
        recovered_store.close()

    def test_attach_validates_tokens_and_requires_store(self, tmp_path):
        async def no_store():
            server = AsyncSpecServer(SpecCC())
            return await server.handle_request(
                {"op": "attach", "token": "docA"}
            )

        response = self._drive(no_store())
        assert response["ok"] is False and response["code"] == "bad_request"

        store = JournalStore(tmp_path, fsync="never")

        async def bad_token():
            server = AsyncSpecServer(SpecCC(), journal_store=store)
            return await server.handle_request(
                {"op": "attach", "token": "../evil"}
            )

        response = self._drive(bad_token())
        assert response["ok"] is False and response["code"] == "bad_request"
        assert not (tmp_path.parent / "evil.journal").exists()
        store.close()

    def test_durable_sessions_count_against_cap(self, tmp_path):
        store = JournalStore(tmp_path, fsync="never")

        async def drive():
            server = AsyncSpecServer(
                SpecCC(), journal_store=store, max_sessions=1
            )
            first = await server.handle_request(
                {"op": "attach", "token": "one", "session": "a"}
            )
            second = await server.handle_request(
                {"op": "attach", "token": "two", "session": "b"}
            )
            return first, second

        first, second = self._drive(drive())
        assert first["ok"] is True
        assert second["ok"] is False and second["code"] == "bad_request"
        store.close()
