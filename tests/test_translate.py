"""Tests for stage 1: propositions, Algorithm 1, templates, time
abstraction, I/O partition, and the full translator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import Atom, Next, atoms, next_chain, parse, to_str
from repro.nlp import AntonymDictionary, parse_sentence
from repro.translate import (
    AbstractionMethod,
    Color,
    TranslationOptions,
    Translator,
    abstract_time,
    analyse,
    chain_lengths,
    classify_requirement,
    clause_propositions,
    mutual_exclusion_assumptions,
    no_reasoning,
    partition_formulas,
    rewrite_chains,
    sentence_formula,
    unify,
)
from repro.translate.partition import RequirementPartition


def formula_of(text: str, **options) -> str:
    sentence = parse_sentence(text)
    opts = TranslationOptions(**options)
    return to_str(sentence_formula(sentence, None, opts))


class TestPropositions:
    def test_passive(self):
        clause = parse_sentence("The cuff is inflated.").main.clauses[0]
        (prop,) = clause_propositions(clause)
        assert prop.name == "inflate_cuff" and not prop.negated

    def test_adjective_is_antonym_candidate(self):
        clause = parse_sentence("The cuff is available.").main.clauses[0]
        (prop,) = clause_propositions(clause)
        assert prop.is_antonym_candidate
        assert prop.name == "available_cuff"

    def test_negated(self):
        clause = parse_sentence("The cuff is not inflated.").main.clauses[0]
        (prop,) = clause_propositions(clause)
        assert prop.negated

    def test_one_per_subject(self):
        clause = parse_sentence("Pulse wave and arterial line are lost.").main.clauses[0]
        props = clause_propositions(clause)
        assert [p.name for p in props] == ["lost_pulse_wave", "lost_arterial_line"]


class TestAlgorithm1:
    def sentences(self, *texts):
        return [parse_sentence(t) for t in texts]

    def test_pair_found_per_subject(self):
        analysis = analyse(
            self.sentences(
                "The pulse wave is available.",
                "The pulse wave is unavailable.",
            )
        )
        assert analysis.pairs_by_subject["pulse_wave"] == [("available", "unavailable")]
        assert analysis.color_of("available", "pulse_wave") is Color.BLUE
        assert analysis.color_of("unavailable", "pulse_wave") is Color.BLUE

    def test_single_dependent_skipped(self):
        # Algorithm 1 line 3: |s.dep| > 1 required.
        analysis = analyse(self.sentences("The pulse wave is available."))
        assert "pulse_wave" not in analysis.pairs_by_subject

    def test_non_antonym_dependents_stay_green(self):
        analysis = analyse(
            self.sentences(
                "The line is available.",
                "The line is busy.",
            )
        )
        assert analysis.color_of("available", "line") is Color.GREEN
        assert analysis.color_of("busy", "line") is Color.GREEN

    def test_pairs_are_per_subject(self):
        analysis = analyse(
            self.sentences(
                "The pulse wave is available.",
                "The pulse wave is unavailable.",
                "The arterial line is available.",
                "The arterial line is lost.",
            )
        )
        assert set(analysis.pairs_by_subject) == {"pulse_wave", "arterial_line"}

    def test_reduction_abbreviates_single_positive(self):
        analysis = analyse(
            self.sentences(
                "The pulse wave is available.",
                "The pulse wave is unavailable.",
            )
        )
        clause = parse_sentence("The pulse wave is unavailable.").main.clauses[0]
        (prop,) = clause_propositions(clause)
        reduced = analysis.reduce(prop)
        assert reduced.name == "pulse_wave" and reduced.negated

    def test_morphological_reduction_without_pair(self):
        analysis = analyse(self.sentences("The feed is unavailable."))
        clause = parse_sentence("The feed is unavailable.").main.clauses[0]
        (prop,) = clause_propositions(clause)
        reduced = analysis.reduce(prop)
        assert reduced.name == "available_feed" and reduced.negated

    def test_curated_unique_negative(self):
        analysis = analyse(self.sentences("The alarm is disabled."))
        clause = parse_sentence("The alarm is disabled.").main.clauses[0]
        (prop,) = clause_propositions(clause)
        reduced = analysis.reduce(prop)
        assert reduced.name == "enabled_alarm" and reduced.negated

    def test_no_reasoning_reduces_nothing(self):
        clause = parse_sentence("The feed is unavailable.").main.clauses[0]
        (prop,) = clause_propositions(clause)
        assert no_reasoning().reduce(prop) == prop

    def test_mutual_exclusion_assumption_count(self):
        analysis = analyse(
            self.sentences(
                "The pulse wave is available.",
                "The pulse wave is unavailable.",
            )
        )
        assert mutual_exclusion_assumptions(analysis) == [
            ("available_pulse_wave", "unavailable_pulse_wave")
        ]

    def test_custom_dictionary(self):
        dictionary = AntonymDictionary.from_pairs([("armed", "safe")])
        analysis = analyse(
            self.sentences("The system is armed.", "The system is safe."),
            dictionary,
        )
        assert analysis.pairs_by_subject["system"] == [("armed", "safe")]


class TestTemplates:
    def test_conditional(self):
        assert formula_of(
            "If the cuff is lost, the alarm is issued."
        ) == "G (lost_cuff -> issue_alarm)"

    def test_eventually_modifier(self):
        assert formula_of(
            "When the mode is entered, eventually the cuff is inflated."
        ) == "G (enter_mode -> F inflate_cuff)"

    def test_future_modality(self):
        assert formula_of(
            "If the mode is entered, the cuff will be inflated."
        ) == "G (enter_mode -> F inflate_cuff)"

    def test_bare_invariant(self):
        assert formula_of("The pump is monitored.") == "G monitor_pump"

    def test_bare_existence(self):
        assert formula_of("Eventually the pump is started.") == "F start_pump"

    def test_nested_conditions(self):
        assert formula_of(
            "If the selection is provided, if the button is pressed, the mode is started."
        ) == "G (provide_selection -> G (press_button -> start_mode))"

    def test_next_marker(self):
        text = "If the cuff is lost, next manual mode is started."
        assert formula_of(text, next_as_x=True) == "G (lost_cuff -> X start_manual_mode)"
        assert formula_of(text, next_as_x=False) == "G (lost_cuff -> start_manual_mode)"

    def test_constraint_expands_to_next_chain(self):
        assert formula_of(
            "If the cuff is lost, the alarm is issued in 3 seconds."
        ) == "G (lost_cuff -> X X X issue_alarm)"

    def test_until_template(self):
        assert formula_of(
            "When the button is enabled, the button is enabled until it is pressed."
        ) == (
            "G (enabled_button -> !press_button -> "
            "enabled_button W press_button)"
        )

    def test_before_template(self):
        assert formula_of(
            "The door is closed before the pump is started."
        ) == "!start_pump U closed_door"

    def test_or_subjects(self):
        assert formula_of(
            "If pulse wave or arterial line is lost, the alarm is issued."
        ) == "G (lost_pulse_wave || lost_arterial_line -> issue_alarm)"

    def test_trailing_condition(self):
        assert formula_of(
            "The system is operational whenever the power is on."
        ) == "G (on_power -> operational_system)"


class TestChainRewriting:
    def test_chain_lengths_ignores_single_next(self):
        formulas = [parse("G (a -> X b)"), parse("G (c -> X X X d)")]
        assert chain_lengths(formulas) == (3,)

    def test_chain_lengths_finds_nested(self):
        formulas = [parse("G (X X a -> X X X X b)")]
        assert chain_lengths(formulas) == (2, 4)

    def test_rewrite(self):
        formula = parse("G (a -> X X X b)")
        assert rewrite_chains(formula, {3: 1}) == parse("G (a -> X b)")
        assert rewrite_chains(formula, {3: 0}) == parse("G (a -> b)")

    def test_rewrite_keeps_unmapped(self):
        formula = parse("X X a")
        assert rewrite_chains(formula, {}) == formula

    @given(st.integers(2, 12), st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_rewrite_roundtrip_depth(self, depth, scaled):
        formula = next_chain(Atom("p"), depth)
        rewritten = rewrite_chains(formula, {depth: scaled})
        assert rewritten == next_chain(Atom("p"), scaled)


class TestAbstractTime:
    def test_paper_mapping(self):
        formulas = [
            parse("G (a -> " + "X " * 3 + "p)"),
            parse("G (b -> " + "X " * 180 + "q)"),
            parse("G (c -> " + "X " * 60 + "r)"),
        ]
        result = abstract_time(formulas, AbstractionMethod.OPTIMAL, error_bound=5)
        assert result.solution.divisor == 60
        assert result.mapping == {3: 0, 60: 1, 180: 3}

    def test_gcd_method(self):
        formulas = [parse("X X X X a"), parse("X X b")]
        result = abstract_time(formulas, AbstractionMethod.GCD)
        assert result.solution.divisor == 2
        assert result.formulas == (parse("X X a"), parse("X b"))

    def test_none_method(self):
        formulas = [parse("X X X a")]
        result = abstract_time(formulas, AbstractionMethod.NONE)
        assert result.formulas == tuple(formulas)


class TestPartition:
    def test_implication_sides(self):
        part = classify_requirement(parse("G (a && b -> c)"))
        assert part.inputs == {"a", "b"}
        assert part.outputs == {"c"}

    def test_both_sides_is_output(self):
        part = classify_requirement(parse("G (a -> a && b)"))
        assert part.inputs == set()
        assert "a" in part.outputs

    def test_until_right_is_input(self):
        part = classify_requirement(parse("b U p"))
        assert "p" in part.inputs
        assert "b" in part.outputs

    def test_unify_conflicts_become_outputs(self):
        merged = unify([
            RequirementPartition(inputs={"a"}, outputs={"b"}),
            RequirementPartition(inputs={"b"}, outputs={"c"}),
        ])
        assert merged.inputs == frozenset({"a"})
        assert merged.outputs == frozenset({"b", "c"})

    def test_no_inputs_promotes_one_output(self):
        partition = partition_formulas([parse("G (a || b)")])
        assert len(partition.inputs) == 1
        assert partition.inputs == frozenset({"a"})  # deterministic choice

    def test_move_operations(self):
        partition = partition_formulas([parse("G (a -> b)")])
        moved = partition.move_to_output("a")
        assert "a" in moved.outputs
        back = moved.move_to_input("a")
        assert "a" in back.inputs
        with pytest.raises(ValueError):
            partition.move_to_output("b")

    def test_disjoint_invariant(self):
        from repro.translate import Partition

        with pytest.raises(ValueError):
            Partition(frozenset({"a"}), frozenset({"a"}))

    def test_paper_example_req_32(self):
        formula = parse(
            "G ((available_pulse_wave || available_arterial_line) && select_cuff"
            " -> trigger_corroboration)"
        )
        part = classify_requirement(formula)
        assert part.inputs == {
            "available_pulse_wave",
            "available_arterial_line",
            "select_cuff",
        }
        assert part.outputs == {"trigger_corroboration"}


class TestTranslator:
    def test_document_numbering(self):
        translator = Translator()
        spec = translator.translate_document(
            "If the cuff is lost, the alarm is issued.\n"
            "If the alarm is issued, the pump is stopped."
        )
        assert [r.identifier for r in spec.requirements] == ["R1", "R2"]

    def test_reported_counts(self):
        translator = Translator()
        spec = translator.translate_document(
            "If the cuff is lost, the alarm is issued."
        )
        assert spec.num_inputs == 1 and spec.num_outputs == 1
        assert "1 inputs" in spec.summary()

    def test_semantic_reasoning_toggle(self):
        document = (
            "If the line is available, the alarm is stopped.\n"
            "If the line is unavailable, the alarm is issued."
        )
        with_reasoning = Translator().translate_document(document)
        without = Translator(
            options=TranslationOptions(semantic_reasoning=False)
        ).translate_document(document)
        assert len(with_reasoning.variables()) < len(without.variables())

    def test_abstraction_applied_across_requirements(self):
        translator = Translator(error_bound=5)
        spec = translator.translate_document(
            "If the valve is open, the alarm is issued in 3 seconds.\n"
            "If the valve is open, the pump is stopped in 180 seconds.\n"
            "If the valve is open, the log is updated in 60 seconds."
        )
        assert spec.abstraction.solution.divisor == 60

    def test_bitblast_matches_reference(self):
        document = (
            "If the valve is open, the alarm is issued in 4 seconds.\n"
            "If the valve is open, the pump is stopped in 7 seconds."
        )
        optimal = Translator(abstraction=AbstractionMethod.OPTIMAL, error_bound=2)
        bitblast = Translator(abstraction=AbstractionMethod.BITBLAST, error_bound=2)
        a = optimal.translate_document(document)
        b = bitblast.translate_document(document)
        assert a.abstraction.solution.cost_next == b.abstraction.solution.cost_next
