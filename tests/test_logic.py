"""Tests for the LTL core: AST, parser, printer, NNF, simplifier, semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Atom,
    Finally,
    Globally,
    Implies,
    LassoWord,
    LTLSyntaxError,
    Next,
    Not,
    Or,
    Release,
    Until,
    WeakUntil,
    atoms,
    conj,
    disj,
    is_nnf,
    next_chain,
    next_depth,
    parse,
    satisfies,
    simplify,
    size,
    to_nnf,
    to_str,
)

a, b, c = Atom("a"), Atom("b"), Atom("c")


class TestAst:
    def test_operator_overloads(self):
        assert (a & b) == And(a, b)
        assert (a | b) == Or(a, b)
        assert (~a) == Not(a)
        assert (a >> b) == Implies(a, b)

    def test_equality_is_structural_and_class_sensitive(self):
        assert Next(a) != Finally(a)
        assert Until(a, b) != Release(a, b)
        assert And(a, b) != And(b, a)
        assert And(a, b) == And(a, b)

    def test_hashable(self):
        assert len({And(a, b), And(a, b), Or(a, b)}) == 2

    def test_empty_atom_rejected(self):
        with pytest.raises(ValueError):
            Atom("")

    def test_conj_disj(self):
        assert conj([]) == TRUE
        assert disj([]) == FALSE
        assert conj([a]) == a
        assert conj([a, b, c]) == And(a, And(b, c))
        assert disj([a, b]) == Or(a, b)

    def test_next_chain(self):
        assert next_chain(a, 0) == a
        assert next_chain(a, 3) == Next(Next(Next(a)))
        with pytest.raises(ValueError):
            next_chain(a, -1)

    def test_atoms_and_size(self):
        formula = Globally(Implies(a, Finally(And(b, Not(a)))))
        assert atoms(formula) == {"a", "b"}
        assert size(formula) == 8

    def test_next_depth(self):
        assert next_depth(a) == 0
        assert next_depth(parse("G(a -> X X X b)")) == 3
        assert next_depth(parse("X a && X X b")) == 2


class TestParser:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "!a",
            "a && b || c",
            "a -> b -> c",
            "G (a -> F b)",
            "a U b",
            "a W b",
            "a R b",
            "X X X a",
            "[] (a -> <> b)",
            "true && false",
            "pulse_wave && !arterial-line",
        ],
    )
    def test_roundtrip(self, text):
        formula = parse(text)
        assert parse(to_str(formula)) == formula

    def test_precedence(self):
        assert parse("a && b || c") == Or(And(a, b), c)
        assert parse("a -> b -> c") == Implies(a, Implies(b, c))
        assert parse("a U b && c") == And(Until(a, b), c)
        assert parse("!a U b") == Until(Not(a), b)
        assert parse("F a U b") == Until(Finally(a), b)

    def test_paper_style_operators(self):
        assert parse("[] p") == Globally(Atom("p"))
        assert parse("<> p") == Finally(Atom("p"))

    def test_hyphenated_identifiers(self):
        assert parse("auto-control_mode") == Atom("auto-control_mode")
        # '->' must still parse as implication after an identifier
        assert parse("a->b") == Implies(a, b)

    @pytest.mark.parametrize("text", ["", "&& a", "(a", "a b", "a &&", "a @ b"])
    def test_syntax_errors(self, text):
        with pytest.raises(LTLSyntaxError):
            parse(text)

    def test_paper_appendix_formula(self):
        formula = parse(
            "G ((pulse_wave || arterial_line) && select_cuff -> trigger_corroboration)"
        )
        assert atoms(formula) == {
            "pulse_wave",
            "arterial_line",
            "select_cuff",
            "trigger_corroboration",
        }


class TestNNF:
    @pytest.mark.parametrize(
        "text",
        [
            "!(a && b)",
            "!(a U b)",
            "!G a",
            "!F a",
            "!(a -> b)",
            "!(a <-> b)",
            "!X a",
            "!(a W b)",
            "G (a -> F b)",
            "!(a R b)",
        ],
    )
    def test_nnf_shape(self, text):
        assert is_nnf(to_nnf(parse(text)))

    def test_double_negation(self):
        assert to_nnf(parse("!!a")) == a

    def test_weak_until_expansion(self):
        assert to_nnf(parse("a W b")) == Release(b, Or(a, b))


def words(max_aps=3, max_len=4):
    letters = st.frozensets(
        st.sampled_from([f"p{i}" for i in range(max_aps)]), max_size=max_aps
    )
    return st.builds(
        LassoWord,
        st.lists(letters, max_size=max_len).map(tuple),
        st.lists(letters, min_size=1, max_size=max_len).map(tuple),
    )


def formulas(max_aps=3):
    names = [f"p{i}" for i in range(max_aps)]
    base = st.sampled_from([Atom(n) for n in names] + [TRUE, FALSE])
    return st.recursive(
        base,
        lambda inner: st.one_of(
            st.builds(Not, inner),
            st.builds(Next, inner),
            st.builds(Finally, inner),
            st.builds(Globally, inner),
            st.builds(And, inner, inner),
            st.builds(Or, inner, inner),
            st.builds(Implies, inner, inner),
            st.builds(Until, inner, inner),
            st.builds(Release, inner, inner),
            st.builds(WeakUntil, inner, inner),
        ),
        max_leaves=8,
    )


class TestSemantics:
    def test_globally_on_loop(self):
        word = LassoWord.of([], [["p"]])
        assert satisfies(word, parse("G p"))
        assert not satisfies(word, parse("G !p"))

    def test_until_needs_goal(self):
        word = LassoWord.of([["p"], ["p"]], [["q"]])
        assert satisfies(word, parse("p U q"))
        word_no_goal = LassoWord.of([], [["p"]])
        assert not satisfies(word_no_goal, parse("p U q"))
        assert satisfies(word_no_goal, parse("p W q"))

    def test_next_into_loop(self):
        word = LassoWord.of([["p"]], [["q"], []])
        assert satisfies(word, parse("X q"))
        assert satisfies(word, parse("X X !q"))
        assert satisfies(word, parse("G F q"))
        assert not satisfies(word, parse("F G q"))

    def test_release(self):
        always_b = LassoWord.of([], [["b"]])
        assert satisfies(always_b, parse("a R b"))
        released = LassoWord.of([["b"], ["a", "b"]], [[]])
        assert satisfies(released, parse("a R b"))
        broken = LassoWord.of([["b"]], [[]])
        assert not satisfies(broken, parse("a R b"))

    def test_loop_lozenge_inside_box(self):
        word = LassoWord.of([], [[], [], ["p"]])
        assert satisfies(word, parse("G F p"))

    @given(formulas(), words())
    @settings(max_examples=150, deadline=None)
    def test_nnf_preserves_semantics(self, formula, word):
        assert satisfies(word, formula) == satisfies(word, to_nnf(formula))

    @given(formulas(), words())
    @settings(max_examples=150, deadline=None)
    def test_simplify_preserves_semantics(self, formula, word):
        assert satisfies(word, formula) == satisfies(word, simplify(formula))

    @given(formulas(), words())
    @settings(max_examples=100, deadline=None)
    def test_negation_flips(self, formula, word):
        assert satisfies(word, Not(formula)) == (not satisfies(word, formula))

    @given(formulas())
    @settings(max_examples=100, deadline=None)
    def test_printer_parser_roundtrip(self, formula):
        assert parse(to_str(formula)) == formula


class TestSimplify:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("true && a", "a"),
            ("a || true", "true"),
            ("!!a", "a"),
            ("X false", "false"),
            ("F F a", "F a"),
            ("G G a", "G a"),
            ("a -> a", "true"),
            ("a U a", "a"),
            ("false R a", "G a"),
            ("true U a", "F a"),
            ("a <-> true", "a"),
            ("a W a", "a"),
            ("(true && a) || false", "a"),
        ],
    )
    def test_rules(self, text, expected):
        assert simplify(parse(text)) == parse(expected)

    def test_idempotent(self):
        formula = parse("G ((true && a) -> F (b || false))")
        once = simplify(formula)
        assert simplify(once) == once
