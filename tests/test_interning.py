"""Interning (hash-consing) invariants of the formula core.

The contract the hot paths rely on:

* structural equality implies pointer identity,
* hashes are cached, collision-stable and independent of
  ``PYTHONHASHSEED`` (so set/dict iteration over formulas is reproducible),
* pickle round-trips re-intern,
* nodes are immutable and garbage-collectable (the intern pools are weak),
* and — the regression that matters most — :func:`repro.automata.gpvw.translate`
  builds byte-identical automata to the pre-interning seed on the Table I
  case-study formulas (golden fingerprints in ``tests/data``).
"""

from __future__ import annotations

import copy
import gc
import hashlib
import json
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.automata import gpvw
from repro.logic.ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bool,
    Finally,
    Formula,
    Globally,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
    WeakUntil,
    atoms,
    conj,
    interned_count,
    next_chain,
    next_depth,
)
from repro.logic.parser import parse

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_automata.json"


# ---------------------------------------------------------------------------
# Identity and hashing


def test_structural_equality_is_identity():
    a, b = Atom("a"), Atom("b")
    assert Atom("a") is a
    assert Not(a) is Not(a)
    assert And(a, b) is And(a, b)
    assert And(a, b) is not And(b, a)
    assert Until(a, b) is Until(a, b)
    assert Bool(True) is TRUE and Bool(False) is FALSE
    assert parse("G (a -> F b)") is parse("G(a ->  F(b))")
    assert conj([a, b, Not(a)]) is conj([a, b, Not(a)])


def test_identity_equality_distinguishes_operators():
    a, b = Atom("a"), Atom("b")
    pairs = [Until(a, b), Release(a, b), WeakUntil(a, b), And(a, b), Or(a, b),
             Implies(a, b), Iff(a, b)]
    assert len(set(pairs)) == len(pairs)
    assert Next(a) is not Finally(a)
    assert Finally(a) is not Globally(a)


def test_hash_is_cached_and_consistent():
    deep = next_chain(And(Atom("a"), Not(Atom("b"))), 150)
    assert hash(deep) == hash(deep)
    rebuilt = next_chain(And(Atom("a"), Not(Atom("b"))), 150)
    assert rebuilt is deep and hash(rebuilt) == hash(deep)


def test_hash_stable_across_hash_randomisation():
    """Structural hashes avoid str hashing, so they cannot depend on
    PYTHONHASHSEED — formula-set iteration orders are reproducible."""
    program = (
        "from repro.logic.parser import parse;"
        "print(hash(parse('G (a -> F (b && X c))')), hash(parse('p U (q R r)')))"
    )
    outputs = set()
    for seed in ("1", "2", "random"):
        result = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            cwd=Path(__file__).parent.parent,
        )
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1, f"hashes differ across seeds: {outputs}"


def test_uids_are_distinct_and_stable():
    a, b = Atom("a"), Atom("b")
    nodes = [a, b, And(a, b), Or(a, b), Not(a)]
    assert len({n.uid for n in nodes}) == len(nodes)
    assert And(a, b).uid == And(a, b).uid


# ---------------------------------------------------------------------------
# Immutability, copying, pickling, lifetime


def test_nodes_are_immutable():
    node = And(Atom("a"), Atom("b"))
    with pytest.raises(AttributeError):
        node.left = Atom("c")
    with pytest.raises(AttributeError):
        del node.left
    with pytest.raises(ValueError):
        Atom("")


def test_copy_returns_same_object():
    node = Until(Atom("a"), Next(Atom("b")))
    assert copy.copy(node) is node
    assert copy.deepcopy(node) is node


def test_pickle_round_trip_reinterns():
    node = And(Not(Atom("a")), next_chain(Atom("b"), 150))
    clone = pickle.loads(pickle.dumps(node))
    assert clone is node
    for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
        assert pickle.loads(pickle.dumps(node, protocol)) is node


def test_intern_pools_are_weak():
    before = interned_count()
    bulk = [Atom(f"gc_probe_{i}") for i in range(100)]
    assert interned_count() >= before + 100
    del bulk
    gc.collect()
    assert interned_count() <= before + 5  # stragglers from cycles at most


def test_nnf_backlinks_do_not_pin_nodes():
    """Per-node caches point from child to parent (``a._nnf_neg`` is
    ``!a``); the pools must not turn that into an immortal pair, so whole
    formula clusters are reclaimed once externally unreferenced."""
    from repro.logic.nnf import to_nnf

    def build_and_drop():
        formula = parse("G (gc_cycle_a -> F gc_cycle_b)")
        to_nnf(Not(formula))  # populates _nnf_neg backlinks on every node

    before = interned_count()
    build_and_drop()
    gc.collect()
    assert interned_count() == before


# ---------------------------------------------------------------------------
# Cached analyses


def test_atoms_and_next_depth_match_definitions():
    formula = parse("G (a -> F (b && X (c U d)))")
    assert atoms(formula) == frozenset("abcd")
    assert next_depth(next_chain(formula, 150)) == 151
    assert next_depth(Atom("a")) == 0
    # Cache hits return identical objects.
    assert atoms(formula) is atoms(formula)


def test_sort_key_matches_printer():
    from repro.logic.printer import to_str

    formula = parse("(a U b) && X !c")
    assert formula.sort_key() == to_str(formula)
    assert formula.sort_key() is formula.sort_key()


# ---------------------------------------------------------------------------
# Translation cache


def test_translate_is_cached_per_formula():
    formula = parse("G (req -> F ack)")
    first = gpvw.translate(formula)
    assert gpvw.translate(formula) is first
    fresh = gpvw.translate(formula, use_cache=False)
    assert fresh is not first
    gpvw.clear_translation_cache()
    assert gpvw.translate(formula) is not first


def test_acceptance_set_order_is_run_stable():
    """The golden fingerprints canonicalise acceptance-set order away, so
    pin it separately: the *ordered* acceptance structure (which drives
    degeneralization and hence the synthesis engines) must be identical
    across processes with different hash seeds."""
    program = (
        "from repro.logic.parser import parse;"
        "from repro.automata.gpvw import translate;"
        "a = translate(parse('(F a) && (F b) && (c U d) && (x U y)'), use_cache=False);"
        "print([sorted(s) for s in a.accepting_sets])"
    )
    outputs = set()
    for seed in ("0", "4242", "random"):
        result = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            cwd=Path(__file__).parent.parent,
        )
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1, f"acceptance-set order varies across runs: {outputs}"


def test_degeneralize_is_memoised():
    automaton = gpvw.translate(parse("(F a) && (F b)"), use_cache=False)
    assert automaton.degeneralize() is automaton.degeneralize()


def test_component_cache_reuses_outcomes():
    from repro.synthesis import realizability

    realizability.clear_caches()
    formulas = [parse("G (a -> X b)"), parse("G (c -> F d)")]
    first = realizability.check_realizability(formulas, ["a", "c"], ["b", "d"])
    size_after_first = realizability.component_cache_info()[0]
    assert size_after_first >= 1
    second = realizability.check_realizability(formulas, ["a", "c"], ["b", "d"])
    assert second.verdict is first.verdict
    assert realizability.component_cache_info()[0] == size_after_first


# ---------------------------------------------------------------------------
# Golden automata: byte-identical to the pre-interning seed


def _canonical(automaton) -> dict:
    transitions = sorted(
        (src, str(label), dst)
        for src, edges in automaton.transitions.items()
        for (label, dst) in edges
    )
    accepting = sorted(sorted(s) for s in automaton.accepting_sets)
    return {
        "num_states": automaton.num_states,
        "initial": sorted(automaton.initial),
        "transitions": transitions,
        "accepting": accepting,
        "atoms": sorted(automaton.atoms),
    }


def _fingerprint(formula: Formula) -> str:
    doc = _canonical(gpvw.translate(formula))
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _golden_cases():
    data = json.loads(GOLDEN_PATH.read_text())
    for group, entries in sorted(data.items()):
        for text, digest in sorted(entries.items()):
            yield group, text, digest


@pytest.mark.parametrize(
    "group,text,digest",
    list(_golden_cases()),
    ids=[f"{g}:{t[:40]}" for g, t, _ in _golden_cases()],
)
def test_translate_matches_seed_golden(group, text, digest):
    """The automata recorded from the seed (pre-interning) implementation
    must be reproduced exactly, state numbering included."""
    assert _fingerprint(parse(text)) == digest
