"""Tests for the case-study corpora and the requirement generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.casestudies import (
    COMPONENT_DESCRIPTORS,
    GOLD_FORMULAS,
    MODE_SWITCHING_REQUIREMENTS,
    application_requirements,
    component_requirements,
    generate,
    noun_pool,
    robot_requirements,
)
from repro.casestudies.generator import ComponentDescriptor
from repro.logic import parse
from repro.nlp import parse_sentence
from repro.translate import TranslationOptions, Translator


class TestCorpusWellFormed:
    def test_mode_switching_is_parseable(self):
        for identifier, text in MODE_SWITCHING_REQUIREMENTS:
            parse_sentence(text)  # raises on grammar violations

    def test_gold_formulas_are_parseable(self):
        for identifier, text in GOLD_FORMULAS.items():
            parse(text)

    def test_gold_covers_every_requirement(self):
        identifiers = {identifier for identifier, _ in MODE_SWITCHING_REQUIREMENTS}
        assert identifiers == set(GOLD_FORMULAS)

    def test_thirty_requirements(self):
        assert len(MODE_SWITCHING_REQUIREMENTS) == 30

    def test_all_generated_corpora_parse(self):
        for requirements in component_requirements().values():
            for _, text in requirements:
                parse_sentence(text)
        for requirements in application_requirements().values():
            for _, text in requirements:
                parse_sentence(text)


class TestGenerator:
    def descriptor(self, formulas=8, inputs=3, outputs=5):
        return ComponentDescriptor(
            name="demo",
            num_formulas=formulas,
            input_nouns=noun_pool("in line", inputs, ("alpha sensor", "beta sensor")),
            output_nouns=noun_pool("out action", outputs, ("gamma report",)),
        )

    def test_formula_count_exact(self):
        requirements = generate(self.descriptor())
        assert len(requirements) == 8

    def test_deterministic(self):
        assert generate(self.descriptor()) == generate(self.descriptor())

    def test_scale_reached_after_translation(self):
        translator = Translator(options=TranslationOptions(next_as_x=False))
        spec = translator.translate(generate(self.descriptor()))
        assert spec.num_inputs == 3
        assert spec.num_outputs == 5

    def test_more_outputs_than_formulas(self):
        descriptor = self.descriptor(formulas=4, inputs=2, outputs=7)
        translator = Translator(options=TranslationOptions(next_as_x=False))
        spec = translator.translate(generate(descriptor))
        assert spec.num_outputs == 7

    def test_more_inputs_than_formulas(self):
        descriptor = self.descriptor(formulas=4, inputs=7, outputs=3)
        translator = Translator(options=TranslationOptions(next_as_x=False))
        spec = translator.translate(generate(descriptor))
        assert spec.num_inputs == 7

    def test_impossible_scales_rejected(self):
        with pytest.raises(ValueError):
            self.descriptor(formulas=3, inputs=7, outputs=1)
        with pytest.raises(ValueError):
            self.descriptor(formulas=3, inputs=1, outputs=7)

    @given(
        st.integers(2, 12),
        st.integers(1, 8),
        st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_scales(self, formulas, inputs, outputs):
        if 2 * formulas < inputs or 2 * formulas < outputs:
            return
        descriptor = self.descriptor(formulas, inputs, outputs)
        translator = Translator(options=TranslationOptions(next_as_x=False))
        spec = translator.translate(generate(descriptor))
        assert len(spec.requirements) == formulas
        assert spec.num_inputs == inputs
        assert spec.num_outputs == outputs

    def test_descriptor_scales_are_table1(self):
        expected = {
            "1": (20, 9, 14),
            "3.2": (56, 12, 20),
        }
        table = dict(COMPONENT_DESCRIPTORS)
        for row, (formulas, inputs, outputs) in expected.items():
            descriptor = table[row]
            assert descriptor.num_formulas == formulas
            assert len(descriptor.input_nouns) == inputs
            assert len(descriptor.output_nouns) == outputs


class TestRobotGenerator:
    def test_table_scales(self):
        assert len(robot_requirements(1, 4)) == 9
        assert len(robot_requirements(1, 9)) == 14
        assert len(robot_requirements(2, 5)) == 25

    def test_mutex_only_with_two_robots(self):
        single = robot_requirements(1, 4)
        assert not any(ident.startswith("mutex") for ident, _ in single)
        double = robot_requirements(2, 5)
        assert sum(ident.startswith("mutex") for ident, _ in double) == 5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            robot_requirements(0, 4)
        with pytest.raises(ValueError):
            robot_requirements(1, 1)

    def test_all_sentences_parse(self):
        for robots, rooms in [(1, 4), (2, 5), (3, 6)]:
            for _, text in robot_requirements(robots, rooms):
                parse_sentence(text)


class TestCLI:
    def test_check_command(self, tmp_path, capsys):
        from repro.__main__ import main

        document = tmp_path / "spec.txt"
        document.write_text(
            "If the button is pressed, the lamp is activated.\n"
            "If the cover is open, the lamp is not activated.\n"
        )
        code = main(["check", str(document), "--ltl"])
        output = capsys.readouterr().out
        assert code == 0
        assert "verdict: realizable" in output
        assert "translated LTL" in output

    def test_check_inconsistent_exit_code(self, tmp_path, capsys):
        from repro.__main__ import main

        document = tmp_path / "bad.txt"
        document.write_text(
            "The valve is opened.\nThe valve is not opened.\n"
        )
        code = main(["check", str(document)])
        assert code == 1
        assert "unrealizable" in capsys.readouterr().out

    def test_tree_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        document = tmp_path / "spec.txt"
        document.write_text("If the button is pressed, the lamp is activated.\n")
        main(["check", str(document), "--tree"])
        assert "subordinator: if" in capsys.readouterr().out
