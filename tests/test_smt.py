"""Tests for bit-vectors, bit-blasting and the time-abstraction optimiser."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import solve
from repro.smt import (
    BitVecBuilder,
    Sign,
    TimeAbstractionProblem,
    gcd_reduction,
    solve_bitblast,
    solve_reference,
)


def eval_with(builder: BitVecBuilder, assertions=()):
    for lit in assertions:
        builder.require(lit)
    result = solve(builder.cnf)
    assert result
    return result.model


class TestBitVec:
    def test_constant_roundtrip(self):
        builder = BitVecBuilder()
        vector = builder.constant(42, 8)
        model = eval_with(builder)
        assert builder.decode(vector, model) == 42

    def test_constant_too_wide_rejected(self):
        builder = BitVecBuilder()
        with pytest.raises(ValueError):
            builder.constant(256, 8)
        with pytest.raises(ValueError):
            builder.constant(-1, 8)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_add(self, a, b):
        builder = BitVecBuilder()
        result = builder.add(builder.constant(a, 8), builder.constant(b, 8))
        model = eval_with(builder)
        assert builder.decode(result, model) == a + b

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=25, deadline=None)
    def test_multiply(self, a, b):
        builder = BitVecBuilder()
        result = builder.multiply(builder.constant(a, 6), builder.constant(b, 6))
        model = eval_with(builder)
        assert builder.decode(result, model) == a * b

    @given(st.integers(0, 127), st.integers(0, 127))
    @settings(max_examples=25, deadline=None)
    def test_comparisons(self, a, b):
        builder = BitVecBuilder()
        va, vb = builder.constant(a, 7), builder.constant(b, 7)
        lt = builder.less_than(va, vb)
        le = builder.less_equal(va, vb)
        eq = builder.equal(va, vb)
        model = eval_with(builder)

        def truth(lit):
            value = model[abs(lit)]
            return value if lit > 0 else not value

        assert truth(lt) == (a < b)
        assert truth(le) == (a <= b)
        assert truth(eq) == (a == b)

    def test_solve_for_variable(self):
        builder = BitVecBuilder()
        x = builder.variable("x", 8)
        product = builder.multiply(x, builder.constant(6, 4))
        builder.require_equal(product, builder.constant(42, 8))
        model = eval_with(builder)
        assert builder.decode(x, model) == 7

    def test_sum_all(self):
        builder = BitVecBuilder()
        total = builder.sum_all([builder.constant(v, 5) for v in (3, 7, 11)])
        model = eval_with(builder)
        assert builder.decode(total, model) == 21

    def test_extend_cannot_shrink(self):
        builder = BitVecBuilder()
        with pytest.raises(ValueError):
            builder.extend(builder.constant(3, 4), 2)


class TestGCDReduction:
    def test_paper_example(self):
        # Req-08/28/42: lengths 3, 180, 60 -> GCD 3 -> scaled 1, 60, 20.
        solution = gcd_reduction([3, 180, 60])
        assert solution.divisor == 3
        assert solution.scaled == (1, 60, 20)
        assert solution.cost_error == 0

    def test_coprime(self):
        solution = gcd_reduction([4, 9])
        assert solution.divisor == 1
        assert solution.scaled == (4, 9)

    def test_empty(self):
        assert gcd_reduction([]).cost_next == 0


class TestProblemValidation:
    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            TimeAbstractionProblem.of([3, 3], 1)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            TimeAbstractionProblem.of([0, 2], 1)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            TimeAbstractionProblem.of([3], -1)

    def test_sign_arity_checked(self):
        with pytest.raises(ValueError):
            TimeAbstractionProblem.of([3, 6], 1, signs=[Sign.EARLY])


class TestReferenceSolver:
    def test_paper_running_example(self):
        # Theta = {3, 180, 60}, Delta_i >= 0, B = 5  =>  d = 60,
        # theta' = (0, 3, 1), Delta = (3, 0, 0)   (Section IV-E).
        problem = TimeAbstractionProblem.of([3, 180, 60], 5)
        solution = solve_reference(problem)
        assert solution.divisor == 60
        assert solution.scaled == (0, 3, 1)
        assert solution.errors == (3, 0, 0)
        assert solution.cost_next == 4
        assert solution.cost_error == 3

    def test_zero_budget_falls_back_to_divisors(self):
        problem = TimeAbstractionProblem.of([3, 180, 60], 0)
        solution = solve_reference(problem)
        assert solution.cost_error == 0
        assert solution.divisor == 3  # the GCD is optimal with no slack
        assert solution.scaled == (1, 60, 20)

    def test_late_sign(self):
        problem = TimeAbstractionProblem.of(
            [5, 10], 5, signs=[Sign.LATE, Sign.LATE]
        )
        solution = solve_reference(problem)
        assert all(error <= 0 for error in solution.errors)

    def test_either_sign_at_least_as_good(self):
        early = solve_reference(TimeAbstractionProblem.of([7, 9], 3))
        either = solve_reference(
            TimeAbstractionProblem.of([7, 9], 3, signs=[Sign.EITHER, Sign.EITHER])
        )
        assert (either.cost_next, either.cost_error) <= (
            early.cost_next,
            early.cost_error,
        )

    def test_single_theta_collapses_to_zero(self):
        problem = TimeAbstractionProblem.of([4], 4)
        solution = solve_reference(problem)
        # d = 5 (or anything > 4) gives theta' = 0 with Delta = 4 <= B.
        assert solution.cost_next == 0

    @given(
        st.lists(st.integers(1, 40), min_size=1, max_size=4, unique=True),
        st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_solution_is_wellformed(self, thetas, bound):
        problem = TimeAbstractionProblem.of(thetas, bound)
        solution = solve_reference(problem)
        solution.check(problem)  # raises on violation

    @given(
        st.lists(st.integers(1, 30), min_size=1, max_size=3, unique=True),
        st.integers(0, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_never_worse_than_gcd(self, thetas, bound):
        problem = TimeAbstractionProblem.of(thetas, bound)
        solution = solve_reference(problem)
        baseline = gcd_reduction(thetas)
        assert solution.cost_next <= baseline.cost_next


class TestBitblastSolver:
    def test_paper_running_example(self):
        problem = TimeAbstractionProblem.of([3, 180, 60], 5)
        solution = solve_bitblast(problem)
        assert solution.cost_next == 4
        assert solution.cost_error == 3
        solution.check(problem)

    @pytest.mark.parametrize(
        "thetas,bound,signs",
        [
            ([3, 6], 0, None),
            ([4, 7], 2, None),
            ([5, 10, 15], 3, None),
            ([5, 9], 4, [Sign.LATE, Sign.LATE]),
            ([6, 11], 3, [Sign.EITHER, Sign.EITHER]),
            ([13], 2, None),
        ],
    )
    def test_agrees_with_reference(self, thetas, bound, signs):
        problem = TimeAbstractionProblem.of(thetas, bound, signs=signs)
        reference = solve_reference(problem)
        bitblast = solve_bitblast(problem)
        assert (bitblast.cost_next, bitblast.cost_error) == (
            reference.cost_next,
            reference.cost_error,
        )
        bitblast.check(problem)

    def test_bound_exceeding_error_sum_width(self):
        # Regression: thetas=[1] gives a 2-bit error sum, and a budget of 4
        # used to overflow the constant instead of being treated as vacuous.
        problem = TimeAbstractionProblem.of([1], 4)
        reference = solve_reference(problem)
        bitblast = solve_bitblast(problem)
        assert (bitblast.cost_next, bitblast.cost_error) == (
            reference.cost_next,
            reference.cost_error,
        )

    @given(
        st.lists(st.integers(1, 20), min_size=1, max_size=3, unique=True),
        st.integers(0, 6),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_agreement(self, thetas, bound):
        problem = TimeAbstractionProblem.of(thetas, bound)
        reference = solve_reference(problem)
        bitblast = solve_bitblast(problem)
        assert (bitblast.cost_next, bitblast.cost_error) == (
            reference.cost_next,
            reference.cost_error,
        )
