"""Differential suites for the incremental synthesis engines.

Two new reference seams, same discipline as ``propagation="scan"`` and
``exploration="concrete"``:

* ``encoding="fresh"`` — the from-scratch bounded-synthesis encoding the
  persistent :class:`IncrementalBoundedSynthesizer` must agree with:
  identical verdicts at every step of any monotone bound-growth schedule,
  extracted ``MealyMachine``s byte-identical (both paths canonicalize the
  SAT model), and every machine independently verified against the
  specification.

* ``solving="offline"`` — the full-exploration + post-hoc-fixpoint safety
  game the on-the-fly attractor must agree with: identical verdicts,
  losing regions and machines, with ``positions_pruned > 0`` evidencing
  the early abort on unrealizable-at-bound games.

The Hypothesis schedules are derandomized so CI is deterministic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.buchi import BuchiAutomaton, Label
from repro.logic import parse
from repro.synthesis import (
    Engine,
    IncrementalBoundedSynthesizer,
    SynthesisLimits,
    check_realizability,
    satisfies_specification,
    solve_automaton,
    solve_safety_game,
)

DETERMINISTIC = settings(max_examples=30, deadline=None, derandomize=True)

#: (text, inputs, outputs) — a mix of realizable, unrealizable-with-dual
#: and unsatisfiable specifications.
SPECS = [
    ("G (r -> X g)", ["r"], ["g"]),
    ("G (r -> F g)", ["r"], ["g"]),
    ("G (g <-> X X i)", ["i"], ["g"]),
    ("G (X g <-> (a || b))", ["a", "b"], ["g"]),
    ("G (r -> X (g || X g)) && G (!r -> X !g)", ["r"], ["g"]),
    ("F g && G !g", [], ["g"]),
]

#: Monotone num_states schedules: cumulative growth steps from 1.
schedules = st.lists(
    st.integers(min_value=0, max_value=2), min_size=1, max_size=4
).map(lambda steps: [1 + sum(steps[: i + 1]) for i in range(len(steps))])

spec_indices = st.integers(min_value=0, max_value=len(SPECS) - 1)


class TestIncrementalVsFresh:
    @given(spec_indices, schedules)
    @DETERMINISTIC
    def test_bound_schedules_agree(self, index, schedule):
        text, inputs, outputs = SPECS[index]
        specification = parse(text)
        incremental = IncrementalBoundedSynthesizer.for_system(
            specification, inputs, outputs
        )
        fresh = IncrementalBoundedSynthesizer.for_system(
            specification, inputs, outputs, encoding="fresh"
        )
        for num_states in schedule:
            a = incremental.solve(num_states)
            b = fresh.solve(num_states)
            assert a.realizable == b.realizable, (text, num_states)
            assert a.num_states == b.num_states
            assert a.annotation_bound == b.annotation_bound
            if a.realizable:
                # Byte-identical canonical machines, independently checked.
                assert a.machine.transitions == b.machine.transitions
                assert a.machine.describe() == b.machine.describe()
                a.machine.check_total()
                assert satisfies_specification(a.machine, specification), text
            else:
                assert a.machine is None and b.machine is None

    @given(spec_indices, schedules)
    @DETERMINISTIC
    def test_environment_schedules_agree(self, index, schedule):
        text, inputs, outputs = SPECS[index]
        specification = parse(text)
        incremental = IncrementalBoundedSynthesizer.for_environment(
            specification, inputs, outputs
        )
        fresh = IncrementalBoundedSynthesizer.for_environment(
            specification, inputs, outputs, encoding="fresh"
        )
        for num_states in schedule:
            a = incremental.solve(num_states)
            b = fresh.solve(num_states)
            assert a.realizable == b.realizable, (text, num_states)
            if a.realizable:
                assert a.machine.transitions == b.machine.transitions
                assert a.machine.describe() == b.machine.describe()

    def test_growing_annotation_bound_alone(self):
        specification = parse("G (g <-> X X i)")
        incremental = IncrementalBoundedSynthesizer.for_system(
            specification, ["i"], ["g"]
        )
        fresh = IncrementalBoundedSynthesizer.for_system(
            specification, ["i"], ["g"], encoding="fresh"
        )
        for num_states, bound in [(1, 2), (1, 3), (2, 3), (2, 5), (3, 5)]:
            a = incremental.solve(num_states, bound)
            b = fresh.solve(num_states, bound)
            assert a.realizable == b.realizable, (num_states, bound)

    def test_incremental_stats_report_reuse(self):
        specification = parse("F g && G !g")
        incremental = IncrementalBoundedSynthesizer.for_system(
            specification, [], ["g"]
        )
        first = incremental.solve(1)
        second = incremental.solve(2)
        assert first.solver_stats["incremental_solves"] >= 1
        assert second.solver_stats["incremental_solves"] >= 1
        assert second.solver_stats["clauses_added"] > 0
        # The fresh reference reports no reuse by construction.
        fresh = IncrementalBoundedSynthesizer.for_system(
            specification, [], ["g"], encoding="fresh"
        )
        result = fresh.solve(2)
        assert result.solver_stats["incremental_solves"] == 0
        assert result.solver_stats["learnt_carried"] == 0

    def test_shrinking_bounds_rejected(self):
        specification = parse("G (r -> X g)")
        incremental = IncrementalBoundedSynthesizer.for_system(
            specification, ["r"], ["g"]
        )
        incremental.solve(2)
        with pytest.raises(ValueError):
            incremental.solve(1)
        with pytest.raises(ValueError):
            incremental.solve(2, annotation_bound=1)

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            IncrementalBoundedSynthesizer.for_system(
                parse("G g"), [], ["g"], encoding="clever"
            )


class TestOnTheFlyVsOffline:
    GAME_SPECS = [
        ("G (r -> X g)", ["r"], ["g"], [1, 2]),
        ("G (r -> F g)", ["r"], ["g"], [1, 2]),
        ("G (g <-> X X i)", ["i"], ["g"], [1, 2, 3]),
        ("G (r -> F g) && G (c -> !g)", ["r", "c"], ["g"], [1, 2, 3]),
        ("G F g && G (g -> X !g)", [], ["g"], [1, 2]),
        ("F g && G !g", [], ["g"], [1, 2]),
        ("G (r -> X X X X b)", ["r"], ["b"], [1, 2, 3]),
    ]

    @pytest.mark.parametrize("text,inputs,outputs,bounds", GAME_SPECS)
    def test_verdicts_and_machines_agree(self, text, inputs, outputs, bounds):
        for bound in bounds:
            onthefly = solve_safety_game(
                parse(text), inputs, outputs, bound=bound
            )
            offline = solve_safety_game(
                parse(text), inputs, outputs, bound=bound, solving="offline"
            )
            assert onthefly.realizable == offline.realizable, (text, bound)
            assert offline.stats["positions_pruned"] == 0
            if onthefly.realizable:
                # No abort on realizable games: identical graphs, losing
                # regions and byte-identical extracted machines.
                assert onthefly.stats["positions_pruned"] == 0
                assert (
                    onthefly.positions_explored == offline.positions_explored
                )
                assert (
                    onthefly.stats["losing_positions"]
                    == offline.stats["losing_positions"]
                )
                assert (
                    onthefly.machine.transitions == offline.machine.transitions
                )
                assert onthefly.machine.describe() == offline.machine.describe()
            else:
                assert (
                    onthefly.positions_explored <= offline.positions_explored
                )
                assert (
                    onthefly.stats["letters_enumerated"]
                    <= offline.stats["letters_enumerated"]
                )

    def test_early_abort_prunes_positions(self):
        # Unrealizable at this bound: the run must abandon worklist
        # positions and enumerate strictly fewer letters than offline.
        onthefly = solve_safety_game(parse("G (r -> X X X X b)"), ["r"], ["b"], bound=3)
        offline = solve_safety_game(
            parse("G (r -> X X X X b)"), ["r"], ["b"], bound=3, solving="offline"
        )
        assert not onthefly.realizable and not offline.realizable
        assert onthefly.stats["positions_pruned"] > 0
        assert onthefly.positions_explored < offline.positions_explored
        assert (
            onthefly.stats["letters_enumerated"]
            < offline.stats["letters_enumerated"]
        )

    def test_case_study_components_equivalent(self):
        """Table I case studies: every explicitly checkable component's
        game agrees between on-the-fly and offline solving."""
        from repro.casestudies import (
            MODE_SWITCHING_REQUIREMENTS,
            application_requirements,
            robot_requirements,
        )
        from repro.logic.ast import atoms, conj
        from repro.synthesis import decompose
        from repro.translate import TranslationOptions, Translator

        translator = Translator(options=TranslationOptions(next_as_x=False))
        studies = [
            ("cara", list(MODE_SWITCHING_REQUIREMENTS)[:10]),
            ("telepromise", next(iter(sorted(application_requirements().items())))[1]),
            ("robot", robot_requirements(2, 3)),
        ]
        compared = 0
        for name, requirements in studies:
            spec = translator.translate(requirements)
            inputs = frozenset(spec.partition.inputs)
            outputs = frozenset(spec.partition.outputs)
            for component in decompose(list(spec.formulas)):
                specification = conj(component.formulas)
                if len(atoms(specification)) > 8:
                    continue
                local_inputs = sorted(component.variables & inputs)
                local_outputs = sorted(component.variables & outputs)
                onthefly = solve_safety_game(
                    specification, local_inputs, local_outputs, bound=2
                )
                offline = solve_safety_game(
                    specification, local_inputs, local_outputs, bound=2,
                    solving="offline",
                )
                assert onthefly.realizable == offline.realizable, (name, component)
                assert (
                    onthefly.stats["losing_positions"]
                    == offline.stats["losing_positions"]
                ) or not onthefly.realizable, (name, component)
                if onthefly.realizable:
                    assert (
                        onthefly.machine.transitions
                        == offline.machine.transitions
                    ), (name, component)
                compared += 1
        assert compared >= 3

    def test_unknown_solving_mode_rejected(self):
        with pytest.raises(ValueError):
            solve_safety_game(parse("G g"), [], ["g"], solving="psychic")


class TestAutomatonSeam:
    def test_no_accepting_sets_is_plain_safety(self):
        # Regression: an automaton without accepting sets used to crash
        # on accepting_sets[0]; it must solve as a plain safety game.
        automaton = BuchiAutomaton(atoms=frozenset({"g"}))
        state = automaton.new_state()
        automaton.initial = {state}
        automaton.add_transition(state, Label.of(pos=["g"]), state)
        result = solve_automaton(automaton, [], ["g"], bound=1)
        assert result.realizable
        result.machine.check_total()

    def test_no_accepting_sets_offline_agrees(self):
        automaton = BuchiAutomaton(atoms=frozenset({"g"}))
        state = automaton.new_state()
        automaton.initial = {state}
        automaton.add_transition(state, Label.of(pos=["g"]), state)
        onthefly = solve_automaton(automaton, [], ["g"], bound=1)
        offline = solve_automaton(automaton, [], ["g"], bound=1, solving="offline")
        assert onthefly.realizable == offline.realizable
        assert onthefly.machine.describe() == offline.machine.describe()


class TestDriverEquivalence:
    CASES = [
        ("G (r -> X g)", ["r"], ["g"]),
        ("G (r -> F g)", ["r"], ["g"]),
        ("G (g <-> X X i)", ["i"], ["g"]),
        ("G (r -> g) && G (r -> !g)", ["r"], ["g"]),
        ("F g && G !g", [], ["g"]),
    ]

    @pytest.mark.parametrize("engine", [Engine.SAFETY_GAME, Engine.BOUNDED_SAT])
    @pytest.mark.parametrize("text,inputs,outputs", CASES)
    def test_reference_knobs_do_not_change_verdicts(
        self, engine, text, inputs, outputs
    ):
        fast = check_realizability(
            [parse(text)], inputs, outputs, engine=engine,
            limits=SynthesisLimits(use_obligations=False),
        )
        reference = check_realizability(
            [parse(text)], inputs, outputs, engine=engine,
            limits=SynthesisLimits(
                use_obligations=False,
                encoding="fresh",
                game_solving="offline",
            ),
        )
        assert fast.verdict is reference.verdict, (engine, text)

    def test_driver_records_new_counters(self):
        from repro.synthesis import synthesis_stats
        from repro.synthesis.realizability import clear_caches

        clear_caches()
        check_realizability(
            [parse("G (g <-> X X i)")], ["i"], ["g"],
            engine=Engine.BOUNDED_SAT,
            limits=SynthesisLimits(use_obligations=False),
        )
        stats = synthesis_stats()
        assert stats["sat_incremental_solves"] > 0
        clear_caches()
        check_realizability(
            [parse("G (r -> X X X X b)")], ["r"], ["b"],
            limits=SynthesisLimits(use_obligations=False),
        )
        assert synthesis_stats()["game_positions_pruned"] > 0
