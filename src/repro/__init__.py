"""SpecCC — formal consistency checking over specifications in natural
languages.

A from-scratch reproduction of Yan, Cheng, Zhang & Chai (DATE 2015): a
structured-English-to-LTL translator with semantic reasoning and time
abstraction, an LTL synthesis back end for realizability-based consistency
checking, and the heuristic refinement loop connecting them.

Quickstart::

    from repro import SpecCC

    tool = SpecCC()
    report = tool.check_document(
        '''
        When the button is pressed, eventually the door is opened.
        If the alarm is active, the door is not opened.
        '''
    )
    print(report.summary())
"""

from .core.graph import AnalysisGraph, shared_graph
from .core.pipeline import ConsistencyReport, SpecCC, SpecCCConfig
from .logic import parse as parse_ltl
from .service import BatchChecker, SessionReport, SpecSession, WorkerPool
from .synthesis.realizability import Engine, SynthesisLimits, Verdict
from .translate.semantics import SemanticsDelta
from .translate.templates import TranslationOptions
from .translate.timeabs import AbstractionMethod
from .translate.translator import Translator

__version__ = "1.3.0"

__all__ = [
    "AbstractionMethod",
    "AnalysisGraph",
    "BatchChecker",
    "ConsistencyReport",
    "Engine",
    "SemanticsDelta",
    "SessionReport",
    "SpecCC",
    "SpecCCConfig",
    "SpecSession",
    "SynthesisLimits",
    "TranslationOptions",
    "Translator",
    "Verdict",
    "WorkerPool",
    "parse_ltl",
    "shared_graph",
    "__version__",
]
