"""Durable sessions: a per-session write-ahead journal with
crash-consistent recovery.

Every :class:`~repro.service.session.SpecSession` the serving tier holds
lives purely in memory, so before this module a crash or restart of
``serve``/``serve --async``/``serve --tcp`` threw away every client's
session and forced full cold re-analysis of every open document.  The
journal makes session state *durable and replayable*:

* **Append-only record log.**  Each session mutation (``add`` /
  ``update`` / ``remove`` / ``load`` / ``reset``) and each completed
  ``check`` is one framed JSON record appended to
  ``<dir>/<token>.journal`` *before* the acknowledgement leaves the
  server.  Framing is ``LLLLLLLL CCCCCCCC <payload>\\n`` — payload byte
  length and CRC32 in fixed-width hex — so a torn tail (the record a
  crash interrupted mid-write) is *detected*, counted, and truncated at
  the last valid record boundary, never silently replayed.
* **Replay on restart.**  Analysis is deterministic and reports are
  canonical, so replaying a journal through a fresh
  :class:`SpecSession` — re-applying the mutations and re-running the
  journaled checks — reproduces byte-identical
  :class:`~repro.service.session.SessionReport`\\ s to the uninterrupted
  run.  The replayed prefix is exactly the acknowledged prefix (plus at
  most one durable-but-unacknowledged record, which rid-based
  deduplication makes safe to retry — see below).
* **Snapshot compaction.**  Unbounded edit histories must not mean
  unbounded journals or unbounded replay: once ``compact_every``
  records have accumulated, the journal is rewritten (write a temporary
  file, fsync, atomic rename) as one ``snapshot`` record holding the
  document as of the last check plus the session's revision.  Replaying
  a snapshot loads the document and re-runs *one* check to rebuild the
  delta-tracking baseline (deterministic, hence identical to the state
  the uninterrupted session carried), so recovery cost is one check
  plus the post-snapshot tail regardless of history length.
  Compaction only happens at check boundaries (no pending edits), which
  keeps the snapshot vocabulary minimal.
* **Exactly-once edits.**  Mutation records carry the client's integer
  ``rid`` when one is present, and the journal tracks the largest
  applied rid.  A client that retries its last edit after a crash (the
  classic append-happened/ack-lost window) is answered
  ``"duplicate": true`` instead of having the edit applied twice — the
  ``attach`` op returns ``last_rid`` so clients can resynchronise.

**Fsync policy** (the durability/latency trade):  ``"always"`` fsyncs
every append (an acknowledged edit survives power loss), ``"interval:N"``
fsyncs every N appends (a crash may lose the last <N acknowledged
records — the OS page cache still survives *process* death), ``"never"``
only flushes to the OS (fastest; survives process crashes, not kernel
ones).  Snapshots and close are always fsynced.

**Fault points.**  The deterministic fault machinery
(:mod:`repro.service.faults`) reaches into the append path:
``journal_crash`` kills the process *after* the record is durable but
*before* the acknowledgement (the retry/dedupe window), ``journal_torn``
writes half a record and kills the process (the torn-tail window the
CRC framing exists for).

Observability: a ``journal`` metrics namespace (appends, fsyncs,
compactions, replayed records, truncated tails, recovered sessions,
duplicate acks) and ``journal.append`` / ``journal.replay`` spans.
"""

from __future__ import annotations

import json
import os
import re
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..obs.trace import span as _obs_span
from .session import SpecSession

#: Journal file suffix under the store directory.
JOURNAL_SUFFIX = ".journal"

#: ``LLLLLLLL CCCCCCCC `` — 8 hex chars payload length, space, 8 hex
#: chars CRC32, space.  Fixed width so the reader can frame without
#: scanning, and human-greppable so an operator can eyeball a journal.
_HEADER_BYTES = 18

#: Durable session tokens become file names: constrain them hard so a
#: hostile client cannot traverse paths or collide with temp files.
_TOKEN_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: The counter names every store exposes (see :meth:`JournalStore.stats`).
_COUNTER_NAMES = (
    "appends",
    "fsyncs",
    "compactions",
    "replayed_records",
    "truncated_tails",
    "recovered_sessions",
    "duplicates",
)


def validate_token(token: str) -> str:
    """*token* if it is a safe durable-session token, else ``ValueError``."""
    if not _TOKEN_RE.match(token):
        raise ValueError(
            f"invalid session token {token!r}: use 1-64 characters from "
            "[A-Za-z0-9._-], not starting with '.'"
        )
    return token


def frame_record(record: dict) -> bytes:
    """One record as its on-disk bytes: length + CRC32 header, payload,
    newline.  The payload is compact sorted-key JSON, so identical
    records frame to identical bytes."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return (
        f"{len(payload):08x} {zlib.crc32(payload) & 0xFFFFFFFF:08x} ".encode("ascii")
        + payload
        + b"\n"
    )


def read_records(data: bytes) -> Tuple[List[dict], int, bool]:
    """Parse framed *data* into ``(records, valid_bytes, torn)``.

    Stops at the first frame that fails any check — short header,
    non-hex header, payload shorter than its declared length, missing
    terminating newline, CRC mismatch, unparsable JSON — and reports
    the byte offset of the last *valid* record boundary, which is where
    a recovering store truncates.  Everything before that boundary is a
    consistent acknowledged-or-in-flight prefix; everything after is a
    torn write and must never be replayed.
    """
    records: List[dict] = []
    offset = 0
    while offset < len(data):
        header = data[offset : offset + _HEADER_BYTES]
        if len(header) < _HEADER_BYTES:
            return records, offset, True
        try:
            if header[8:9] != b" " or header[17:18] != b" ":
                raise ValueError("bad header separators")
            length = int(header[0:8], 16)
            crc = int(header[9:17], 16)
        except ValueError:
            return records, offset, True
        end = offset + _HEADER_BYTES + length
        payload = data[offset + _HEADER_BYTES : end]
        if len(payload) < length or data[end : end + 1] != b"\n":
            return records, offset, True
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return records, offset, True
        try:
            record = json.loads(payload.decode("utf-8"))
        except ValueError:
            return records, offset, True
        if not isinstance(record, dict):
            return records, offset, True
        records.append(record)
        offset = end + 1
    return records, offset, False


@dataclass
class DurableSession:
    """One durable session: the live :class:`SpecSession`, its journal,
    and the resume bookkeeping the ``attach`` handshake returns."""

    token: str
    session: SpecSession
    journal: "SessionJournal"
    #: Largest integer rid a journaled record has carried; the
    #: exactly-once watermark ``attach`` hands back to clients.
    last_rid: Optional[int] = None
    #: Records replayed to rebuild this session (0 for fresh sessions).
    replayed_records: int = 0


class SessionJournal:
    """The append-only record log of one durable session."""

    def __init__(self, store: "JournalStore", token: str) -> None:
        self.store = store
        self.token = token
        self.path = store.directory / f"{token}{JOURNAL_SUFFIX}"
        self._file = open(self.path, "ab")
        self._since_fsync = 0
        #: Records appended since the last snapshot (or creation) — the
        #: compaction trigger compares this against ``compact_every``.
        self.records_since_snapshot = 0

    # ------------------------------------------------------------ writing
    def append(self, record: dict) -> None:
        """Durably append one *record* (write-ahead: callers append
        *before* acknowledging the mutation to the client)."""
        from . import faults

        framed = frame_record(record)
        with _obs_span("journal.append", token=self.token, op=record.get("op")):
            fault = faults.on_journal_append()
            if fault == "torn":
                # The torn-write fault: half a frame reaches the disk,
                # then the process dies.  Recovery must CRC-detect this
                # tail and truncate it — never replay it.
                self._file.write(framed[: max(1, len(framed) // 2)])
                self._file.flush()
                os.fsync(self._file.fileno())
                os._exit(1)
            self._file.write(framed)
            self._file.flush()
            self.store._count("appends")
            self._since_fsync += 1
            if self.store.fsync_every and self._since_fsync >= self.store.fsync_every:
                os.fsync(self._file.fileno())
                self._since_fsync = 0
                self.store._count("fsyncs")
            if fault == "crash":
                # The append-before-ack fault: the record is durable,
                # the acknowledgement never leaves — the window rid
                # deduplication exists for.
                os.fsync(self._file.fileno())
                os._exit(1)
        self.records_since_snapshot += 1

    def sync(self) -> None:
        """Force the journal to disk (drain paths and snapshots)."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self._since_fsync = 0
        self.store._count("fsyncs")

    def should_compact(self) -> bool:
        return (
            self.store.compact_every > 0
            and self.records_since_snapshot >= self.store.compact_every
        )

    def compact(self, session: SpecSession, last_rid: Optional[int]) -> None:
        """Rewrite the journal as one snapshot of *session*.

        Only called at check boundaries (no pending edits), so the
        snapshot is just the document plus the revision counter.  The
        rewrite is crash-consistent: the snapshot goes to a temporary
        file, is fsynced, and atomically renamed over the journal — a
        crash at any point leaves either the old journal or the new
        one, both complete.
        """
        state = session.snapshot_state()
        if state["edited"]:
            raise ValueError("journal compaction requires a checked session")
        record = dict(state)
        record["op"] = "snapshot"
        record["last_rid"] = last_rid
        tmp_path = self.path.with_suffix(".journal.tmp")
        with open(tmp_path, "wb") as tmp:
            tmp.write(frame_record(record))
            tmp.flush()
            os.fsync(tmp.fileno())
        self._file.close()
        os.replace(tmp_path, self.path)
        self._file = open(self.path, "ab")
        self._since_fsync = 0
        self.records_since_snapshot = 0
        self.store._count("compactions")
        self.store._count("fsyncs")

    def close(self) -> None:
        try:
            self.sync()
        except (OSError, ValueError):
            pass
        try:
            self._file.close()
        except OSError:
            pass


class JournalStore:
    """The per-directory registry of durable sessions.

    One store per serving process: the serve entry points create it from
    ``--journal DIR``, recover every journal found in the directory at
    startup, and hand out :class:`DurableSession`\\ s to the ``attach``
    op.  Thread-safe — the async front end journals mutations from the
    event loop and checks from executor threads (serialized per session
    by the session locks; the store only guards its own maps/counters).
    """

    def __init__(
        self,
        directory,
        fsync: str = "always",
        compact_every: int = 256,
    ) -> None:
        """*fsync* is ``"always"``, ``"never"`` or ``"interval:<n>"``
        (fsync every n appends); *compact_every* bounds journal growth
        (records between snapshot compactions; 0 disables compaction).
        """
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_every = self._parse_fsync(fsync)
        self.compact_every = int(compact_every)
        self._lock = threading.Lock()
        self._attached: Dict[str, DurableSession] = {}
        self._counters: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
        from ..obs.metrics import registry

        registry().register_collector("journal", self.stats)

    @staticmethod
    def _parse_fsync(policy: str) -> int:
        if policy == "always":
            return 1
        if policy == "never":
            return 0
        if policy.startswith("interval:"):
            every = int(policy[len("interval:"):])
            if every <= 0:
                raise ValueError(f"fsync interval must be positive: {policy!r}")
            return every
        raise ValueError(
            f"unknown fsync policy {policy!r} "
            "(know 'always', 'never', 'interval:<n>')"
        )

    def _count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    # ----------------------------------------------------------- recovery
    def tokens_on_disk(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                path.name[: -len(JOURNAL_SUFFIX)]
                for path in self.directory.glob(f"*{JOURNAL_SUFFIX}")
            )
        )

    def _read_and_heal(self, path: Path) -> List[dict]:
        """Read a journal, truncating (and counting) any torn tail."""
        data = path.read_bytes()
        records, valid, torn = read_records(data)
        if torn:
            with open(path, "r+b") as fh:
                fh.truncate(valid)
            self._count("truncated_tails")
        return records

    def _replay(self, token: str, records: List[dict]) -> DurableSession:
        """A fresh :class:`SpecSession` rebuilt from *records*.

        Mutations re-apply, journaled checks re-run (analysis is
        deterministic, so the replayed reports are byte-identical to
        the ones the crashed process acknowledged), snapshots restore
        the document and rebuild the delta baseline with one check.
        """
        tool = self._tool
        session = SpecSession(tool)
        last_rid: Optional[int] = None
        with _obs_span("journal.replay", token=token, records=len(records)):
            for record in records:
                op = record.get("op")
                if op == "snapshot":
                    session = SpecSession(tool)
                    session.restore_snapshot(record)
                    if isinstance(record.get("last_rid"), int):
                        last_rid = record["last_rid"]
                elif op == "add":
                    session.add(str(record["id"]), str(record["text"]))
                elif op == "update":
                    session.update(str(record["id"]), str(record["text"]))
                elif op == "remove":
                    session.remove(str(record["id"]))
                elif op == "load":
                    session.load_document(str(record["document"]))
                elif op == "check":
                    session.check()
                elif op == "reset":
                    session = SpecSession(tool)
                else:
                    raise ValueError(
                        f"journal {token!r} holds unknown record op {op!r}"
                    )
                if isinstance(record.get("rid"), int):
                    last_rid = record["rid"]
        self._count("replayed_records", len(records))
        return DurableSession(
            token=token,
            session=session,
            journal=SessionJournal(self, token),
            last_rid=last_rid,
            replayed_records=len(records),
        )

    def recover(self, tool=None) -> Dict[str, DurableSession]:
        """Replay every journal in the directory; idempotent.

        Returns the full token → :class:`DurableSession` map (already
        attached sessions included, not replayed twice).  *tool* is the
        :class:`~repro.core.pipeline.SpecCC` replayed checks run on —
        the same instance the serving loop uses, so recovered sessions
        share its configuration and caches.
        """
        self._tool = tool
        for token in self.tokens_on_disk():
            with self._lock:
                if token in self._attached:
                    continue
            records = self._read_and_heal(self.directory / f"{token}{JOURNAL_SUFFIX}")
            durable = self._replay(token, records)
            with self._lock:
                self._attached[token] = durable
                self._counters["recovered_sessions"] += 1
        with self._lock:
            return dict(self._attached)

    def attach(self, token: str, tool=None) -> DurableSession:
        """The durable session for *token*: already-attached, recovered
        from disk, or freshly created (empty journal)."""
        validate_token(token)
        self._tool = tool
        with self._lock:
            durable = self._attached.get(token)
        if durable is not None:
            return durable
        path = self.directory / f"{token}{JOURNAL_SUFFIX}"
        if path.exists():
            durable = self._replay(token, self._read_and_heal(path))
            recovered = True
        else:
            durable = DurableSession(
                token=token,
                session=SpecSession(tool),
                journal=SessionJournal(self, token),
            )
            recovered = False
        with self._lock:
            if token in self._attached:  # lost a (rare) attach race
                durable.journal.close()
                return self._attached[token]
            self._attached[token] = durable
            if recovered:
                self._counters["recovered_sessions"] += 1
        return durable

    def attached_tokens(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._attached))

    # -------------------------------------------------------- maintenance
    def record_duplicate(self) -> None:
        """Count one deduplicated (exactly-once) retry acknowledgement."""
        self._count("duplicates")

    def sync_all(self) -> None:
        """Fsync every attached journal (graceful-drain paths)."""
        with self._lock:
            journals = [d.journal for d in self._attached.values()]
        for journal in journals:
            journal.sync()

    def close(self) -> None:
        with self._lock:
            journals = [d.journal for d in self._attached.values()]
            self._attached.clear()
        for journal in journals:
            journal.close()

    # ------------------------------------------------------ observability
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def stats(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            attached = len(self._attached)
        return {
            "directory": str(self.directory),
            "fsync": self.fsync_policy,
            "compact_every": self.compact_every,
            "attached_sessions": attached,
            **counters,
        }
