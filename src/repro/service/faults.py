"""Deterministic fault injection for the serving tier.

The supervision layer (:mod:`repro.service.supervision`) exists to
survive worker death, hangs and mid-pipeline exceptions — failure modes
that are miserable to test if they only occur "sometimes".  This module
makes every one of them a *scheduled, reproducible event*: a
:class:`FaultPlan` names exactly which worker misbehaves, on exactly
which task, in exactly which way, and the plan rides into each worker
process through the pool's ordinary initializer.  Two runs with the same
plan (and the same document routing) observe the same faults, so tests
can assert exact restart/retry counters, not just "it recovered".

Fault kinds (:class:`FaultSpec.kind`):

* ``"crash"`` — the worker calls ``os._exit`` at the start of the
  matching task, which the parent observes as ``BrokenProcessPool``.
* ``"delay"`` — the worker sleeps *seconds* before running the matching
  task; with a supervisor task timeout this simulates a hung worker.
* ``"raise"`` — the pipeline raises :class:`FaultInjected` from inside
  the matching task, via the hook point in :mod:`repro.core.pipeline`
  (:func:`repro.core.pipeline.set_fault_hook`) — the "one malformed
  analysis aborts mid-flight" failure mode.
* ``"crash_init"`` — the worker dies *in its initializer*; aimed at
  respawn generations (``min_spawn=1``) it makes every respawn fail,
  which is how the circuit-breaker/degraded path is driven end to end.

Matching is purely positional: shard index, per-worker-lifetime task
ordinal (the first task a freshly spawned worker receives is task 0),
and the worker's spawn generation (0 = the original spawn, incremented
by every supervisor respawn).  Each spec fires at most *times* times per
worker process.  Because task counters restart with the process, specs
normally pin ``max_spawn=0`` so a respawned worker does not re-fire the
fault that killed its predecessor — leaving ``max_spawn=None`` is the
way to spell "this shard is persistently broken".

The plan can also come from the environment (``REPRO_FAULTS``, a JSON
object — see :meth:`FaultPlan.from_env`), so CI soak jobs and the CLI
can inject faults without touching code.  This is the harness pattern
future remote-worker transports are expected to reuse: the transport
changes, the fault vocabulary and determinism contract do not.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Environment variable holding a JSON fault plan (see FaultPlan.from_env).
FAULTS_ENV_VAR = "REPRO_FAULTS"

_KINDS = (
    "crash",
    "delay",
    "raise",
    "crash_init",
    "journal_crash",
    "journal_torn",
)

#: The serving-process kinds that hook the durable-session journal's
#: append path (see :func:`install_journal`) rather than a worker:
#:
#: * ``"journal_crash"`` — the process dies *after* the matching record
#:   is durably appended but *before* the client is acknowledged: the
#:   retry window that rid-based exactly-once deduplication exists for.
#: * ``"journal_torn"`` — only half of the matching record's frame
#:   reaches the disk before the process dies: the torn-tail window the
#:   journal's CRC framing must detect and truncate, never replay.
#:
#: For these kinds ``task`` is the per-process journal *append* ordinal
#: (0-based, across all sessions) and the shard/spawn window is ignored.
_JOURNAL_KINDS = ("journal_crash", "journal_torn")


class FaultInjected(RuntimeError):
    """The exception a ``"raise"`` fault throws inside the pipeline.

    Defined at module level so it pickles cleanly across the worker
    process boundary.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  See the module docstring for the kinds."""

    kind: str
    #: Shard the fault targets; None matches every shard.
    shard: Optional[int] = None
    #: Per-worker-lifetime task ordinal (0-based); None matches every task.
    #: Ignored by ``crash_init`` (which fires before any task exists).
    task: Optional[int] = None
    #: Sleep duration for ``delay`` faults.
    seconds: float = 0.0
    #: How many times this spec may fire per worker process; < 0 = unlimited.
    times: int = 1
    #: Worker spawn-generation window: fire only when
    #: ``min_spawn <= spawn <= max_spawn`` (max_spawn None = unbounded).
    min_spawn: int = 0
    max_spawn: Optional[int] = None
    #: For ``raise`` faults: only fire at this pipeline stage
    #: ("check_translated" / "check_component"); None = first stage reached.
    stage: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (know {_KINDS})")

    def matches_worker(self, shard: int, spawn: int) -> bool:
        if self.shard is not None and self.shard != shard:
            return False
        if spawn < self.min_spawn:
            return False
        if self.max_spawn is not None and spawn > self.max_spawn:
            return False
        return True

    def matches_task(self, task_index: int) -> bool:
        return self.task is None or self.task == task_index


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec`\\ s plus the plan seed.

    The *seed* keys every randomised decision downstream of the plan
    (today: the supervisor's backoff jitter default), so one integer
    reproduces an entire failure scenario.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse ``{"seed": 0, "faults": [{"kind": ..., ...}, ...]}``."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        unknown = set(data) - {"seed", "faults", "specs"}
        if unknown:
            # A typo'd plan silently injecting nothing would defeat the
            # whole point of deterministic fault injection.
            raise ValueError(f"unknown fault plan keys {sorted(unknown)}")
        specs = tuple(
            FaultSpec(**entry)
            for entry in data.get("faults", data.get("specs", ()))
        )
        return cls(specs=specs, seed=int(data.get("seed", 0)))

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [dict(vars(spec)) for spec in self.specs],
            },
            sort_keys=True,
        )

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or None when unset/empty."""
        environ = environ if environ is not None else os.environ  # type: ignore[assignment]
        text = environ.get(FAULTS_ENV_VAR, "").strip()
        if not text:
            return None
        return cls.from_json(text)


# ------------------------------------------------------- worker-side state
@dataclass
class _FaultState:
    plan: FaultPlan
    shard: int
    spawn: int
    task_index: int = -1  # no task started yet (prewarm must not fire faults)
    fired: Dict[int, int] = field(default_factory=dict)

    def _may_fire(self, index: int, spec: FaultSpec) -> bool:
        if not spec.matches_worker(self.shard, self.spawn):
            return False
        if spec.times >= 0 and self.fired.get(index, 0) >= spec.times:
            return False
        return True

    def _mark(self, index: int) -> None:
        self.fired[index] = self.fired.get(index, 0) + 1


_STATE: Optional[_FaultState] = None


def install(plan: Optional[FaultPlan], shard: int, spawn: int) -> None:
    """Arm *plan* in this process (worker initializers call this).

    ``plan=None`` disarms everything — which matters under the fork start
    method, where a worker inherits the parent's module state and must
    not inherit its hook.  ``crash_init`` faults fire here, before the
    tool is even built.
    """
    global _STATE
    from ..core import pipeline

    if plan is None or not plan.specs:
        _STATE = None
        pipeline.set_fault_hook(None)
        return
    _STATE = _FaultState(plan=plan, shard=shard, spawn=spawn)
    pipeline.set_fault_hook(_pipeline_hook)
    for index, spec in enumerate(plan.specs):
        if spec.kind == "crash_init" and _STATE._may_fire(index, spec):
            _STATE._mark(index)
            os._exit(1)


def uninstall() -> None:
    """Disarm fault injection in this process (tests)."""
    install(None, shard=0, spawn=0)


def on_task_start() -> None:
    """Advance the task counter and fire crash/delay faults due now.

    The worker's task wrapper calls this once per received task, before
    any pipeline work.  Prewarm and initializer workloads never pass
    through here, so they can never trip a task-scoped fault.
    """
    state = _STATE
    if state is None:
        return
    state.task_index += 1
    for index, spec in enumerate(state.plan.specs):
        if spec.kind not in ("crash", "delay"):
            continue
        if not state._may_fire(index, spec) or not spec.matches_task(state.task_index):
            continue
        state._mark(index)
        if spec.kind == "delay":
            time.sleep(spec.seconds)
        else:
            os._exit(1)


_JOURNAL_STATE: Optional[_FaultState] = None


def install_journal(plan: Optional[FaultPlan]) -> None:
    """Arm *plan*'s journal faults in this (serving) process.

    Kept separate from the worker-side :func:`install` state: the serve
    process hosts the journal while its workers host the task faults,
    and the two ordinal counters (task index vs. append index) must not
    interfere.  ``plan=None`` (or a plan without journal kinds) disarms.
    """
    global _JOURNAL_STATE
    if plan is None or not any(s.kind in _JOURNAL_KINDS for s in plan.specs):
        _JOURNAL_STATE = None
        return
    _JOURNAL_STATE = _FaultState(plan=plan, shard=0, spawn=0)


def uninstall_journal() -> None:
    """Disarm journal fault injection in this process (tests)."""
    install_journal(None)


def on_journal_append() -> Optional[str]:
    """Advance the append ordinal; the fault due now, if any.

    :class:`~repro.service.journal.SessionJournal` calls this once per
    append, *before* writing the frame, and acts on the returned kind:
    ``"crash"`` (die after a durable append, before the ack), ``"torn"``
    (die with half a frame on disk), or ``None``.
    """
    state = _JOURNAL_STATE
    if state is None:
        return None
    state.task_index += 1
    for index, spec in enumerate(state.plan.specs):
        if spec.kind not in _JOURNAL_KINDS:
            continue
        if not state._may_fire(index, spec) or not spec.matches_task(state.task_index):
            continue
        state._mark(index)
        return "crash" if spec.kind == "journal_crash" else "torn"
    return None


def _pipeline_hook(stage: str) -> None:
    """The :func:`repro.core.pipeline.set_fault_hook` target: fire any
    armed ``raise`` fault matching the current task and *stage*."""
    state = _STATE
    if state is None or state.task_index < 0:
        return
    for index, spec in enumerate(state.plan.specs):
        if spec.kind != "raise":
            continue
        if spec.stage is not None and spec.stage != stage:
            continue
        if not state._may_fire(index, spec) or not spec.matches_task(state.task_index):
            continue
        state._mark(index)
        raise FaultInjected(
            f"injected fault: shard {state.shard} task {state.task_index} "
            f"stage {stage}"
        )
