"""The machine-readable consistency report.

One JSON shape shared by ``python -m repro check --json``, the
:func:`repro.service.server.serve` loop and :class:`~repro.service.batch.
BatchChecker` output, so downstream tooling parses a single format.

Determinism contract: with ``timings=False`` the dictionary is a pure
function of the specification and configuration — no wall-clock times, no
cache statistics — so byte-for-byte comparison across runs (and across
sequential vs. parallel batch execution) is meaningful.  Keys are emitted
in a fixed order; serialize with ``json.dumps(..., sort_keys=True)`` for
canonical bytes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.pipeline import ConsistencyReport, SpecCC


def stats_to_dict(
    tool: Optional[SpecCC] = None,
    pools: Optional[Sequence[dict]] = None,
    journal: Optional[dict] = None,
) -> dict:
    """Cache and engine-work statistics in the shared report format.

    One shape for the ``serve`` loops' ``stats`` op and the CLI's
    ``check --json --stats`` flag: the process-wide cache layers
    (component cache, semantics memo, automaton cache, interned nodes)
    under ``"cache"``, the engine-work counters under ``"synthesis"``
    (one snapshot, lifted out of the cache block so each gauge appears
    exactly once), and — when a *tool* is given — its per-document
    translation-graph node counts under ``"translation_graph"``.

    *pools* attaches worker-pool rows (``WorkerPool.stats()`` shape)
    under ``"pools"`` plus one fleet-level ``"supervision"`` summary of
    their recovery counters (restarts, retries, timeouts, degraded —
    see :func:`repro.service.supervision.aggregate_stats`), so ``check
    --stats`` and the serve ``stats`` op expose fault-tolerance state
    through the same document.

    *journal* attaches a durable-session journal's counter row
    (:meth:`repro.service.journal.JournalStore.stats` — appends, fsyncs,
    compactions, replayed records, truncated tails) under ``"journal"``
    when a serve loop runs with ``--journal``.

    When any latency histograms have accumulated (every finished span
    feeds one — see :mod:`repro.obs`), their p50/p90/p99 summaries ride
    along under ``"histograms"``.
    """
    cache = SpecCC.cache_stats()
    payload = {"cache": cache, "synthesis": cache.pop("synthesis")}
    if tool is not None:
        payload["translation_graph"] = tool.translation_cache_stats()
    if pools is not None:
        from .supervision import aggregate_stats

        payload["pools"] = list(pools)
        payload["supervision"] = aggregate_stats(pools)
    if journal is not None:
        payload["journal"] = journal
    from ..obs.metrics import registry

    histograms = registry().histograms_summary()
    if histograms:
        payload["histograms"] = histograms
    return payload


def error_to_dict(error: BaseException) -> dict:
    """The shared *error record*: what a document that failed on every
    attempt contributes to a batch report instead of aborting siblings.

    Deliberately shaped like a degenerate report — ``verdict`` and
    ``consistent`` are present so downstream code that only reads those
    keys keeps working — and deterministic (type + message only, no
    traceback addresses), so error records survive the byte-identity
    contract across backends.
    """
    return {
        "verdict": "error",
        "consistent": False,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
        },
    }


def partition_to_dict(partition) -> Dict[str, list]:
    return {
        "inputs": sorted(partition.inputs),
        "outputs": sorted(partition.outputs),
    }


def report_to_dict(
    report: ConsistencyReport,
    *,
    timings: bool = True,
    cache: Optional[dict] = None,
) -> dict:
    """Serialize *report* to plain JSON-compatible data.

    *timings* includes wall-clock seconds (overall and per component);
    drop it when byte-identical output across runs matters.  *cache*
    attaches a :meth:`repro.SpecCC.cache_stats` snapshot.
    """
    translation = report.translation
    requirements = [
        {
            "identifier": requirement.identifier,
            "text": requirement.text,
            "formula": str(requirement.formula),
        }
        for requirement in translation.requirements
    ]
    identifiers = [requirement.identifier for requirement in translation.requirements]
    components = []
    for part in report.realizability.components:
        entry = {
            "identifiers": [identifiers[index] for index in part.component.indices],
            "variables": sorted(part.component.variables),
            "verdict": part.verdict.value,
            "method": part.method,
        }
        if timings:
            entry["seconds"] = part.seconds
        components.append(entry)
    data: dict = {
        "verdict": report.verdict.value,
        "consistent": report.consistent,
        "requirements": requirements,
        "partition": partition_to_dict(report.partition),
        "components": components,
        "culprits": report.inconsistent_requirements(),
        "repair_attempts": report.repair_attempts,
        "repaired_partition": (
            partition_to_dict(report.repaired_partition)
            if report.repaired_partition is not None
            else None
        ),
        "abstraction": {
            "method": translation.abstraction.method.value,
            "thetas": list(translation.abstraction.thetas),
            "scaled": list(translation.abstraction.solution.scaled),
        },
    }
    if timings:
        data["seconds"] = report.seconds
    if cache is not None:
        data["cache"] = cache
    return data
