"""Remote workers: the :class:`~repro.service.pool.WorkerPool` across
machine boundaries.

The pool was built transport-agnostic on purpose — signature-based shard
routing, picklable task/delta records, supervision driven through three
duck-typed hooks (``_dispatch`` / ``_respawn_shard`` / ``_inline_check``)
— so going remote replaces exactly one seam: instead of a per-shard
``ProcessPoolExecutor``, dispatch targets a worker process *on another
machine* that registered over a persistent TCP connection.  Everything
above the seam is unchanged: the supervisor still retries task errors,
still counts a dropped connection as a worker death, still escalates
respawn (which here means *wait for the worker to reconnect*) and still
degrades to the in-process sequential path when the circuit breaker
trips — and reports stay byte-identical to ``workers=1``, because remote
workers run the very same :func:`~repro.service.pool._worker_check` over
the very same warm per-process caches.

Wire protocol — JSON lines, one object per line, over one persistent
socket per worker:

* **register** (worker → hub): ``{"op": "register", "worker": NAME,
  "pid": N}``.  The hub replies ``{"ok": true, "setup": B64,
  "prewarm": bool, "index": i, "spawn": s, "faults": B64|null}``: the
  pool's worker setup (config + antonym dictionary + signs) and optional
  :class:`~repro.service.faults.FaultPlan`, pickled and base64-encoded
  (the channel is a trusted LAN transport, like the process pool's pipe
  it replaces); *index* is the worker's stable registration index (the
  fault plans' ``shard``), *spawn* its per-name registration generation
  (so ``max_spawn=0`` faults do not re-fire after a reconnect).
* **task** (hub → worker): ``{"id": n, "name": ..., "document": ...,
  "trace": bool}`` — the exact ``(name, document[, trace])`` item
  :meth:`WorkerPool._dispatch` already builds, JSON-framed.  The worker
  answers ``{"id": n, "ok": true, "data": REPORT, "delta": DELTA}`` (the
  canonical report dict plus the cache-attribution/span delta — both
  already plain data) or ``{"id": n, "ok": false, "type": ...,
  "error": ...}`` for a raising pipeline; the hub rebuilds an exception
  whose type *name* matches the original, so supervised error records
  stay byte-identical across local and remote backends.
* **snapshot** (hub → worker): ``{"id": n, "snapshot": true}`` →
  ``{"id": n, "ok": true, "data": CACHE_SNAPSHOT}``.

**Placement.**  Shards map onto registered workers by consistent
hashing: each live worker contributes ``placement_replicas`` virtual
points on a hash ring and a shard lands on the first point at or after
its own hash.  A worker joining or leaving therefore moves only the
shards that hashed to it — every other shard keeps its warm worker.

**Failure model.**  A dropped connection fails that worker's in-flight
futures with :class:`RemoteWorkerDied` — a ``BrokenExecutor`` subclass,
so the supervisor's existing worker-death ladder applies verbatim.
``_respawn_shard`` becomes :meth:`RemoteWorkerHub.respawn`: disconnect
the shard's current worker if it is presumed hung (watchdog timeout),
then block until any live worker — typically the dead one's supervised
restart re-registering — can host the shard, up to
``reconnect_timeout``; if none does, the raise feeds the circuit
breaker exactly like a failed process respawn.

Start a worker with ``python -m repro worker --connect HOST:PORT``
(`--reconnect` keeps it re-registering after hub restarts).
"""

from __future__ import annotations

import base64
import hashlib
import itertools
import json
import logging
import os
import pickle
import socket
import threading
import time
from bisect import bisect_left
from concurrent.futures import BrokenExecutor, Future
from typing import Dict, List, Optional, Tuple

from .supervision import WorkerUnavailable

logger = logging.getLogger("repro.service.remote")

#: Virtual ring points per worker: enough that shard placement over a
#: handful of workers is close to even, cheap enough to rebuild on every
#: membership change.
DEFAULT_PLACEMENT_REPLICAS = 64


class RemoteWorkerDied(BrokenExecutor):
    """A remote worker's connection dropped with tasks in flight.

    Subclasses :class:`concurrent.futures.BrokenExecutor` so the
    supervisor's worker-death handling (count, respawn-as-reconnect,
    retry) applies to remote workers without a single special case.
    """


def _hash_point(key: str) -> int:
    """Stable 64-bit ring position (``PYTHONHASHSEED``-free)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


#: Rebuilt exception types by original name — the supervisor renders
#: error records via ``type(error).__name__``, so a remote task error
#: must surface under its *original* type name for records to stay
#: byte-identical with the in-process backends.
_ERROR_TYPES: Dict[str, type] = {}
_ERROR_TYPES_LOCK = threading.Lock()


def rebuild_error(type_name: str, message: str) -> BaseException:
    with _ERROR_TYPES_LOCK:
        cls = _ERROR_TYPES.get(type_name)
        if cls is None:
            cls = type(str(type_name), (RuntimeError,), {})
            _ERROR_TYPES[type_name] = cls
    return cls(message)


def _encode_blob(obj: object) -> str:
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _decode_blob(text: str) -> object:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def _send_json(wfile, message: dict, lock: Optional[threading.Lock] = None) -> None:
    payload = (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")
    if lock is None:
        wfile.write(payload)
        wfile.flush()
    else:
        with lock:
            wfile.write(payload)
            wfile.flush()


def _decode_document(document):
    """JSON round-trips requirement pairs as lists; restore tuples."""
    if isinstance(document, str):
        return document
    return [tuple(pair) for pair in document]


# ---------------------------------------------------------------- hub side
class _RemoteWorker:
    """One registered worker connection (hub side).

    ``submit`` is pipelining-safe: requests carry correlation ids, a
    dedicated reader thread resolves the matching futures, so several
    shards placed on one worker may have tasks in flight concurrently
    (the worker executes them serially, in arrival order).
    """

    def __init__(self, hub: "RemoteWorkerHub", sock, rfile, name: str,
                 index: int, spawn: int) -> None:
        self.hub = hub
        self.name = name
        self.index = index
        self.spawn = spawn
        self._sock = sock
        self._rfile = rfile
        self._wfile = sock.makefile("wb")
        self._write_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: Dict[int, Future] = {}
        self._ids = itertools.count()
        self.alive = True
        self.tasks = 0
        self._reader = threading.Thread(
            target=self._read_loop, name=f"remote-{name}", daemon=True
        )

    def start(self) -> None:
        self._reader.start()

    # -------------------------------------------------------- submitting
    def _submit_message(self, message: dict) -> "Future":
        future: "Future" = Future()
        with self._state_lock:
            if not self.alive:
                raise RemoteWorkerDied(
                    f"remote worker {self.name!r} is disconnected"
                )
            rid = next(self._ids)
            self._pending[rid] = future
            self.tasks += 1
        message["id"] = rid
        try:
            _send_json(self._wfile, message, self._write_lock)
        except (OSError, ValueError) as error:
            self._fail(
                RemoteWorkerDied(
                    f"write to remote worker {self.name!r} failed: {error}"
                )
            )
        return future

    def submit(self, item: Tuple) -> "Future":
        """Dispatch one ``(name, document[, trace])`` pool item."""
        return self._submit_message(
            {
                "name": item[0],
                "document": item[1],
                "trace": len(item) > 2 and bool(item[2]),
            }
        )

    def snapshot(self) -> "Future":
        return self._submit_message({"snapshot": True})

    # ----------------------------------------------------------- reading
    def _read_loop(self) -> None:
        try:
            for raw in self._rfile:
                message = json.loads(raw.decode("utf-8"))
                with self._state_lock:
                    future = self._pending.pop(message.get("id"), None)
                if future is None:
                    continue
                if message.get("ok"):
                    future.set_result((message["data"], message.get("delta", {})))
                else:
                    future.set_exception(
                        rebuild_error(
                            message.get("type", "RuntimeError"),
                            message.get("error", "remote task failed"),
                        )
                    )
            self._fail(
                RemoteWorkerDied(f"remote worker {self.name!r} disconnected")
            )
        except Exception as error:  # noqa: BLE001 - connection-level failure
            self._fail(
                RemoteWorkerDied(
                    f"remote worker {self.name!r} connection failed: {error}"
                )
            )

    def _fail(self, error: BaseException) -> None:
        """Mark dead, leave the ring, fail every in-flight future.

        Ring removal happens *before* the futures fail: by the time the
        supervisor reacts to the worker death, placement already routes
        around the dead worker, so respawn-as-reconnect cannot
        accidentally disconnect a healthy replacement.
        """
        with self._state_lock:
            if not self.alive:
                return
            self.alive = False
            pending, self._pending = self._pending, {}
        self.hub._on_worker_lost(self)
        for future in pending.values():
            if not future.done():
                future.set_exception(error)
        self._close_socket()

    def _close_socket(self) -> None:
        for closer in (self._wfile.close, self._rfile.close, self._sock.close):
            try:
                closer()
            except Exception:  # noqa: BLE001 - already torn down is fine
                pass

    def disconnect(self, error: BaseException) -> None:
        """Forcibly drop the connection (presumed-hung worker)."""
        logger.warning("disconnecting remote worker %r: %s", self.name, error)
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._fail(error)


class RemoteWorkerHub:
    """The dispatcher-side registry remote workers connect to.

    Start it, hand it to ``WorkerPool(remote=hub)``, and point any
    number of ``python -m repro worker --connect host:port`` processes
    at :attr:`address`.  The hub owns registration (shipping the pool's
    tool setup and fault plan to each worker), consistent-hash placement
    of pool shards onto live workers, and connection failure detection;
    the pool and its supervisor own everything else.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        min_workers: int = 1,
        register_timeout: float = 60.0,
        reconnect_timeout: float = 30.0,
        placement_replicas: int = DEFAULT_PLACEMENT_REPLICAS,
    ) -> None:
        """*min_workers* gates pool startup (``ensure_started`` blocks
        until that many workers registered, up to *register_timeout*
        seconds); *reconnect_timeout* bounds how long a supervised
        respawn waits for a worker to (re)connect before the failure
        counts toward the circuit breaker."""
        self.host = host
        self.port = port
        self.min_workers = min_workers
        self.register_timeout = register_timeout
        self.reconnect_timeout = reconnect_timeout
        self.placement_replicas = placement_replicas
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._workers: Dict[str, _RemoteWorker] = {}  # live, by name
        self._indices: Dict[str, int] = {}  # stable registration index
        self._spawns: Dict[str, int] = {}  # per-name registration count
        self._registrations = 0
        self._lost = 0
        self._disconnects = 0
        self._setup_blob: Optional[str] = None
        self._prewarm = True
        self._fault_blob: Optional[str] = None
        self._attached = threading.Event()
        self._server_sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._closed = False

    # ---------------------------------------------------------- lifecycle
    def start(self) -> Tuple[str, int]:
        """Begin listening; returns the bound ``(host, port)``."""
        if self._server_sock is not None:
            return self.address
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(16)
        self._server_sock = sock
        self.host, self.port = sock.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="remote-hub-accept", daemon=True
        )
        self._accept_thread.start()
        logger.info("remote worker hub listening on %s:%d", self.host, self.port)
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def attach(self, setup: tuple, prewarm: bool, fault_plan) -> None:
        """Install the worker setup registrations will ship (the pool
        calls this from its constructor; registration acks block until
        it has happened)."""
        self._setup_blob = _encode_blob(setup)
        self._prewarm = prewarm
        self._fault_blob = _encode_blob(fault_plan) if fault_plan else None
        self._attached.set()

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
        if self._server_sock is not None:
            try:
                self._server_sock.close()
            except OSError:
                pass
        for worker in workers:
            worker.disconnect(RemoteWorkerDied("hub shut down"))

    def __enter__(self) -> "RemoteWorkerHub":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------- registration
    def _accept_loop(self) -> None:
        assert self._server_sock is not None
        while True:
            try:
                sock, _peer = self._server_sock.accept()
            except OSError:  # listener closed
                return
            threading.Thread(
                target=self._register_connection,
                args=(sock,),
                name="remote-hub-register",
                daemon=True,
            ).start()

    def _register_connection(self, sock) -> None:
        """One handshake: read the register line, ack with the setup."""
        try:
            sock.settimeout(self.register_timeout)
            rfile = sock.makefile("rb")
            raw = rfile.readline()
            message = json.loads(raw.decode("utf-8")) if raw else None
            if not isinstance(message, dict) or message.get("op") != "register":
                raise ValueError(f"expected register message, got {message!r}")
            if not self._attached.wait(timeout=self.register_timeout):
                raise TimeoutError("no pool attached to the hub")
            requested = message.get("worker")
            with self._cond:
                if self._closed:
                    raise OSError("hub is closed")
                name = str(
                    requested
                    if requested
                    else f"worker-{self._registrations}"
                )
                index = self._indices.setdefault(name, len(self._indices))
                spawn = self._spawns.get(name, 0)
                self._spawns[name] = spawn + 1
                self._registrations += 1
                previous = self._workers.get(name)
            if previous is not None:
                # Same name re-registering while the old connection is
                # still considered live: the old one is stale (e.g. a
                # half-dead socket) — drop it first.
                previous.disconnect(
                    RemoteWorkerDied(f"worker {name!r} re-registered")
                )
            sock.settimeout(None)
            worker = _RemoteWorker(self, sock, rfile, name, index, spawn)
            _send_json(
                worker._wfile,
                {
                    "ok": True,
                    "setup": self._setup_blob,
                    "prewarm": self._prewarm,
                    "index": index,
                    "spawn": spawn,
                    "faults": self._fault_blob,
                },
                worker._write_lock,
            )
            worker.start()
            with self._cond:
                self._workers[name] = worker
                self._cond.notify_all()
            logger.info(
                "remote worker %r registered (index %d, spawn %d)",
                name, index, spawn,
            )
        except Exception as error:  # noqa: BLE001 - bad handshakes are logged
            logger.warning("remote worker registration failed: %s", error)
            try:
                sock.close()
            except OSError:
                pass

    def _on_worker_lost(self, worker: _RemoteWorker) -> None:
        with self._cond:
            if self._workers.get(worker.name) is worker:
                del self._workers[worker.name]
            self._lost += 1
            self._cond.notify_all()
        logger.warning("remote worker %r left the ring", worker.name)

    # ---------------------------------------------------------- placement
    def _ring(self) -> Tuple[List[int], List[_RemoteWorker]]:
        """Sorted virtual points for the current live membership
        (callers hold ``_lock``)."""
        points: List[Tuple[int, str]] = []
        for name in self._workers:
            for replica in range(self.placement_replicas):
                points.append((_hash_point(f"{name}#{replica}"), name))
        points.sort()
        return (
            [point for point, _ in points],
            [self._workers[name] for _, name in points],
        )

    def worker_for(self, shard: int) -> _RemoteWorker:
        """The live worker hosting *shard* (consistent-hash placement)."""
        with self._lock:
            points, workers = self._ring()
            if not points:
                raise WorkerUnavailable(
                    f"no remote worker registered to host shard {shard}"
                )
            position = bisect_left(points, _hash_point(f"shard:{shard}"))
            return workers[position % len(workers)]

    def placement(self, shards: int) -> Dict[int, str]:
        """Shard → worker-name map for inspection and tests."""
        return {
            shard: self.worker_for(shard).name for shard in range(shards)
        }

    # -------------------------------------------------------- supervision
    def workers(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._workers))

    def wait_for_workers(self, count: int, timeout: Optional[float]) -> bool:
        with self._cond:
            return self._cond.wait_for(
                lambda: len(self._workers) >= count, timeout
            )

    def respawn(self, shard: int, suspect: Optional[_RemoteWorker] = None) -> None:
        """The pool's ``_respawn_shard`` hook, remote flavour.

        *suspect* is the worker that served the failing dispatch; if it
        is still connected it is presumed hung (watchdog timeout) and
        forcibly disconnected — a genuinely dead worker already removed
        itself when its connection dropped.  Then block until *any* live
        worker can host the shard (typically the dead worker's
        supervised restart re-registering), raising after
        ``reconnect_timeout`` so the supervisor's circuit breaker sees
        the failure.
        """
        if suspect is not None and suspect.alive:
            self._disconnects += 1
            suspect.disconnect(
                RemoteWorkerDied(
                    f"worker {suspect.name!r} presumed hung; disconnected"
                )
            )
        if not self.wait_for_workers(1, self.reconnect_timeout):
            raise WorkerUnavailable(
                f"no remote worker reconnected for shard {shard} within "
                f"{self.reconnect_timeout}s"
            )

    def snapshots(self) -> List[dict]:
        """Each live worker's cache snapshot (one round-trip each)."""
        with self._lock:
            workers = [self._workers[name] for name in sorted(self._workers)]
        snapshots: List[dict] = []
        for worker in workers:
            try:
                data, _delta = worker.snapshot().result(timeout=30.0)
                snapshots.append(data)
            except Exception:  # noqa: BLE001 - worker died under us
                snapshots.append({"unavailable": True})
        return snapshots

    def stats(self) -> dict:
        with self._lock:
            live = {
                name: {
                    "index": worker.index,
                    "spawn": worker.spawn,
                    "tasks": worker.tasks,
                }
                for name, worker in sorted(self._workers.items())
            }
            return {
                "address": f"{self.host}:{self.port}",
                "workers": live,
                "registrations": self._registrations,
                "lost": self._lost,
                "forced_disconnects": self._disconnects,
            }


# -------------------------------------------------------------- worker side
def _default_worker_name() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    host: str,
    port: int,
    name: Optional[str] = None,
    connect_timeout: float = 30.0,
) -> int:
    """Connect to a hub, register, and serve tasks until it hangs up.

    This is the remote counterpart of the pool's worker initializer plus
    task loop: registration ships back the pool's tool setup, which is
    installed through the ordinary
    :func:`~repro.service.pool._worker_init` (same prewarm, same fault
    arming), and every task runs through the ordinary
    :func:`~repro.service.pool._worker_check` — so a remote worker's
    reports, cache deltas and span batches are indistinguishable from a
    local shard's.  Returns 0 on a clean hub hang-up, 1 on a failed
    registration.
    """
    from .pool import _worker_check, _worker_init, _worker_snapshot

    worker_name = name or _default_worker_name()
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    try:
        sock.settimeout(None)
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        _send_json(
            wfile,
            {"op": "register", "worker": worker_name, "pid": os.getpid()},
        )
        raw = rfile.readline()
        ack = json.loads(raw.decode("utf-8")) if raw else None
        if not isinstance(ack, dict) or not ack.get("ok"):
            logger.error("registration rejected: %r", ack)
            return 1
        setup = _decode_blob(ack["setup"])
        fault_plan = (
            _decode_blob(ack["faults"]) if ack.get("faults") else None
        )
        _worker_init(
            setup,
            bool(ack.get("prewarm", True)),
            shard=int(ack.get("index", 0)),
            spawn=int(ack.get("spawn", 0)),
            fault_plan=fault_plan,
        )
        logger.info(
            "worker %r registered with %s:%d (index %s, spawn %s)",
            worker_name, host, port, ack.get("index"), ack.get("spawn"),
        )
        for raw in rfile:
            message = json.loads(raw.decode("utf-8"))
            if message.get("snapshot"):
                reply = {
                    "id": message.get("id"),
                    "ok": True,
                    "data": _worker_snapshot(),
                    "delta": {},
                }
            else:
                item = (
                    str(message["name"]),
                    _decode_document(message["document"]),
                    bool(message.get("trace")),
                )
                try:
                    data, delta = _worker_check(item)
                except Exception as error:  # noqa: BLE001 - shipped, not fatal
                    reply = {
                        "id": message.get("id"),
                        "ok": False,
                        "type": type(error).__name__,
                        "error": str(error),
                    }
                else:
                    reply = {
                        "id": message.get("id"),
                        "ok": True,
                        "data": data,
                        "delta": delta,
                    }
            _send_json(wfile, reply)
        return 0
    finally:
        try:
            sock.close()
        except OSError:
            pass


def reconnect_backoff_delay(
    attempt: int,
    base: float = 0.5,
    cap: float = 30.0,
    seed: int = 0,
    key: str = "worker",
) -> float:
    """Seconds to sleep before reconnect *attempt* (1-based).

    The same capped, seeded-jitter exponential shape the supervisor uses
    for respawns (:func:`repro.service.supervision.backoff_delay`):
    ``min(cap, base * 2**(attempt-1))`` stretched by up to 25% of
    deterministic jitter keyed on ``(seed, key, attempt)``.  A down hub
    costs a worker ``base`` seconds at first and ``~cap`` seconds at
    steady state instead of a fixed-interval hot poll, the jitter
    de-synchronises a fleet of workers all watching the same dead hub,
    and the determinism means tests can assert the exact delay sequence.
    """
    from .supervision import SupervisionConfig, backoff_delay

    config = SupervisionConfig(
        backoff_base=base, backoff_factor=2.0, backoff_cap=cap,
        jitter=0.25, seed=seed,
    )
    return backoff_delay(config, key, attempt)


def run_worker_loop(
    host: str,
    port: int,
    name: Optional[str] = None,
    reconnect_delay: float = 0.5,
    max_reconnects: Optional[int] = None,
    reconnect_cap: float = 30.0,
    sleep=time.sleep,
) -> int:
    """`run_worker` wrapped in a reconnect loop (``worker --reconnect``).

    Re-registers after hub restarts or dropped connections, backing off
    exponentially (:func:`reconnect_backoff_delay`, base
    *reconnect_delay*, cap *reconnect_cap*, jitter keyed on the worker
    name) while the hub stays unreachable; a successful registration —
    the worker served until the hub hung up cleanly — resets the
    backoff, so a healthy hub restart is rejoined at *reconnect_delay*,
    not at the cap.  *max_reconnects* bounds the attempts (None = keep
    trying until killed).  Note this cannot resurrect the *process* — a
    ``crash`` fault's ``os._exit`` needs an external supervisor
    (systemd, the CI soak harness, ...) to restart the worker, which
    then re-registers under the same name at the next spawn generation.
    """
    attempts = 0
    failures = 0  # consecutive, resets on clean service
    code = 1
    while True:
        try:
            code = run_worker(host, port, name=name)
        except OSError as error:
            logger.warning("worker connection failed: %s", error)
            code = 1
        failures = 0 if code == 0 else failures + 1
        attempts += 1
        if max_reconnects is not None and attempts > max_reconnects:
            return code
        sleep(
            reconnect_backoff_delay(
                max(1, failures),
                base=reconnect_delay,
                cap=reconnect_cap,
                key=name if name is not None else "worker",
            )
        )
