"""TCP gateway: the JSON-lines serve protocol across machine boundaries.

``python -m repro serve --tcp HOST:PORT`` puts the *exact* protocol the
stdio front ends speak onto a listening socket.  The gateway adds no
second protocol implementation: every decoded request line goes through
the same :meth:`~repro.service.server.AsyncSpecServer.handle_request`
the ``--async`` stdio loop uses, so ops, session semantics, offloading
and the closed error-code vocabulary (``bad_json`` / ``bad_request`` /
``oversized`` / ``timeout`` / ``overloaded`` / ``internal``) are
identical by construction.  What the network boundary *does* add lives
here, and only here:

* **Per-connection session namespacing.**  Client session names are
  rewritten to ``conn<N>/<name>`` before dispatch and rewritten back in
  responses, so two clients using ``"default"`` get isolated
  :class:`~repro.service.server.SpecSession` state, exactly as if each
  had its own stdio server — and a closing connection drops its whole
  namespace (:meth:`AsyncSpecServer.drop_sessions`), so reconnecting
  clients cannot leak ``max_sessions`` slots.
* **Raw-byte request bounds.**  The stdio loops measure the *encoded*
  length of a decoded line; the gateway never decodes an oversized line
  in the first place.  Lines are framed by a byte-exact reader that
  switches to discard mode past ``max_request_bytes`` and answers with
  one structured ``oversized`` error per offending line, keeping the
  connection correctly framed (resyncs at the next newline) instead of
  dropping it.
* **Admission control.**  A per-client deterministic token bucket
  (``rate`` requests/second, ``burst`` capacity) answers excess traffic
  with ``overloaded`` — same code the per-session queue bound uses — and
  a connection cap answers excess clients with one ``overloaded`` line
  before close.  Backpressure is always an error *response*, never a
  silently dropped request.
* **Graceful drain.**  ``SIGTERM``/``SIGINT`` (or a client ``shutdown``
  op, unless ``--no-client-shutdown``) stops accepting, lets every
  in-flight request finish and its response flush, then closes.

Observability: ``gateway.*`` counters (connections, requests,
rate-limited, oversized, rejected) land in the process
:func:`~repro.obs.metrics.registry`, and a ``gateway`` collector
namespace exposes live connection state — both readable over the wire
through the ordinary ``metrics`` op.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import signal
import sys
import time
from typing import Dict, Optional, Tuple

from ..obs.metrics import registry
from .server import AsyncSpecServer, ServiceError, error_response

logger = logging.getLogger("repro.service.gateway")

#: Network reads are chunked; framing is done here, not by StreamReader
#: (readline's limit handling consumes differently across versions).
_READ_CHUNK = 65536


class TokenBucket:
    """Deterministic token bucket: *rate* tokens/second, *burst* capacity.

    Refill is computed from the injected *clock* at acquisition time (no
    background task), so tests can drive it with a fake clock and assert
    exact admit/reject sequences.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def acquire(self, tokens: float = 1.0) -> bool:
        now = self._clock()
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False


async def _iter_lines(reader: "asyncio.StreamReader", max_bytes: int):
    """Yield ``(line_bytes, oversized)`` per newline-framed record.

    Byte-exact bound enforcement with guaranteed resync: once the
    accumulating line passes *max_bytes* the reader discards until the
    next newline and yields one ``(b"", True)`` marker for the whole
    line, so an attacker streaming a gigabyte line costs one bounded
    buffer and one error response — never memory, never framing.
    """
    buffer = bytearray()
    discarding = False
    while True:
        chunk = await reader.read(_READ_CHUNK)
        if not chunk:
            if discarding or len(buffer) > max_bytes:
                yield b"", True
            elif buffer:
                yield bytes(buffer), False
            return
        buffer.extend(chunk)
        while True:
            index = buffer.find(b"\n")
            if index < 0:
                if len(buffer) > max_bytes:
                    discarding = True
                    buffer.clear()
                break
            line = bytes(buffer[:index].rstrip(b"\r"))
            del buffer[: index + 1]
            if discarding:
                discarding = False
                yield b"", True
            elif len(line) > max_bytes:
                yield b"", True
            else:
                yield line, False


class _Connection:
    """One client connection: framing, namespacing, admission, writes."""

    def __init__(
        self, gateway: "SpecGateway", number: int, reader, writer
    ) -> None:
        self.gateway = gateway
        self.number = number
        self.prefix = f"conn{number}/"
        self.reader = reader
        self.writer = writer
        self.bucket = (
            TokenBucket(gateway.rate, gateway.burst, clock=gateway.clock)
            if gateway.rate is not None
            else None
        )
        self.write_lock = asyncio.Lock()
        self.pending: set = set()
        self.requests = 0

    async def write(self, response: dict) -> None:
        async with self.write_lock:
            try:
                self.writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")
                )
                await self.writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away mid-response; run() sees the EOF

    def _base(self, request) -> dict:
        base: dict = {}
        if isinstance(request, dict):
            if "rid" in request:
                base["rid"] = request["rid"]
            base["session"] = str(request.get("session", "default"))
        return base

    async def handle(self, request) -> None:
        """Dispatch one request through the shared server, namespaced."""
        original: Optional[str] = None
        if isinstance(request, dict):
            original = str(request.get("session", "default"))
            request = dict(request)
            request["session"] = self.prefix + original
        response = await self.gateway.server.handle_request(request)
        if (
            original is not None
            and isinstance(response.get("session"), str)
            and response["session"].startswith(self.prefix)
        ):
            response["session"] = original
        await self.write(response)

    async def run(self) -> None:
        gateway = self.gateway
        async for line, oversized in _iter_lines(
            self.reader, gateway.server.max_request_bytes
        ):
            if oversized:
                registry().counter("gateway.oversized")
                await self.write(
                    error_response(
                        ServiceError(
                            "request line exceeds "
                            f"{gateway.server.max_request_bytes} bytes",
                            code="oversized",
                        )
                    )
                )
                continue
            if not line.strip():
                continue
            self.requests += 1
            registry().counter("gateway.requests")
            try:
                request = json.loads(line.decode("utf-8"))
            except Exception as error:  # noqa: BLE001 - bad bytes, bad JSON
                await self.write(
                    {
                        "ok": False,
                        "error": f"malformed JSON: {error}",
                        "code": "bad_json",
                    }
                )
                continue
            if self.bucket is not None and not self.bucket.acquire():
                registry().counter("gateway.rate_limited")
                response = error_response(
                    ServiceError(
                        f"rate limit exceeded ({gateway.rate:g} requests/s, "
                        f"burst {gateway.burst:g}); retry later",
                        code="overloaded",
                    )
                )
                response.update(self._base(request))
                await self.write(response)
                continue
            if isinstance(request, dict) and request.get("op") == "shutdown":
                if not gateway.allow_shutdown:
                    response = error_response(
                        ServiceError(
                            "shutdown over the network is disabled on this "
                            "gateway; signal the server process instead"
                        )
                    )
                    response.update(self._base(request))
                    await self.write(response)
                    continue
                # Global drain, exactly like the stdio loops: everything
                # already accepted (on this connection) finishes first,
                # the ack goes out, then the whole gateway drains.
                if self.pending:
                    await asyncio.gather(*self.pending, return_exceptions=True)
                    self.pending.clear()
                await self.handle(request)
                await gateway.shutdown()
                return
            task = asyncio.create_task(self.handle(request))
            self.pending.add(task)
            task.add_done_callback(self.pending.discard)
        if self.pending:
            await asyncio.gather(*self.pending, return_exceptions=True)

    async def drain_and_close(self) -> None:
        if self.pending:
            await asyncio.gather(*self.pending, return_exceptions=True)
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class SpecGateway:
    """The listening front end wrapping one shared
    :class:`~repro.service.server.AsyncSpecServer`.

    *rate*/*burst* arm the per-connection token bucket (None disables
    it); *max_connections* caps concurrently served clients (excess
    connections get one ``overloaded`` line and a close);
    *allow_shutdown* gates the client-initiated ``shutdown`` op —
    disable it on shared deployments so one client cannot stop the
    service for everyone.  *clock* feeds the token buckets (tests).
    """

    def __init__(
        self,
        server: Optional[AsyncSpecServer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        allow_shutdown: bool = True,
        clock=time.monotonic,
    ) -> None:
        self.server = server if server is not None else AsyncSpecServer()
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.rate = rate
        self.burst = burst if burst is not None else (rate if rate else None)
        self.allow_shutdown = allow_shutdown
        self.clock = clock
        self._tcp: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[int, _Connection] = {}
        self._numbers = itertools.count(1)
        self._draining = False
        self._done: Optional[asyncio.Event] = None
        self._accepted = 0
        self._rejected = 0

    # ---------------------------------------------------------- lifecycle
    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    async def start(self) -> Tuple[str, int]:
        """Bind and begin accepting; returns the bound ``(host, port)``."""
        if self._tcp is not None:
            return self.address
        self._done = asyncio.Event()
        self._tcp = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.host, self.port = self._tcp.sockets[0].getsockname()[:2]
        registry().register_collector("gateway", self.stats)
        logger.info("gateway listening on %s:%d", self.host, self.port)
        return self.address

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, close."""
        if self._draining:
            return
        self._draining = True
        logger.info("gateway draining (%d connections)", len(self._connections))
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
        for connection in list(self._connections.values()):
            await connection.drain_and_close()
        if self._done is not None:
            self._done.set()

    async def run(self) -> int:
        """Serve until a drain completes (signal or client shutdown)."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
            except (NotImplementedError, RuntimeError, ValueError):
                break  # platform or non-main-thread: signals unavailable
        assert self._done is not None
        await self._done.wait()
        return 0

    # --------------------------------------------------------- connections
    async def _on_connection(self, reader, writer) -> None:
        if self._draining or len(self._connections) >= self.max_connections:
            self._rejected += 1
            registry().counter("gateway.rejected")
            reason = (
                "gateway is shutting down"
                if self._draining
                else f"gateway at capacity ({self.max_connections} connections)"
            )
            try:
                writer.write(
                    (
                        json.dumps(
                            error_response(
                                ServiceError(reason, code="overloaded")
                            ),
                            sort_keys=True,
                        )
                        + "\n"
                    ).encode("utf-8")
                )
                await writer.drain()
                writer.close()
            except (ConnectionError, OSError):
                pass
            return
        number = next(self._numbers)
        connection = _Connection(self, number, reader, writer)
        self._connections[number] = connection
        self._accepted += 1
        registry().counter("gateway.connections")
        try:
            await connection.run()
        except (ConnectionError, OSError):
            pass  # half-open sockets surface here; namespace cleanup below
        finally:
            self._connections.pop(number, None)
            # An abortive disconnect (reset mid-read) can leave handler
            # tasks still running; await them *before* touching the
            # namespace, or a handler could resurrect a session the drop
            # below already removed.  (A clean EOF already drained inside
            # run(); gathering an empty set is free.)
            if connection.pending:
                await asyncio.gather(*connection.pending, return_exceptions=True)
                connection.pending.clear()
            dropped = self.server.drop_sessions(connection.prefix)
            if dropped:
                registry().counter("gateway.sessions_dropped", dropped)
            detached = self.server.detach_sessions(connection.prefix)
            if detached:
                # Durable (journal-backed) sessions are retained for
                # re-attach; only the connection's aliases go.
                registry().counter("gateway.sessions_detached", detached)
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------- observability
    def stats(self) -> dict:
        return {
            "address": f"{self.host}:{self.port}",
            "connections_open": len(self._connections),
            "connections_total": self._accepted,
            "connections_rejected": self._rejected,
            "draining": self._draining,
            "rate": self.rate,
            "burst": self.burst,
            "max_connections": self.max_connections,
        }


def serve_tcp(
    host: str,
    port: int,
    tool=None,
    request_timeout: Optional[float] = None,
    max_request_bytes: Optional[int] = None,
    max_queue: int = 64,
    max_connections: int = 64,
    rate: Optional[float] = None,
    burst: Optional[float] = None,
    allow_shutdown: bool = True,
    batch_pool=None,
    journal_store=None,
) -> int:
    """Blocking entry point of ``python -m repro serve --tcp HOST:PORT``.

    Prints one ``listening on HOST:PORT`` line to stderr once bound
    (port 0 picks a free port — harnesses parse this line), then serves
    until SIGTERM/SIGINT or a client ``shutdown``.  With *journal_store*
    every journal in the store directory is recovered before the socket
    binds, and clients get the ``attach`` durable-session op.
    """
    from .server import DEFAULT_MAX_REQUEST_BYTES

    server = AsyncSpecServer(
        tool,
        request_timeout=request_timeout,
        max_request_bytes=(
            max_request_bytes
            if max_request_bytes is not None
            else DEFAULT_MAX_REQUEST_BYTES
        ),
        max_queue=max_queue,
        batch_pool=batch_pool,
        journal_store=journal_store,
    )
    gateway = SpecGateway(
        server,
        host=host,
        port=port,
        max_connections=max_connections,
        rate=rate,
        burst=burst,
        allow_shutdown=allow_shutdown,
    )

    async def main() -> int:
        await gateway.start()
        print(
            f"listening on {gateway.host}:{gateway.port}",
            file=sys.stderr,
            flush=True,
        )
        return await gateway.run()

    try:
        return asyncio.run(main())
    finally:
        if journal_store is not None:
            journal_store.sync_all()
