"""Persistent sharded worker pool with warm per-process caches.

``ProcessPoolExecutor`` as PR 2 used it rebuilt the :class:`repro.SpecCC`
tool *per task*, so every document paid the cold-start price — imports,
grammar tables, an empty formula pool, an empty component-outcome LRU —
and ``BENCH_service.json`` showed the process backend gaining nothing
over one thread.  :class:`WorkerPool` fixes both halves of that:

* **Persistence** — each shard is one long-lived worker process, spawned
  once with an initializer that constructs the tool and runs
  :meth:`repro.SpecCC.prewarm`.  Interning pools, translation caches and
  the component-outcome LRU stay warm across tasks, so steady-state
  throughput is governed by the caches, not by process startup.
* **Sharding** — tasks are routed by a stable *signature* of the
  document (a content hash: identical text ⇒ identical interned formulas
  ⇒ identical component cache keys, so the signature is a cheap proxy
  for affinity hashing over those keys).  A repeated document or
  component therefore lands on the worker that already analysed it and
  is served from that worker's LRU instead of recomputing in a cold
  sibling.

Determinism is unchanged from the thread backend: workers run the
ordinary pipeline, caches are semantically transparent, and canonical
reports (``timings=False``) are byte-identical to a ``workers=1`` run no
matter how many shards route the traffic — asserted byte-for-byte in
``tests/test_pool.py``.

Observability: every task ships a per-task component-cache hit/miss
delta back with its report (see
:func:`repro.synthesis.realizability.cache_snapshot` — plain picklable
dicts), and the parent aggregates them with shard-routing counters in
:meth:`WorkerPool.stats`; :meth:`WorkerPool.worker_snapshots` fetches
each worker's full cache snapshot on demand.

``backend="process"`` of :class:`~repro.service.batch.BatchChecker` and
the async serve front end both draw their pool from the module-level
:func:`shared_pool` registry, so one set of warm workers serves every
batch request in the process.
"""

from __future__ import annotations

import atexit
import hashlib
import pickle
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..core.pipeline import SpecCC, SpecCCConfig

#: Mirrors :data:`repro.service.batch.Document` (no import: batch.py
#: imports this module).
Document = Union[str, Sequence[Tuple[str, str]]]

#: Bound on the signature→shard bookkeeping map (counters only — routing
#: itself is stateless hashing and never forgets).
_SIGNATURE_MAP_LIMIT = 65536


def document_signature(document: Document) -> str:
    """Stable content signature of a document (any accepted shape).

    Identical content yields identical interned formulas and therefore
    identical component cache keys, so routing by this signature is
    affinity hashing over the component cache without translating in the
    parent.  Stable across processes and runs (``PYTHONHASHSEED``-free).
    """
    if isinstance(document, str):
        payload = "text\x00" + document
    else:
        payload = "pairs\x00" + "\x00".join(
            f"{identifier}\x1f{sentence}" for identifier, sentence in document
        )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


class PoolTask(NamedTuple):
    """One completed pool task: canonical report plus attribution."""

    name: str
    data: dict  # canonical report (reportjson, timings excluded)
    shard: int
    cache_hits: int  # component-outcome hits inside the worker, this task
    cache_misses: int
    semantics_hits: int = 0  # Algorithm 1 memo traffic inside the worker
    semantics_misses: int = 0


# ---------------------------------------------------------------- workers
# One tool per worker process, built exactly once by the initializer and
# reused for every task the shard ever receives — this is the whole point.
_WORKER_TOOL: Optional[SpecCC] = None


def _worker_init(setup: tuple, prewarm: bool) -> None:
    global _WORKER_TOOL
    config, dictionary, signs = setup
    _WORKER_TOOL = SpecCC(config, dictionary=dictionary, signs=signs)
    if prewarm:
        _WORKER_TOOL.prewarm()


def _counter_snapshot() -> Dict[str, int]:
    """The per-task attribution counters, flat (components + semantics)."""
    from ..core.graph import shared_graph

    stats = shared_graph().stats()
    return {
        "hits": stats["components"].hits,
        "misses": stats["components"].misses,
        "semantics_hits": stats["semantics"].hits,
        "semantics_misses": stats["semantics"].misses,
    }


def _worker_check(item: Tuple[str, Document]) -> Tuple[dict, Dict[str, int]]:
    """Check one document on the resident tool; report + hit/miss deltas."""
    from .batch import _check_document
    from .reportjson import report_to_dict

    tool = _WORKER_TOOL
    if tool is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker process was not initialized")
    before = _counter_snapshot()
    report = _check_document(tool, item[1])
    after = _counter_snapshot()
    return (
        report_to_dict(report, timings=False),
        {key: after[key] - before[key] for key in after},
    )


def _worker_snapshot(_: object = None) -> dict:
    from ..synthesis.realizability import cache_snapshot

    return cache_snapshot()


# ------------------------------------------------------------------- pool
class WorkerPool:
    """Long-lived sharded process pool for document checking.

    Each of the *shards* workers is a separate single-process executor,
    which is what makes the affinity guarantee hold: a task routed to
    shard *k* always runs in shard *k*'s (one) process, over that
    process's warm caches.  Use as a context manager or call
    :meth:`shutdown`; pools obtained from :func:`shared_pool` are shut
    down at interpreter exit.
    """

    def __init__(
        self,
        config: SpecCCConfig = SpecCCConfig(),
        shards: int = 4,
        prewarm: bool = True,
        tool: Optional[SpecCC] = None,
    ) -> None:
        """*tool* overrides *config* (mirrors ``BatchChecker``): the
        worker tools are rebuilt from its config, antonym dictionary and
        signs, so pool verdicts match the supplying session's."""
        if shards < 1:
            raise ValueError("shards must be >= 1")
        template = tool if tool is not None else SpecCC(config)
        self.config = template.config
        self.shards = shards
        self.prewarm = prewarm
        self._setup = (
            self.config,
            template.translator.dictionary,
            template.translator.signs,
        )
        self._executors: List[Optional[ProcessPoolExecutor]] = [None] * shards
        self._lock = threading.Lock()
        self._closed = False
        self._startup_seconds: Optional[float] = None
        # Counters (all guarded by _lock; callbacks fire on executor threads).
        self._tasks = 0
        self._failures = 0
        self._per_shard = [0] * shards
        self._worker_hits = 0
        self._worker_misses = 0
        self._worker_semantics_hits = 0
        self._worker_semantics_misses = 0
        self._routed: "Dict[str, int]" = {}  # signature -> shard (bounded)
        self._affinity_repeats = 0

    # ---------------------------------------------------------- lifecycle
    def ensure_started(self) -> float:
        """Spawn and initialize every worker; returns the startup seconds.

        Idempotent.  Separated from construction so benchmarks can
        charge pool startup to its own line instead of silently folding
        it into the first batch's throughput.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            if self._startup_seconds is not None:
                return self._startup_seconds
            start = time.perf_counter()
            for shard in range(self.shards):
                self._executors[shard] = ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_worker_init,
                    initargs=(self._setup, self.prewarm),
                )
            # Force the spawn + initializer to actually complete.
            pings = [
                executor.submit(_worker_snapshot) for executor in self._executors
            ]
            for ping in pings:
                ping.result()
            self._startup_seconds = time.perf_counter() - start
            return self._startup_seconds

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executors = [e for e in self._executors if e is not None]
            self._executors = [None] * self.shards
        for executor in executors:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        self.ensure_started()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------ routing
    def shard_of(self, document: Document) -> int:
        """The shard *document* routes to (pure function of its content)."""
        return int(document_signature(document), 16) % self.shards

    def _route(self, document: Document) -> int:
        signature = document_signature(document)
        shard = int(signature, 16) % self.shards
        with self._lock:
            if signature in self._routed:
                self._affinity_repeats += 1
            else:
                if len(self._routed) >= _SIGNATURE_MAP_LIMIT:
                    self._routed.clear()  # counters only; routing unaffected
                self._routed[signature] = shard
            self._tasks += 1
            self._per_shard[shard] += 1
        return shard

    # ---------------------------------------------------------- submitting
    def submit(self, name: str, document: Document) -> "Future[PoolTask]":
        """Route one document to its shard; resolves to a :class:`PoolTask`."""
        self.ensure_started()
        shard = self._route(document)
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            executor = self._executors[shard]
        inner = executor.submit(_worker_check, (name, document))
        outer: "Future[PoolTask]" = Future()

        def _done(finished: Future) -> None:
            try:
                data, delta = finished.result()
            except BaseException as error:  # noqa: BLE001 - forwarded
                with self._lock:
                    self._failures += 1
                outer.set_exception(error)
                return
            with self._lock:
                self._worker_hits += delta["hits"]
                self._worker_misses += delta["misses"]
                self._worker_semantics_hits += delta.get("semantics_hits", 0)
                self._worker_semantics_misses += delta.get("semantics_misses", 0)
            outer.set_result(
                PoolTask(
                    name,
                    data,
                    shard,
                    delta["hits"],
                    delta["misses"],
                    delta.get("semantics_hits", 0),
                    delta.get("semantics_misses", 0),
                )
            )

        inner.add_done_callback(_done)
        return outer

    def check_documents(
        self, documents: Sequence[Tuple[str, Document]]
    ) -> List[PoolTask]:
        """Check ``(name, document)`` items; results come back in order."""
        futures = [self.submit(name, document) for name, document in documents]
        return [future.result() for future in futures]

    # ------------------------------------------------------- observability
    def worker_snapshots(self) -> List[dict]:
        """Each shard's full cache snapshot (one round-trip per worker)."""
        self.ensure_started()
        with self._lock:
            executors = list(self._executors)
        futures = [executor.submit(_worker_snapshot) for executor in executors]
        return [future.result() for future in futures]

    def stats(self) -> dict:
        """Shard-routing and worker cache counters, ``cache_stats()``-style.

        ``worker_cache`` aggregates the per-task hit/miss deltas the
        workers shipped back; ``affinity_repeats`` counts submissions
        whose signature had been routed before (each one is a task that
        landed on warm state by construction).
        """
        with self._lock:
            hits, misses = self._worker_hits, self._worker_misses
            total = hits + misses
            sem_hits = self._worker_semantics_hits
            sem_misses = self._worker_semantics_misses
            sem_total = sem_hits + sem_misses
            return {
                "shards": self.shards,
                "started": self._startup_seconds is not None,
                "startup_seconds": self._startup_seconds,
                "tasks": self._tasks,
                "failures": self._failures,
                "per_shard": list(self._per_shard),
                "distinct_signatures": len(self._routed),
                "affinity_repeats": self._affinity_repeats,
                "worker_cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": round(hits / total, 4) if total else None,
                },
                "worker_semantics": {
                    "hits": sem_hits,
                    "misses": sem_misses,
                    "hit_rate": round(sem_hits / sem_total, 4)
                    if sem_total
                    else None,
                },
            }


# --------------------------------------------------------- shared registry
# One pool per (tool setup, shard count) per process: BatchChecker's
# process backend and the async serve front end both call shared_pool(),
# so every batch request in a daemon reuses the same warm workers.
_shared_pools: Dict[Tuple[bytes, int], WorkerPool] = {}
_shared_lock = threading.Lock()


def _setup_key(tool: SpecCC) -> bytes:
    """Canonical bytes identifying a tool's worker-relevant setup."""
    dictionary = tool.translator.dictionary
    canonical = (
        tool.config,
        tuple(
            (word, tuple(sorted(antonyms)))
            for word, antonyms in sorted(dictionary.pairs.items())
        ),
        tuple(sorted(dictionary.positive_forms)),
        tuple(tool.translator.signs) if tool.translator.signs is not None else None,
    )
    return pickle.dumps(canonical)


def shared_pool(
    tool: Optional[SpecCC] = None,
    config: SpecCCConfig = SpecCCConfig(),
    shards: int = 4,
    prewarm: bool = True,
) -> WorkerPool:
    """The process-wide pool for this tool setup, created on first use."""
    template = tool if tool is not None else SpecCC(config)
    key = (_setup_key(template), shards)
    with _shared_lock:
        pool = _shared_pools.get(key)
        if pool is None:
            pool = WorkerPool(shards=shards, prewarm=prewarm, tool=template)
            _shared_pools[key] = pool
        return pool


def shared_pool_stats() -> List[dict]:
    """`stats()` of every registry pool (the serve ``stats`` op surfaces
    these so operators can watch shard routing and worker hit rates)."""
    with _shared_lock:
        pools = list(_shared_pools.values())
    return [pool.stats() for pool in pools]


def shutdown_shared_pools(wait: bool = True) -> None:
    """Shut down every registry pool (tests; also runs at exit)."""
    with _shared_lock:
        pools = list(_shared_pools.values())
        _shared_pools.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


atexit.register(shutdown_shared_pools)
