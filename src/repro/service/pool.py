"""Persistent sharded worker pool with warm per-process caches.

``ProcessPoolExecutor`` as PR 2 used it rebuilt the :class:`repro.SpecCC`
tool *per task*, so every document paid the cold-start price — imports,
grammar tables, an empty formula pool, an empty component-outcome LRU —
and ``BENCH_service.json`` showed the process backend gaining nothing
over one thread.  :class:`WorkerPool` fixes both halves of that:

* **Persistence** — each shard is one long-lived worker process, spawned
  once with an initializer that constructs the tool and runs
  :meth:`repro.SpecCC.prewarm`.  Interning pools, translation caches and
  the component-outcome LRU stay warm across tasks, so steady-state
  throughput is governed by the caches, not by process startup.
* **Sharding** — tasks are routed by a stable *signature* of the
  document (a content hash: identical text ⇒ identical interned formulas
  ⇒ identical component cache keys, so the signature is a cheap proxy
  for affinity hashing over those keys).  A repeated document or
  component therefore lands on the worker that already analysed it and
  is served from that worker's LRU instead of recomputing in a cold
  sibling.
* **Supervision** — every task is dispatched through a
  :class:`~repro.service.supervision.Supervisor`: worker death
  (``BrokenProcessPool``), hangs (per-task watchdog timeout) and
  mid-pipeline exceptions are retried with deterministic backoff, the
  dead shard is respawned through the same initializer+prewarm, and when
  respawn itself keeps failing a circuit breaker degrades the pool to an
  in-process sequential path.  A document whose pipeline raises
  deterministically resolves to an *error record*
  (:func:`~repro.service.reportjson.error_to_dict`) instead of aborting
  its siblings: :meth:`submit` futures never raise for per-document
  failures.  Fault schedules for testing all of this ride in through
  :class:`~repro.service.faults.FaultPlan` (or the ``REPRO_FAULTS``
  environment variable) and are installed inside each worker by the
  initializer.

Dispatch is serialized per shard by a dedicated dispatcher thread (each
shard has exactly one worker process, so this costs no throughput): the
supervisor observes one in-flight task per shard, which makes recovery
counters exact — a scheduled crash is exactly one ``worker_death``, one
``restart``, one ``retry`` — and lets tests assert them as equalities.

Determinism is unchanged from the thread backend: workers run the
ordinary pipeline, caches are semantically transparent, and canonical
reports (``timings=False``) are byte-identical to a ``workers=1`` run no
matter how many shards route the traffic — and no matter which faults
fire, because retried and degraded tasks run the same pipeline over
semantically transparent caches.  Asserted byte-for-byte in
``tests/test_pool.py``.

Observability: every task ships a per-task component-cache hit/miss
delta back with its report (see
:func:`repro.synthesis.realizability.cache_snapshot` — plain picklable
dicts), and the parent aggregates them with shard-routing counters and
the supervisor's recovery counters in :meth:`WorkerPool.stats`;
:meth:`WorkerPool.worker_snapshots` fetches each worker's full cache
snapshot on demand.

``backend="process"`` of :class:`~repro.service.batch.BatchChecker` and
the async serve front end both draw their pool from the module-level
:func:`shared_pool` registry, so one set of warm workers serves every
batch request in the process.
"""

from __future__ import annotations

import atexit
import hashlib
import pickle
import queue
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..core.pipeline import SpecCC, SpecCCConfig
from ..obs.trace import (
    Tracer,
    activated,
    get_tracer,
    span as _obs_span,
    tracing_active,
)
from .faults import FaultPlan
from .supervision import Supervisor, SupervisionConfig, WorkerUnavailable

#: Mirrors :data:`repro.service.batch.Document` (no import: batch.py
#: imports this module).
Document = Union[str, Sequence[Tuple[str, str]]]

#: Bound on the signature→shard bookkeeping map (counters only — routing
#: itself is stateless hashing and never forgets).
_SIGNATURE_MAP_LIMIT = 65536


def document_signature(document: Document) -> str:
    """Stable content signature of a document (any accepted shape).

    Identical content yields identical interned formulas and therefore
    identical component cache keys, so routing by this signature is
    affinity hashing over the component cache without translating in the
    parent.  Stable across processes and runs (``PYTHONHASHSEED``-free).
    """
    if isinstance(document, str):
        payload = "text\x00" + document
    else:
        payload = "pairs\x00" + "\x00".join(
            f"{identifier}\x1f{sentence}" for identifier, sentence in document
        )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


class PoolTask(NamedTuple):
    """One completed pool task: canonical report plus attribution.

    *error* is None for ordinary results; for a document whose pipeline
    failed on every supervised attempt it holds the error message and
    *data* holds the shared error-record shape
    (:func:`~repro.service.reportjson.error_to_dict`).  *attempts* counts
    supervised tries (1 = first try succeeded).
    """

    name: str
    data: dict  # canonical report (reportjson, timings excluded)
    shard: int
    cache_hits: int  # component-outcome hits inside the worker, this task
    cache_misses: int
    semantics_hits: int = 0  # Algorithm 1 memo traffic inside the worker
    semantics_misses: int = 0
    error: Optional[str] = None
    attempts: int = 1
    #: Span records the worker recorded for this task (empty unless the
    #: submitting context was tracing) — already stitched into the
    #: parent's trace by the dispatcher, surfaced here for inspection.
    spans: Tuple = ()


# ---------------------------------------------------------------- workers
# One tool per worker process, built exactly once by the initializer and
# reused for every task the shard ever receives — this is the whole point.
_WORKER_TOOL: Optional[SpecCC] = None


def _worker_init(
    setup: tuple,
    prewarm: bool,
    shard: int = 0,
    spawn: int = 0,
    fault_plan: Optional[FaultPlan] = None,
) -> None:
    global _WORKER_TOOL
    from . import faults

    # Arm (or, under fork, explicitly disarm inherited) fault injection
    # before anything else: crash_init faults fire here, and the pipeline
    # hook must be in place before prewarm exercises the pipeline.
    faults.install(fault_plan, shard=shard, spawn=spawn)
    config, dictionary, signs = setup
    _WORKER_TOOL = SpecCC(config, dictionary=dictionary, signs=signs)
    if prewarm:
        _WORKER_TOOL.prewarm()


def _counter_snapshot() -> Dict[str, int]:
    """The per-task attribution counters, flat (components + semantics)."""
    from ..core.graph import shared_graph

    stats = shared_graph().stats()
    return {
        "hits": stats["components"].hits,
        "misses": stats["components"].misses,
        "semantics_hits": stats["semantics"].hits,
        "semantics_misses": stats["semantics"].misses,
    }


def _worker_check(item: Tuple) -> Tuple[dict, Dict[str, int]]:
    """Check one document on the resident tool; report + hit/miss deltas.

    *item* is ``(name, document)``, optionally extended with a trace flag
    (appended by :meth:`WorkerPool._dispatch` when the submitting context
    is tracing): the task then runs under a per-task tracer and its span
    records ride back in the delta dict under ``"spans"`` — the same pipe
    the cache-attribution deltas already use, so the result shape the
    supervisor sees is unchanged.
    """
    from . import faults
    from .batch import _check_document
    from .reportjson import report_to_dict

    tool = _WORKER_TOOL
    if tool is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker process was not initialized")
    faults.on_task_start()  # crash/delay faults scheduled for this task
    trace = len(item) > 2 and bool(item[2])
    tracer = Tracer(name=f"task.{item[0]}") if trace else None
    before = _counter_snapshot()
    with activated(tracer):
        with _obs_span("worker.check", task=str(item[0])):
            report = _check_document(tool, item[1])
    after = _counter_snapshot()
    delta: Dict[str, object] = {key: after[key] - before[key] for key in after}
    if tracer is not None:
        delta["spans"] = tracer.drain()
    return report_to_dict(report, timings=False), delta


def _worker_snapshot(_: object = None) -> dict:
    from ..synthesis.realizability import cache_snapshot

    return cache_snapshot()


def _terminate_executor(executor: ProcessPoolExecutor) -> None:
    """Hard-stop an executor whose (single) worker is dead or hung."""
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 - already dead is fine
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 - broken executors may complain
        pass


# ------------------------------------------------------------------- pool
class WorkerPool:
    """Long-lived sharded process pool for document checking.

    Each of the *shards* workers is a separate single-process executor,
    which is what makes the affinity guarantee hold: a task routed to
    shard *k* always runs in shard *k*'s (one) process, over that
    process's warm caches.  Use as a context manager or call
    :meth:`shutdown`; pools obtained from :func:`shared_pool` are shut
    down at interpreter exit.

    *supervision* tunes recovery (retries, backoff, watchdog timeout,
    circuit breaker — see :class:`~repro.service.supervision.
    SupervisionConfig`); *fault_plan* installs a deterministic fault
    schedule in the workers (defaults to the plan named by the
    ``REPRO_FAULTS`` environment variable; pass ``FaultPlan()`` to force
    no injection regardless of the environment).
    """

    def __init__(
        self,
        config: SpecCCConfig = SpecCCConfig(),
        shards: int = 4,
        prewarm: bool = True,
        tool: Optional[SpecCC] = None,
        supervision: Optional[SupervisionConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        remote: Optional["RemoteWorkerHub"] = None,
    ) -> None:
        """*tool* overrides *config* (mirrors ``BatchChecker``): the
        worker tools are rebuilt from its config, antonym dictionary and
        signs, so pool verdicts match the supplying session's.

        *remote* swaps the per-shard process executors for a
        :class:`~repro.service.remote.RemoteWorkerHub`: shards are
        placed onto registered ``python -m repro worker`` processes by
        consistent hashing, dispatch goes over their persistent sockets,
        and respawn means *wait for a reconnect*.  Everything else —
        routing, supervision, span stitching, canonical report bytes —
        is identical.  The hub's lifecycle belongs to the caller
        (``shutdown`` does not close it)."""
        if shards < 1:
            raise ValueError("shards must be >= 1")
        template = tool if tool is not None else SpecCC(config)
        self.config = template.config
        self.shards = shards
        self.prewarm = prewarm
        self._setup = (
            self.config,
            template.translator.dictionary,
            template.translator.signs,
        )
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        self.fault_plan = fault_plan if fault_plan else None
        if supervision is None:
            supervision = SupervisionConfig(
                seed=self.fault_plan.seed if self.fault_plan else 0
            )
        self.supervision = supervision
        self._supervisor = Supervisor(self, supervision)
        self._remote = remote
        #: Which remote worker served each shard's last dispatch — the
        #: respawn hook disconnects exactly this worker when the shard's
        #: task times out (a genuinely dead worker removes itself).
        self._last_remote: Dict[int, object] = {}
        if remote is not None:
            remote.start()
            remote.attach(self._setup, prewarm, self.fault_plan)
        self._executors: List[Optional[ProcessPoolExecutor]] = [None] * shards
        self._spawns = [0] * shards  # spawn generation per shard
        self._queues: List["queue.Queue"] = [queue.Queue() for _ in range(shards)]
        self._dispatchers: List[Optional[threading.Thread]] = [None] * shards
        self._inline_tool: Optional[SpecCC] = None
        self._lock = threading.Lock()
        self._closed = False
        self._startup_seconds: Optional[float] = None
        # Counters (all guarded by _lock; dispatcher threads update them).
        self._tasks = 0
        self._failures = 0
        self._per_shard = [0] * shards
        self._worker_hits = 0
        self._worker_misses = 0
        self._worker_semantics_hits = 0
        self._worker_semantics_misses = 0
        self._routed: "Dict[str, int]" = {}  # signature -> shard (bounded)
        self._affinity_repeats = 0

    # ---------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def _make_executor(self, shard: int, spawn: int) -> ProcessPoolExecutor:
        """Spawn + fully initialize one shard's executor (may raise —
        e.g. a scheduled ``crash_init`` fault kills the initializer)."""
        executor = ProcessPoolExecutor(
            max_workers=1,
            initializer=_worker_init,
            initargs=(self._setup, self.prewarm, shard, spawn, self.fault_plan),
        )
        try:
            # Force the spawn + initializer to actually complete.
            executor.submit(_worker_snapshot).result()
        except BaseException:
            _terminate_executor(executor)
            raise
        return executor

    def ensure_started(self) -> float:
        """Spawn and initialize every worker; returns the startup seconds.

        Idempotent.  Separated from construction so benchmarks can
        charge pool startup to its own line instead of silently folding
        it into the first batch's throughput.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            if self._startup_seconds is not None:
                return self._startup_seconds
            start = time.perf_counter()
            for shard in range(self.shards):
                if self._remote is None:
                    self._executors[shard] = self._make_executor(
                        shard, self._spawns[shard]
                    )
                dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    args=(shard,),
                    name=f"pool-shard-{shard}",
                    daemon=True,
                )
                self._dispatchers[shard] = dispatcher
                dispatcher.start()
            if self._remote is not None:
                # Remote mode: startup is workers *registering*, not
                # processes spawning.  Block until the hub has its quorum
                # so the first submit does not race the first register.
                if not self._remote.wait_for_workers(
                    self._remote.min_workers, self._remote.register_timeout
                ):
                    raise WorkerUnavailable(
                        f"only {len(self._remote.workers())} of "
                        f"{self._remote.min_workers} remote workers "
                        f"registered within {self._remote.register_timeout}s"
                    )
            self._startup_seconds = time.perf_counter() - start
            return self._startup_seconds

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dispatchers = [d for d in self._dispatchers if d is not None]
            executors = [e for e in self._executors if e is not None]
            self._executors = [None] * self.shards
            self._dispatchers = [None] * self.shards
            # Sentinels queue *behind* submitted work (puts are ordered by
            # this lock), so wait=True drains in-flight tasks on live
            # executors before they are torn down.
            for q in self._queues:
                q.put(None)
        if wait:
            for dispatcher in dispatchers:
                dispatcher.join()
        for executor in executors:
            try:
                executor.shutdown(wait=wait)
            except Exception:  # noqa: BLE001 - broken executors may complain
                pass

    def __enter__(self) -> "WorkerPool":
        self.ensure_started()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------ routing
    def shard_of(self, document: Document) -> int:
        """The shard *document* routes to (pure function of its content)."""
        return int(document_signature(document), 16) % self.shards

    def _route(self, document: Document) -> int:
        signature = document_signature(document)
        shard = int(signature, 16) % self.shards
        with self._lock:
            if signature in self._routed:
                self._affinity_repeats += 1
            else:
                if len(self._routed) >= _SIGNATURE_MAP_LIMIT:
                    self._routed.clear()  # counters only; routing unaffected
                self._routed[signature] = shard
            self._tasks += 1
            self._per_shard[shard] += 1
        return shard

    # --------------------------------------------------- supervisor hooks
    # The Supervisor drives these three; it owns retry/respawn/degrade
    # policy, the pool owns the mechanics.
    def _dispatch(self, shard: int, item: Tuple[str, Document]) -> Future:
        if tracing_active():
            # Ask the worker to trace this task; its spans come back in
            # the delta dict and are stitched in by the dispatcher.
            item = item + (True,)
        if self._remote is not None:
            worker = self._remote.worker_for(shard)  # raises WorkerUnavailable
            with self._lock:
                self._last_remote[shard] = worker
            return worker.submit(item)
        with self._lock:
            executor = self._executors[shard]
        if executor is None:
            raise WorkerUnavailable(f"shard {shard} has no live worker")
        return executor.submit(_worker_check, item)

    def _respawn_shard(self, shard: int) -> None:
        """Terminate shard *shard*'s worker and bring up a replacement
        through the ordinary initializer (+prewarm).  Raises when the
        replacement fails to come up (the supervisor counts that and may
        trip the circuit breaker).

        Remote flavour: the pool cannot resurrect a process on another
        machine, so respawn becomes *reconnect* — drop the worker that
        served the failing dispatch if it is still connected (presumed
        hung), then block until a live worker can host the shard again
        (see :meth:`~repro.service.remote.RemoteWorkerHub.respawn`)."""
        if self._remote is not None:
            with self._lock:
                if self._closed:
                    raise RuntimeError("pool is shut down")
                suspect = self._last_remote.pop(shard, None)
                self._spawns[shard] += 1
            self._remote.respawn(shard, suspect)
            return
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            old = self._executors[shard]
            self._executors[shard] = None
            self._spawns[shard] += 1
            spawn = self._spawns[shard]
        if old is not None:
            _terminate_executor(old)
        executor = self._make_executor(shard, spawn)
        with self._lock:
            if self._closed:
                executor.shutdown(wait=False)
                raise RuntimeError("pool is shut down")
            self._executors[shard] = executor

    def _inline_check(
        self, item: Tuple[str, Document]
    ) -> Tuple[dict, Dict[str, int]]:
        """The degraded fallback: run the task in *this* process, on a
        lazily built tool with the pool's exact setup.  Same pipeline,
        same canonical bytes — just no process isolation."""
        from .batch import _check_document
        from .reportjson import report_to_dict

        with self._lock:
            tool = self._inline_tool
            if tool is None:
                config, dictionary, signs = self._setup
                tool = SpecCC(config, dictionary=dictionary, signs=signs)
                self._inline_tool = tool
        before = _counter_snapshot()
        report = _check_document(tool, item[1])
        after = _counter_snapshot()
        return (
            report_to_dict(report, timings=False),
            {key: after[key] - before[key] for key in after},
        )

    # --------------------------------------------------------- dispatching
    def _dispatch_loop(self, shard: int) -> None:
        """Dispatcher thread: feed shard *shard* one supervised task at a
        time.  Serial per shard (the shard has one worker process anyway)
        — this is what makes recovery counters exact."""
        work = self._queues[shard]
        while True:
            entry = work.get()
            if entry is None:
                work.task_done()
                break
            name, document, outer, tracer = entry
            try:
                # Re-establish the submitter's tracer in this thread
                # (context variables do not cross thread boundaries), so
                # dispatch/retry/respawn spans land in the right trace.
                with activated(tracer):
                    with _obs_span("pool.task", task=name, shard=shard) as sp:
                        data, delta, error, attempts = self._supervisor.run_task(
                            shard, name, document
                        )
                        sp.set(attempts=attempts, failed=error is not None)
                    spans = (
                        delta.pop("spans", ()) if isinstance(delta, dict) else ()
                    )
                    if tracer is not None and spans:
                        # Stitch the worker's spans under this dispatch
                        # span: re-IDed, re-parented, shifted to the
                        # dispatch window, one track per shard.
                        tracer.adopt(
                            spans,
                            parent=sp,
                            tid=f"shard{shard}",
                            offset_us=sp.ts,
                        )
            except BaseException as failure:  # pragma: no cover - safety net
                with self._lock:
                    self._failures += 1
                outer.set_exception(failure)
                work.task_done()
                continue
            with self._lock:
                if error is not None:
                    self._failures += 1
                self._worker_hits += delta.get("hits", 0)
                self._worker_misses += delta.get("misses", 0)
                self._worker_semantics_hits += delta.get("semantics_hits", 0)
                self._worker_semantics_misses += delta.get("semantics_misses", 0)
            outer.set_result(
                PoolTask(
                    name,
                    data,
                    shard,
                    delta.get("hits", 0),
                    delta.get("misses", 0),
                    delta.get("semantics_hits", 0),
                    delta.get("semantics_misses", 0),
                    error,
                    attempts,
                    tuple(spans),
                )
            )
            work.task_done()

    def submit(self, name: str, document: Document) -> "Future[PoolTask]":
        """Route one document to its shard; resolves to a :class:`PoolTask`.

        The future *always* resolves — worker death, hangs and pipeline
        errors are absorbed by the supervisor; a document that fails on
        every attempt resolves to a :class:`PoolTask` carrying an error
        record (``task.error is not None``) rather than raising.
        """
        self.ensure_started()
        shard = self._route(document)
        outer: "Future[PoolTask]" = Future()
        # Capture the submitter's tracer here: the dispatcher thread
        # re-activates it around the supervised run, which is what lets a
        # request's context tracer span worker-pool dispatch.
        tracer = get_tracer()
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            self._queues[shard].put((name, document, outer, tracer))
        return outer

    def check_documents(
        self, documents: Sequence[Tuple[str, Document]]
    ) -> List[PoolTask]:
        """Check ``(name, document)`` items; results come back in order."""
        futures = [self.submit(name, document) for name, document in documents]
        return [future.result() for future in futures]

    # ------------------------------------------------------- observability
    def worker_snapshots(self) -> List[dict]:
        """Each shard's full cache snapshot (one round-trip per worker).

        A shard with no live worker (mid-respawn, or abandoned behind an
        open circuit breaker) reports ``{"unavailable": True}`` instead
        of failing the whole call.
        """
        self.ensure_started()
        if self._remote is not None:
            # Remote mode: one snapshot per registered worker (not per
            # shard — several shards share a worker's caches).
            return self._remote.snapshots()
        with self._lock:
            executors = list(self._executors)
        snapshots: List[dict] = []
        for executor in executors:
            if executor is None:
                snapshots.append({"unavailable": True})
                continue
            try:
                snapshots.append(executor.submit(_worker_snapshot).result())
            except Exception:  # noqa: BLE001 - worker died under us
                snapshots.append({"unavailable": True})
        return snapshots

    def stats(self) -> dict:
        """Shard-routing and worker cache counters, ``cache_stats()``-style.

        ``worker_cache`` aggregates the per-task hit/miss deltas the
        workers shipped back; ``affinity_repeats`` counts submissions
        whose signature had been routed before (each one is a task that
        landed on warm state by construction).  ``supervision`` carries
        the recovery counters (restarts, retries, timeouts, degraded
        tasks, circuit state — see :meth:`~repro.service.supervision.
        Supervisor.stats`); ``spawns`` is each shard's spawn generation
        (0 = never respawned).  ``failures`` counts documents that
        resolved to error records.
        """
        supervision = self._supervisor.stats()
        remote = self._remote.stats() if self._remote is not None else None
        with self._lock:
            hits, misses = self._worker_hits, self._worker_misses
            total = hits + misses
            sem_hits = self._worker_semantics_hits
            sem_misses = self._worker_semantics_misses
            sem_total = sem_hits + sem_misses
            return {
                "remote": remote,
                "shards": self.shards,
                "started": self._startup_seconds is not None,
                "startup_seconds": self._startup_seconds,
                "tasks": self._tasks,
                "failures": self._failures,
                "per_shard": list(self._per_shard),
                "spawns": list(self._spawns),
                "distinct_signatures": len(self._routed),
                "affinity_repeats": self._affinity_repeats,
                "supervision": supervision,
                "worker_cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": round(hits / total, 4) if total else None,
                },
                "worker_semantics": {
                    "hits": sem_hits,
                    "misses": sem_misses,
                    "hit_rate": round(sem_hits / sem_total, 4)
                    if sem_total
                    else None,
                },
            }


# --------------------------------------------------------- shared registry
# One pool per (tool setup, shard count) per process: BatchChecker's
# process backend and the async serve front end both call shared_pool(),
# so every batch request in a daemon reuses the same warm workers.
_shared_pools: Dict[Tuple[bytes, int], WorkerPool] = {}
_shared_lock = threading.Lock()


def _setup_key(tool: SpecCC) -> bytes:
    """Canonical bytes identifying a tool's worker-relevant setup."""
    dictionary = tool.translator.dictionary
    canonical = (
        tool.config,
        tuple(
            (word, tuple(sorted(antonyms)))
            for word, antonyms in sorted(dictionary.pairs.items())
        ),
        tuple(sorted(dictionary.positive_forms)),
        tuple(tool.translator.signs) if tool.translator.signs is not None else None,
    )
    return pickle.dumps(canonical)


def shared_pool(
    tool: Optional[SpecCC] = None,
    config: SpecCCConfig = SpecCCConfig(),
    shards: int = 4,
    prewarm: bool = True,
    supervision: Optional[SupervisionConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> WorkerPool:
    """The process-wide pool for this tool setup, created on first use.

    Registry mutation is serialized under one lock, so concurrent
    callers with the same setup get the *same* pool.  A registered pool
    that has been shut down (tests, supervisors, operators) is replaced
    with a fresh one rather than handed out dead.  *supervision* and
    *fault_plan* apply only when this call creates the pool.
    """
    template = tool if tool is not None else SpecCC(config)
    key = (_setup_key(template), shards)
    with _shared_lock:
        pool = _shared_pools.get(key)
        if pool is None or pool.closed:
            pool = WorkerPool(
                shards=shards,
                prewarm=prewarm,
                tool=template,
                supervision=supervision,
                fault_plan=fault_plan,
            )
            _shared_pools[key] = pool
        return pool


def register_shared_pool(pool: WorkerPool) -> WorkerPool:
    """Expose an externally constructed pool through the registry.

    The TCP gateway registers its remote-backed batch pool here so the
    serve ``stats``/``metrics`` ops (``pool.*`` / ``supervision.*``
    namespaces) report its routing and recovery counters over the wire
    like any shared pool's.  Keyed by identity: the caller still owns
    the pool's lifecycle (a shutdown pool simply reports its last
    stats until the registry is cleared)."""
    with _shared_lock:
        _shared_pools[("external", id(pool))] = pool
    return pool


def shared_pool_stats() -> List[dict]:
    """`stats()` of every registry pool (the serve ``stats`` op surfaces
    these so operators can watch shard routing and worker hit rates)."""
    with _shared_lock:
        pools = list(_shared_pools.values())
    return [pool.stats() for pool in pools]


def shutdown_shared_pools(wait: bool = True) -> None:
    """Shut down every registry pool (tests; also runs at exit).

    Tolerant by design: a pool already shut down — or half torn down by
    a dying interpreter — must not turn interpreter exit into a
    traceback.
    """
    with _shared_lock:
        pools = list(_shared_pools.values())
        _shared_pools.clear()
    for pool in pools:
        try:
            pool.shutdown(wait=wait)
        except Exception:  # noqa: BLE001 - exit path must not raise
            pass


def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter teardown
    shutdown_shared_pools(wait=False)


atexit.register(_shutdown_at_exit)
