"""Concurrent checking of many documents — and of their components.

:class:`BatchChecker` fans a list of requirement documents out over a
worker pool in three phases:

1. **translate** every document (parallel; the interning pools and all
   per-node memos are thread-safe),
2. **warm** the component-outcome cache: every variable-connected
   component of every document is checked as an independent unit, so the
   pool's parallelism applies *within* a document too, not just across
   documents,
3. **aggregate**: each document runs through the ordinary pipeline code
   path (:meth:`repro.SpecCC.check_translated`) — concurrently across
   documents, but over warmed caches — and results are collected in
   input order.

Determinism does not come from serialising phase 3 (it is concurrent);
it comes from the pipeline itself being a deterministic function of one
document plus semantically transparent caches: a cache can only change
*who computes* a component outcome first, never what the outcome is, and
no phase mutates per-tool state.  The canonical JSON report
(``timings=False``) is therefore byte-identical to a ``workers=1`` run;
``tests/test_service.py`` asserts this byte-for-byte.

Threads share the process-wide caches (maximum reuse across documents)
but are GIL-bound; ``backend="process"`` trades cache sharing for real
CPU parallelism by dispatching documents onto the persistent sharded
:class:`~repro.service.pool.WorkerPool` (workers are spawned once, keep
their caches warm across tasks, and repeated documents route to the
shard that already analysed them).  The pre-pool behaviour — a fresh
``ProcessPoolExecutor`` task that rebuilds the tool per document —
survives as ``backend="process-fresh"`` for benchmarking the cold-start
regression the pool exists to fix.  ``backend="remote"`` dispatches the
same tasks to ``python -m repro worker`` processes registered with a
:class:`~repro.service.remote.RemoteWorkerHub` — other machines' CPUs
behind the identical pool/supervision seam.  Every backend's workers
return canonical report dictionaries (interned formulas must not cross
process boundaries), and every backend's reports are byte-identical.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple, Union

from ..core.pipeline import ConsistencyReport, SpecCC, SpecCCConfig
from ..obs.trace import span as _obs_span
from ..synthesis.modular import decompose
from ..translate.translator import SpecificationTranslation, Translator
from .faults import FaultPlan
from .pool import WorkerPool, shared_pool
from .reportjson import error_to_dict, report_to_dict
from .supervision import SupervisionConfig

#: A work item: a name plus either a plain-text document or explicit
#: ``(identifier, sentence)`` requirement pairs.
Document = Union[str, Sequence[Tuple[str, str]]]


@dataclass
class BatchResult:
    """Outcome for one named document.

    A document whose pipeline raised carries the shared error record
    (:func:`~repro.service.reportjson.error_to_dict`) as *data* —
    ``verdict == "error"``, ``error`` non-None — instead of aborting its
    siblings; this shape is identical across every backend.
    """

    name: str
    data: dict  # canonical report (reportjson, timings excluded)
    report: Optional[ConsistencyReport] = None  # absent for process workers

    @property
    def verdict(self) -> str:
        return self.data["verdict"]

    @property
    def consistent(self) -> bool:
        return self.data["consistent"]

    @property
    def error(self) -> Optional[dict]:
        """``{"type": ..., "message": ...}`` for failed documents."""
        return self.data.get("error")


def _translate_document(
    translator: Translator, document: Document
) -> SpecificationTranslation:
    """The single place the two document shapes are told apart."""
    if isinstance(document, str):
        return translator.translate_document(document)
    return translator.translate(list(document))


def _check_document(tool: SpecCC, document: Document) -> ConsistencyReport:
    return tool.check_translated(_translate_document(tool.translator, document))


def _checked_to_dict(tool: SpecCC, document: Document) -> dict:
    """One document → canonical dict, error-isolated: a raising pipeline
    yields the shared error record instead of propagating."""
    try:
        return report_to_dict(_check_document(tool, document), timings=False)
    except Exception as error:  # noqa: BLE001 - isolated per document
        return error_to_dict(error)


def _process_worker(setup: tuple, item: Tuple[str, Document]) -> dict:
    """Process-pool worker: one document, canonical dict out."""
    config, dictionary, signs = setup
    tool = SpecCC(config, dictionary=dictionary, signs=signs)
    return _checked_to_dict(tool, item[1])


class BatchChecker:
    """Check many documents concurrently with deterministic results."""

    BACKENDS = ("thread", "process", "process-fresh", "remote")

    def __init__(
        self,
        config: SpecCCConfig = SpecCCConfig(),
        workers: int = 4,
        backend: str = "thread",
        warm_components: bool = True,
        tool: Optional[SpecCC] = None,
        pool: Optional[WorkerPool] = None,
        supervision: Optional[SupervisionConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        remote=None,
    ) -> None:
        """*tool* overrides *config*: pass it to check with a non-default
        antonym dictionary or signs (the serve loop does, so its batch
        requests judge documents exactly like its session checks).

        ``backend="process"`` draws a persistent pool with *workers*
        shards from the process-wide :func:`~repro.service.pool.shared_pool`
        registry; pass *pool* to pin a specific :class:`WorkerPool`
        instead (tests do, to control pool lifetime and shard counts).
        *supervision* and *fault_plan* configure the pool's recovery
        policy and fault schedule when this checker creates it (they are
        ignored for an injected or already-registered pool).

        ``backend="remote"`` needs *remote* — a started
        :class:`~repro.service.remote.RemoteWorkerHub` — or an injected
        remote-backed *pool*; *workers* then means the expected worker
        count (the pool is sharded finer, ``max(8, 4 * workers)``, so
        consistent-hash placement stays balanced as workers join and
        leave).
        """
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend == "remote" and remote is None and pool is None:
            raise ValueError(
                "backend='remote' needs a RemoteWorkerHub (remote=) or a "
                "remote-backed WorkerPool (pool=)"
            )
        self.tool = tool if tool is not None else SpecCC(config)
        self.config = self.tool.config
        self.workers = workers
        self.backend = backend
        self.warm_components = warm_components
        self.pool = pool
        self.supervision = supervision
        self.fault_plan = fault_plan
        self.remote = remote

    # ------------------------------------------------------------ running
    def check_documents(
        self, documents: Sequence[Tuple[str, Document]]
    ) -> List[BatchResult]:
        """Check ``(name, document)`` items; results come back in order."""
        items = list(documents)
        if not items:
            return []
        with _obs_span(
            "batch.check",
            documents=len(items),
            backend=self.backend,
            workers=self.workers,
        ):
            return self._check_documents(items)

    def _check_documents(
        self, items: List[Tuple[str, Document]]
    ) -> List[BatchResult]:
        if self.backend == "process":
            return self._run_pool(items)
        if self.backend == "process-fresh":
            return self._run_processes(items)
        if self.backend == "remote":
            return self._run_remote(items)
        if self.workers == 1:
            results = []
            for name, document in items:
                try:
                    report = _check_document(self.tool, document)
                except Exception as error:  # noqa: BLE001 - isolated
                    results.append(BatchResult(name, error_to_dict(error)))
                    continue
                results.append(
                    BatchResult(
                        name, report_to_dict(report, timings=False), report=report
                    )
                )
            return results
        return self._run_threads(items)

    # ----------------------------------------------------------- backends
    def _run_threads(self, items: List[Tuple[str, Document]]) -> List[BatchResult]:
        translator = self.tool.translator

        def translate(item):
            try:
                return _translate_document(translator, item[1]), None
            except Exception as error:  # noqa: BLE001 - isolated
                return None, error

        def warm(unit):
            try:
                self.tool.check_component(unit[0], unit[1])
            except Exception:  # noqa: BLE001 - warming is best-effort
                pass

        def aggregate(translated):
            translation, error = translated
            if translation is None:
                return None, error
            try:
                return self.tool.check_translated(translation), None
            except Exception as failure:  # noqa: BLE001 - isolated
                return None, failure

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            translations = list(pool.map(translate, items))

            if self.warm_components:
                units = [
                    (component, translation.partition)
                    for translation, _ in translations
                    if translation is not None
                    for component in decompose(list(translation.formulas))
                ]
                # Populate the outcome cache; results are discarded — the
                # aggregation phase re-reads them through the normal path.
                list(pool.map(warm, units))

            reports = list(pool.map(aggregate, translations))
        return [
            BatchResult(
                name, report_to_dict(report, timings=False), report=report
            )
            if report is not None
            else BatchResult(name, error_to_dict(error))
            for (name, _), (report, error) in zip(items, reports)
        ]

    def _run_pool(self, items: List[Tuple[str, Document]]) -> List[BatchResult]:
        """Dispatch onto the persistent sharded pool (warm worker caches)."""
        pool = self.pool
        if pool is None:
            pool = shared_pool(
                tool=self.tool,
                shards=self.workers,
                supervision=self.supervision,
                fault_plan=self.fault_plan,
            )
        tasks = pool.check_documents(items)
        return [BatchResult(task.name, task.data) for task in tasks]

    def _run_remote(self, items: List[Tuple[str, Document]]) -> List[BatchResult]:
        """Dispatch onto registered remote workers via the hub."""
        pool = self.pool
        if pool is None:
            pool = WorkerPool(
                tool=self.tool,
                shards=max(8, 4 * self.workers),
                remote=self.remote,
                supervision=self.supervision,
                fault_plan=self.fault_plan,
            )
            self.pool = pool  # reused (and shut down) by the caller
        tasks = pool.check_documents(items)
        return [BatchResult(task.name, task.data) for task in tasks]

    def _run_processes(self, items: List[Tuple[str, Document]]) -> List[BatchResult]:
        """The pre-pool reference: one fresh tool per task, stone-cold."""
        translator = self.tool.translator
        setup = (self.config, translator.dictionary, translator.signs)
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            dicts = list(pool.map(partial(_process_worker, setup), items))
        return [
            BatchResult(name, data) for (name, _), data in zip(items, dicts)
        ]
