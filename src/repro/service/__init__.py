"""The service layer: SpecCC as a long-lived process.

The paper frames consistency checking as *maintenance* (Figure 1):
engineers edit specifications continuously and re-check after every
change.  The one-shot :class:`repro.SpecCC` façade redoes everything per
call; this package holds the stateful subsystem that exploits the
hash-consed core and the process-wide component/automaton caches:

* :class:`SpecSession` — an editable document session whose ``check``
  re-translates only edited sentences and re-analyses only the
  variable-connected components an edit dirtied.
* :class:`BatchChecker` — concurrent checking of many documents (and of
  the independent components within each) with deterministic,
  sequential-identical verdicts.
* :func:`serve` — a JSON-lines request loop over stdio behind
  ``python -m repro serve`` / ``python -m repro batch``.

All three speak the one machine-readable report format in
:mod:`repro.service.reportjson`, shared with ``python -m repro check
--json``.
"""

from .batch import BatchChecker, BatchResult
from .reportjson import report_to_dict
from .session import SessionDelta, SessionReport, SpecSession
from .server import serve

__all__ = [
    "BatchChecker",
    "BatchResult",
    "SessionDelta",
    "SessionReport",
    "SpecSession",
    "report_to_dict",
    "serve",
]
