"""The service layer: SpecCC as a long-lived process.

The paper frames consistency checking as *maintenance* (Figure 1):
engineers edit specifications continuously and re-check after every
change.  The one-shot :class:`repro.SpecCC` façade redoes everything per
call; this package holds the stateful subsystem that exploits the
hash-consed core and the process-wide component/automaton caches:

* :class:`SpecSession` — an editable document session whose ``check``
  re-translates only edited sentences and re-analyses only the
  variable-connected components an edit dirtied.
* :class:`BatchChecker` — concurrent checking of many documents (and of
  the independent components within each) with deterministic,
  sequential-identical verdicts.
* :class:`WorkerPool` — the persistent sharded process pool behind
  ``backend="process"``: workers spawned once, per-process caches warm
  across tasks, documents routed by content signature to the shard that
  already analysed them.
* :func:`serve` / :func:`serve_async` — JSON-lines request loops over
  stdio behind ``python -m repro serve [--async]`` / ``python -m repro
  batch``; the async form multiplexes many concurrent client sessions.
* :class:`SpecGateway` / :func:`serve_tcp` — the same protocol over TCP
  (``python -m repro serve --tcp HOST:PORT``): per-connection session
  namespacing, token-bucket rate limiting, connection caps, graceful
  drain — see :mod:`~repro.service.gateway`.
* :class:`RemoteWorkerHub` / ``python -m repro worker --connect`` — the
  worker pool across machine boundaries: remote processes register over
  persistent sockets, shards are consistent-hash placed onto them, and
  supervision treats a dropped connection exactly like a worker death
  (respawn = await reconnect) — see :mod:`~repro.service.remote`.
* :mod:`~repro.service.supervision` / :mod:`~repro.service.faults` — the
  fault-tolerance layer: pool dispatch is supervised (retry, respawn,
  watchdog timeout, circuit-breaker degradation to an in-process path),
  and every failure mode is reproducible on schedule through a seeded
  :class:`FaultPlan` (or the ``REPRO_FAULTS`` environment variable).
* :class:`JournalStore` / :mod:`~repro.service.journal` — durable
  sessions for every serve front end (``--journal DIR``): per-session
  write-ahead journals with CRC-framed records, snapshot compaction,
  crash-consistent replay to byte-identical reports, and the ``attach``
  op for reconnect-and-resume with exactly-once edit application.

All of them speak the one machine-readable report format in
:mod:`repro.service.reportjson`, shared with ``python -m repro check
--json``.
"""

from .batch import BatchChecker, BatchResult
from .faults import FaultInjected, FaultPlan, FaultSpec
from .gateway import SpecGateway, TokenBucket, serve_tcp
from .journal import DurableSession, JournalStore, SessionJournal
from .pool import WorkerPool, document_signature, shared_pool, shutdown_shared_pools
from .remote import RemoteWorkerDied, RemoteWorkerHub, run_worker
from .reportjson import error_to_dict, report_to_dict
from .session import SessionDelta, SessionReport, SpecSession
from .server import AsyncSpecServer, ServiceError, serve, serve_async
from .supervision import SupervisionConfig

__all__ = [
    "AsyncSpecServer",
    "BatchChecker",
    "BatchResult",
    "DurableSession",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "JournalStore",
    "RemoteWorkerDied",
    "RemoteWorkerHub",
    "ServiceError",
    "SessionDelta",
    "SessionJournal",
    "SessionReport",
    "SpecGateway",
    "SpecSession",
    "SupervisionConfig",
    "TokenBucket",
    "WorkerPool",
    "document_signature",
    "error_to_dict",
    "report_to_dict",
    "run_worker",
    "serve",
    "serve_async",
    "serve_tcp",
    "shared_pool",
    "shutdown_shared_pools",
]
