"""Supervision of worker-pool task dispatch: retry, respawn, degrade.

Before this layer, one crashed shard surfaced as ``BrokenProcessPool``
on every in-flight future and a single hung worker stalled a batch
forever.  The :class:`Supervisor` sits between the
:class:`~repro.service.pool.WorkerPool`'s per-shard dispatchers and its
executors and guarantees *a result for every task*, in strictly
weakening order of preference:

1. **Retry on the worker** — a task that raised inside the worker
   (deterministic document errors, injected ``raise`` faults) is retried
   up to ``max_attempts`` times with exponential backoff and
   deterministic seeded jitter.
2. **Respawn and retry** — worker death (any ``BrokenExecutor``:
   ``BrokenProcessPool`` locally, a dropped connection's
   :class:`~repro.service.remote.RemoteWorkerDied` remotely) or a
   per-task wall-clock timeout (a hung worker, observed by the watchdog
   ``future.result(timeout=...)``) respawns the shard's worker, then
   retries.  What "respawn" means belongs to the pool's transport:
   terminate + re-initialize the local process, or — for remote workers
   the parent cannot resurrect — disconnect the presumed-hung connection
   and *wait for a reconnect*.  The ladder, the counters and the
   circuit breaker are identical either way.
3. **Degrade in-process** — when attempts are exhausted, or respawn
   itself keeps failing (circuit breaker: ``max_respawn_failures``
   consecutive failures), the task runs on the parent's own sequential
   tool (``BatchChecker(backend="thread")`` semantics).  Results are
   still produced and still byte-identical — the inline path is the same
   pipeline over the same semantically transparent caches — but the
   degradation is logged and counted, never silent.
4. **Error record** — a task that fails deterministically on every
   attempt resolves to the shared error-record shape
   (:func:`repro.service.reportjson.error_to_dict`) instead of raising,
   so one malformed document can never abort its siblings.

Everything the supervisor does is observable through :meth:`stats`
(threaded into ``pool.stats()["supervision"]``, the serve ``stats`` and
``ping`` ops and ``check --stats``), and every decision is deterministic
given the fault schedule: backoff jitter is seeded, the circuit breaker
is a pure function of consecutive respawn failures, and per-shard
dispatch is serialized by the pool, so tests assert *exact* counter
values (``tests/test_pool.py``).
"""

from __future__ import annotations

import logging
import random
import threading
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..obs.trace import span as _obs_span

logger = logging.getLogger("repro.service.supervision")

#: The per-task cache-attribution delta for tasks that never ran on a
#: worker (error records; degraded tasks compute a real one instead).
ZERO_DELTA = {
    "hits": 0,
    "misses": 0,
    "semantics_hits": 0,
    "semantics_misses": 0,
}


class WorkerUnavailable(RuntimeError):
    """Dispatch target has no live executor (died and not yet respawned)."""


@dataclass(frozen=True)
class SupervisionConfig:
    """All supervision knobs in one picklable place."""

    #: Total tries per task (first attempt included).
    max_attempts: int = 3
    #: Exponential backoff between retries: base * factor**(attempt-1),
    #: capped, plus deterministic jitter in [0, jitter] * delay.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.25
    #: Seeds the jitter stream; same seed + same retry sequence = same
    #: delays (the fault plan's seed is the conventional source).
    seed: int = 0
    #: Per-attempt wall-clock timeout (seconds); None disables the
    #: watchdog.  On expiry the worker is presumed hung and respawned.
    task_timeout: Optional[float] = None
    #: Circuit breaker: this many *consecutive* respawn failures degrade
    #: the whole pool to the in-process path.
    max_respawn_failures: int = 3
    #: Allow the in-process fallback.  With degrade=False an unservable
    #: task resolves to an error record instead.
    degrade: bool = True


def backoff_delay(config: SupervisionConfig, key: str, attempt: int) -> float:
    """Deterministic backoff before retry *attempt* (>= 1) of task *key*."""
    base = min(
        config.backoff_cap,
        config.backoff_base * config.backoff_factor ** max(0, attempt - 1),
    )
    rng = random.Random(f"{config.seed}\x00{key}\x00{attempt}")
    return base * (1.0 + config.jitter * rng.random())


class Supervisor:
    """Drives one pool's task dispatch through the retry/respawn ladder.

    *pool* provides the mechanics (duck-typed, so this module never
    imports :mod:`~repro.service.pool`):

    * ``_dispatch(shard, item) -> Future`` — submit to the shard's live
      executor, raising :class:`WorkerUnavailable` when there is none;
    * ``_respawn_shard(shard)`` — bring the shard a healthy worker again
      (terminate + respawn locally; disconnect + await-reconnect for
      remote workers), raising on failure;
    * ``_inline_check(item) -> (data, delta)`` — the sequential
      in-process fallback over the same tool setup.

    The pool serializes calls per shard (one dispatcher thread each), so
    per-shard counter sequences are deterministic.
    """

    def __init__(self, pool, config: SupervisionConfig = SupervisionConfig()) -> None:
        self.pool = pool
        self.config = config
        self._lock = threading.Lock()
        self._circuit_open = False
        self._consecutive_respawn_failures = 0
        # Counters (guarded by _lock; read by stats()).
        self.attempts = 0
        self.retries = 0
        self.restarts = 0
        self.timeouts = 0
        self.worker_deaths = 0
        self.task_errors = 0
        self.respawn_failures = 0
        self.degraded_tasks = 0
        self.error_records = 0

    # ------------------------------------------------------------- running
    @property
    def circuit_open(self) -> bool:
        with self._lock:
            return self._circuit_open

    def run_task(
        self, shard: int, name: str, document
    ) -> Tuple[dict, dict, Optional[str], int]:
        """Produce ``(data, delta, error, attempts)`` for one task, always."""
        config = self.config
        attempt = 0
        while True:
            if self.circuit_open:
                return self._run_degraded(shard, name, document, attempt)
            attempt += 1
            with self._lock:
                self.attempts += 1
            try:
                future = self.pool._dispatch(shard, (name, document))
            except WorkerUnavailable:
                healthy = self._respawn(shard, reason="no live worker")
                if not healthy or attempt >= config.max_attempts:
                    return self._run_degraded(shard, name, document, attempt)
                self._note_retry(name, attempt)
                continue
            try:
                data, delta = future.result(timeout=config.task_timeout)
            except FuturesTimeoutError:
                with self._lock:
                    self.timeouts += 1
                logger.warning(
                    "task %r on shard %d exceeded %.3fs; respawning worker",
                    name, shard, config.task_timeout,
                )
                healthy = self._respawn(shard, reason="task timeout")
            except BrokenExecutor as error:
                with self._lock:
                    self.worker_deaths += 1
                logger.warning(
                    "worker for shard %d died during task %r (%s); respawning",
                    shard, name, error,
                )
                healthy = self._respawn(shard, reason="worker death")
            except Exception as error:  # noqa: BLE001 - the task itself raised
                with self._lock:
                    self.task_errors += 1
                if attempt >= config.max_attempts:
                    return self._error_record(name, error, attempt)
                self._note_retry(name, attempt)
                continue
            else:
                with self._lock:
                    self._consecutive_respawn_failures = 0
                return data, delta, None, attempt
            # Worker death / timeout path: retry on the respawned worker.
            if not healthy or attempt >= config.max_attempts:
                return self._run_degraded(shard, name, document, attempt)
            self._note_retry(name, attempt)

    # ----------------------------------------------------------- internals
    def _note_retry(self, name: str, attempt: int) -> None:
        with self._lock:
            self.retries += 1
        delay = backoff_delay(self.config, name, attempt)
        with _obs_span("pool.backoff", task=name, attempt=attempt, seconds=delay):
            time.sleep(delay)

    def _respawn(self, shard: int, reason: str) -> bool:
        try:
            with _obs_span("pool.respawn", shard=shard, reason=reason):
                self.pool._respawn_shard(shard)
        except Exception as error:  # noqa: BLE001 - counted + degraded
            with self._lock:
                self.respawn_failures += 1
                self._consecutive_respawn_failures += 1
                tripped = (
                    not self._circuit_open
                    and self.config.degrade
                    and self._consecutive_respawn_failures
                    >= self.config.max_respawn_failures
                )
                if tripped:
                    self._circuit_open = True
            logger.error(
                "respawn of shard %d failed after %s (%s)", shard, reason, error
            )
            if tripped:
                logger.error(
                    "circuit breaker open after %d consecutive respawn "
                    "failures: pool degrades to the in-process path",
                    self.config.max_respawn_failures,
                )
            return False
        with self._lock:
            self.restarts += 1
            self._consecutive_respawn_failures = 0
        logger.info("respawned worker for shard %d after %s", shard, reason)
        return True

    def _run_degraded(
        self, shard: int, name: str, document, attempts: int
    ) -> Tuple[dict, dict, Optional[str], int]:
        if not self.config.degrade:
            return self._error_record(
                name,
                WorkerUnavailable(
                    f"shard {shard} unavailable and degradation is disabled"
                ),
                attempts,
            )
        try:
            with _obs_span("pool.degraded", task=name, shard=shard):
                data, delta = self.pool._inline_check((name, document))
        except Exception as error:  # noqa: BLE001 - document itself is broken
            return self._error_record(name, error, attempts)
        with self._lock:
            self.degraded_tasks += 1
        logger.warning(
            "task %r served by the degraded in-process path (shard %d)",
            name, shard,
        )
        return data, delta, None, attempts

    def _error_record(
        self, name: str, error: BaseException, attempts: int
    ) -> Tuple[dict, dict, Optional[str], int]:
        from .reportjson import error_to_dict

        with self._lock:
            self.error_records += 1
        logger.warning(
            "task %r failed on every attempt (%d): %s", name, attempts, error
        )
        return error_to_dict(error), dict(ZERO_DELTA), str(error), attempts

    # ------------------------------------------------------- observability
    def stats(self) -> dict:
        """Plain-data counters; ``degraded`` is the headline gauge."""
        with self._lock:
            return {
                "attempts": self.attempts,
                "retries": self.retries,
                "restarts": self.restarts,
                "timeouts": self.timeouts,
                "worker_deaths": self.worker_deaths,
                "task_errors": self.task_errors,
                "respawn_failures": self.respawn_failures,
                "degraded_tasks": self.degraded_tasks,
                "error_records": self.error_records,
                "circuit_open": self._circuit_open,
                "degraded": self._circuit_open or self.degraded_tasks > 0,
            }


def aggregate_stats(rows: Iterable[dict]) -> dict:
    """Sum the supervision counters of many ``pool.stats()`` rows.

    The serve ``ping``/``health`` op reports one fleet-level summary
    instead of a per-pool list; booleans aggregate by ``any``.
    """
    keys = (
        "attempts",
        "retries",
        "restarts",
        "timeouts",
        "worker_deaths",
        "task_errors",
        "respawn_failures",
        "degraded_tasks",
        "error_records",
    )
    total = {key: 0 for key in keys}
    degraded = False
    circuit_open = False
    for row in rows:
        supervision = row.get("supervision") if isinstance(row, dict) else None
        if not supervision:
            continue
        for key in keys:
            total[key] += int(supervision.get(key, 0))
        degraded = degraded or bool(supervision.get("degraded"))
        circuit_open = circuit_open or bool(supervision.get("circuit_open"))
    total["degraded"] = degraded
    total["circuit_open"] = circuit_open
    return total
