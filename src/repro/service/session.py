"""Incremental specification sessions.

A :class:`SpecSession` is the maintenance loop of Figure 1 made stateful:
requirements are added, updated and removed by identifier, and every
:meth:`SpecSession.check` re-translates only the sentences an edit
touched and re-analyses only the variable-connected components those
sentences dirtied.  Everything else is served from the analysis graph
underneath:

* sentence parses, vocabulary nodes, raw formulas and theta rewrites
  come from the session's graph-backed
  :class:`~repro.translate.translator.TranslationCache`;
* Algorithm 1 runs per vocabulary component through the process-wide
  ``semantics`` stage, so an edit re-analyses only sentences whose
  antonym vocabulary it intersects (the delta names them);
* component verdicts come from the shared graph's ``components`` stage,
  keyed by (interned formulas, local I/O split) and therefore hit by
  every component the edit left untouched — including across the repair
  and localization loops.

The session never *computes* differently from the one-shot pipeline: each
check runs the ordinary :meth:`repro.SpecCC.check_translated`, so verdicts
are identical to a fresh run by construction; the caches only make the
unchanged parts cheap.  The :class:`SessionReport` wraps the ordinary
:class:`~repro.core.pipeline.ConsistencyReport` with the delta — which
identifiers were edited, which components were re-analysed vs. reused,
and which component verdicts changed since the previous check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.pipeline import ConsistencyReport, SpecCC
from ..nlp.tokenizer import split_sentences
from ..obs.trace import get_tracer, span as _obs_span
from ..synthesis.realizability import Verdict

#: The disjoint top-level pipeline stages the per-check timing breakdown
#: sums span durations over (each covers a non-overlapping slice of the
#: check, so the values add up to "time accounted for").
_STAGE_SPAN_NAMES = (
    "translate",
    "pipeline.realizability",
    "pipeline.repair",
    "pipeline.localization",
)


@dataclass(frozen=True)
class ComponentDelta:
    """One component's status relative to the previous check."""

    identifiers: Tuple[str, ...]
    verdict: Verdict
    reanalyzed: bool  # not present (same formulas + local split) last check
    previous_verdict: Optional[Verdict] = None  # None: component is new


@dataclass
class SessionDelta:
    """What one :meth:`SpecSession.check` actually had to do.

    ``cache_hits``/``cache_misses`` are deltas of the process-wide
    component-cache counters across this check; they are exact while the
    session is the only checker running (the serve daemon, tests,
    benchmarks).  Concurrent checking elsewhere in the process bleeds
    into the window — sessions are single-threaded by design.
    """

    edited: Tuple[str, ...]  # identifiers touched since the previous check
    components: Tuple[ComponentDelta, ...] = ()
    cache_hits: int = 0  # component-outcome cache hits during this check
    cache_misses: int = 0  # ... and misses (= component analyses run)
    #: Algorithm 1 attribution: vocabulary components in the document, and
    #: the identifiers of sentences whose component this check re-analysed
    #: (deterministic — derived from the session's own graph, not from the
    #: process-wide counters).
    semantics_components: int = 0
    semantics_reanalysed: Tuple[str, ...] = ()
    #: Process-wide semantics-memo traffic across this check (exact while
    #: the session is the only checker running, like cache_hits/misses).
    semantics_hits: int = 0
    semantics_misses: int = 0
    #: Per-stage wall-clock seconds for this check, summed from the active
    #: tracer's spans (empty when tracing is off).  Volatile by nature —
    #: the byte-identity machinery strips it (``VOLATILE_DELTA_FIELDS``).
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def reanalyzed(self) -> Tuple[ComponentDelta, ...]:
        return tuple(c for c in self.components if c.reanalyzed)

    @property
    def reused(self) -> Tuple[ComponentDelta, ...]:
        return tuple(c for c in self.components if not c.reanalyzed)

    def changed_verdicts(self) -> Tuple[ComponentDelta, ...]:
        return tuple(
            c
            for c in self.components
            if c.previous_verdict is not None and c.previous_verdict is not c.verdict
        )


@dataclass
class SessionReport:
    """A delta-aware consistency report: one check of a live session."""

    report: ConsistencyReport
    delta: SessionDelta
    revision: int  # monotonically increasing per completed check
    seconds: float = 0.0

    @property
    def verdict(self) -> Verdict:
        return self.report.verdict

    @property
    def consistent(self) -> bool:
        return self.report.consistent

    def summary(self) -> str:
        lines = [self.report.summary()]
        lines.append(
            f"delta: {len(self.delta.edited)} edit(s), "
            f"{len(self.delta.reanalyzed)}/{len(self.delta.components)} "
            f"component(s) re-analyzed"
        )
        for component in self.delta.changed_verdicts():
            was = component.previous_verdict.value if component.previous_verdict else "?"
            lines.append(
                f"  [{', '.join(component.identifiers)}] "
                f"{was} -> {component.verdict.value}"
            )
        return "\n".join(lines)


class SpecSession:
    """A stateful, incrementally re-checked requirement document."""

    def __init__(self, tool: Optional[SpecCC] = None) -> None:
        self.tool = tool if tool is not None else SpecCC()
        self._cache = self.tool.translator.new_cache()
        self._created = time.monotonic()
        self._order: List[str] = []
        self._sentences: Dict[str, str] = {}
        self._edited: Set[str] = set()
        self._revision = 0
        self._last: Optional[SessionReport] = None
        # Component fingerprint -> verdict, as of the previous check.  The
        # fingerprint is (formulas, local inputs, local outputs): exactly
        # what the realizability layer's outcome cache is keyed by, so
        # "seen before" here predicts a cache hit there.
        self._seen: Dict[tuple, Verdict] = {}
        # Identifier-tuple -> verdict: fingerprints change with every edit,
        # so verdict *transitions* are matched by requirement membership.
        self._verdicts: Dict[Tuple[str, ...], Verdict] = {}

    # ----------------------------------------------------------- editing
    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._sentences

    def identifiers(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def requirements(self) -> List[Tuple[str, str]]:
        """The current document as ``(identifier, sentence)`` pairs."""
        return [(identifier, self._sentences[identifier]) for identifier in self._order]

    def add(self, identifier: str, sentence: str) -> None:
        if identifier in self._sentences:
            raise ValueError(f"requirement {identifier!r} already exists")
        self._order.append(identifier)
        self._sentences[identifier] = sentence
        self._edited.add(identifier)

    def update(self, identifier: str, sentence: str) -> None:
        if identifier not in self._sentences:
            raise KeyError(f"no requirement {identifier!r}")
        if self._sentences[identifier] == sentence:
            return  # no-op edits dirty nothing
        self._sentences[identifier] = sentence
        self._edited.add(identifier)

    def remove(self, identifier: str) -> None:
        if identifier not in self._sentences:
            raise KeyError(f"no requirement {identifier!r}")
        self._order.remove(identifier)
        del self._sentences[identifier]
        self._edited.add(identifier)

    def load_document(self, document: str) -> Tuple[str, ...]:
        """Bulk-add a plain-text document; requirements continue R1..Rn."""
        added = []
        number = len(self._order) + 1
        for sentence in split_sentences(document):
            while f"R{number}" in self._sentences:
                number += 1
            identifier = f"R{number}"
            self.add(identifier, sentence)
            added.append(identifier)
            number += 1
        return tuple(added)

    # ------------------------------------------------------- durability
    def snapshot_state(self) -> dict:
        """The mutation-relevant state a journal snapshot persists.

        Deliberately minimal: the document (ordered ``[id, sentence]``
        pairs), the revision counter, and any identifiers edited since
        the last check.  Everything else a session carries — the delta
        baseline (``_seen``/``_verdicts``), the last report, the
        translation cache — is *derived* state that
        :meth:`restore_snapshot` rebuilds deterministically by re-running
        one check, so it never needs to hit the disk.
        """
        return {
            "requirements": [
                [identifier, self._sentences[identifier]]
                for identifier in self._order
            ],
            "revision": self._revision,
            "edited": sorted(self._edited),
        }

    def restore_snapshot(self, state: dict) -> None:
        """Rebuild this (fresh) session from a :meth:`snapshot_state` dict.

        The document is re-added in order; if the snapshot had completed
        at least one check, one rebuild check re-derives the delta
        baseline — analysis is deterministic, so ``_seen``/``_verdicts``
        and the last report body come out identical to the state the
        snapshotted session carried — and the revision counter is then
        restored so subsequent checks continue the original numbering.
        """
        if self._order or self._revision:
            raise ValueError("snapshots restore only into fresh sessions")
        for identifier, sentence in state["requirements"]:
            self.add(str(identifier), str(sentence))
        revision = int(state["revision"])
        if revision > 0:
            rebuilt = self.check()
            self._revision = revision
            rebuilt.revision = revision
        self._edited = set(str(identifier) for identifier in state.get("edited", ()))

    def stats(self) -> dict:
        """Lightweight health row: size, revision, pending edits, age.

        The serve ``ping``/``health`` op aggregates these across live
        sessions without running any analysis.
        """
        return {
            "size": len(self._order),
            "revision": self._revision,
            "pending_edits": len(self._edited),
            "age_seconds": time.monotonic() - self._created,
        }

    # ---------------------------------------------------------- checking
    @property
    def revision(self) -> int:
        return self._revision

    @property
    def last_report(self) -> Optional[SessionReport]:
        return self._last

    def check(self) -> SessionReport:
        """Re-check the document, reusing everything an edit did not dirty."""
        start = time.perf_counter()
        edited = tuple(sorted(self._edited))
        stats_before = self.tool.cache_stats()
        tracer = get_tracer()
        mark = tracer.mark() if tracer is not None else 0
        with _obs_span(
            "session.check", revision=self._revision + 1, edits=len(edited)
        ) as sp:
            translation = self.tool.translator.translate(
                self.requirements(), self._cache
            )
            report = self.tool.check_translated(translation)
            sp.set(verdict=report.verdict.value)
        stage_seconds: Dict[str, float] = {}
        if tracer is not None:
            for record in tracer.records_since(mark):
                if record["name"] in _STAGE_SPAN_NAMES:
                    stage_seconds[record["name"]] = (
                        stage_seconds.get(record["name"], 0.0)
                        + record["dur"] / 1e6
                    )
        stats_after = self.tool.cache_stats()

        identifiers = [req.identifier for req in translation.requirements]
        input_set = frozenset(report.partition.inputs)
        output_set = frozenset(report.partition.outputs)
        seen: Dict[tuple, Verdict] = {}
        verdicts: Dict[Tuple[str, ...], Verdict] = {}
        components = []
        for part in report.realizability.components:
            fingerprint = (
                part.component.formulas,
                tuple(sorted(part.component.variables & input_set)),
                tuple(sorted(part.component.variables & output_set)),
            )
            ids = tuple(identifiers[index] for index in part.component.indices)
            components.append(
                ComponentDelta(
                    identifiers=ids,
                    verdict=part.verdict,
                    reanalyzed=fingerprint not in self._seen,
                    previous_verdict=self._verdicts.get(ids),
                )
            )
            seen[fingerprint] = part.verdict
            verdicts[ids] = part.verdict

        semantics = translation.semantics_delta
        delta = SessionDelta(
            edited=edited,
            components=tuple(components),
            cache_hits=stats_after["component_cache"]["hits"]
            - stats_before["component_cache"]["hits"],
            cache_misses=stats_after["component_cache"]["misses"]
            - stats_before["component_cache"]["misses"],
            semantics_components=semantics.components if semantics else 0,
            semantics_reanalysed=tuple(
                identifiers[index] for index in semantics.reanalysed
            )
            if semantics
            else (),
            semantics_hits=stats_after["semantics"]["hits"]
            - stats_before["semantics"]["hits"],
            semantics_misses=stats_after["semantics"]["misses"]
            - stats_before["semantics"]["misses"],
            stage_seconds=stage_seconds,
        )
        self._seen = seen
        self._verdicts = verdicts
        self._edited.clear()
        self._revision += 1
        session_report = SessionReport(
            report=report,
            delta=delta,
            revision=self._revision,
            seconds=time.perf_counter() - start,
        )
        self._last = session_report
        return session_report
