"""The long-lived service loop: JSON-lines requests over stdio.

``python -m repro serve`` reads one JSON object per line from stdin and
writes one JSON response per line to stdout, holding a single
:class:`~repro.service.session.SpecSession` (plus the shared process
caches) alive between requests — the daemon form of the paper's
edit/re-check maintenance loop.

Protocol (request ``op`` → response fields beyond ``{"ok": true, "op":
...}``):

* ``add`` / ``update`` — ``{"id": "R1", "text": "..."}``; ``remove`` —
  ``{"id": "R1"}``.  Respond with ``{"size": n}``.
* ``load`` — ``{"document": "..."}`` bulk-adds sentences; responds with
  ``{"added": [...], "size": n}``.
* ``check`` — responds with ``{"report": {...}, "delta": {...},
  "revision": n}``; the report is the shared
  :func:`~repro.service.reportjson.report_to_dict` format.
* ``batch`` — ``{"documents": [{"name": ..., "text": ...}, ...],
  "workers": 4}``; responds with ``{"results": [{"name": ...,
  "report": {...}}, ...]}`` in input order.
* ``stats`` — cache statistics; ``reset`` — fresh session;
  ``shutdown`` — acknowledge and exit the loop.

Malformed requests produce ``{"ok": false, "error": "..."}`` and the loop
continues: a broken client line must not take the daemon down.
"""

from __future__ import annotations

import json
import sys
from typing import IO, Optional

from ..core.pipeline import SpecCC
from .batch import BatchChecker
from .reportjson import report_to_dict
from .session import SessionReport, SpecSession


def _delta_to_dict(report: SessionReport) -> dict:
    delta = report.delta
    return {
        "edited": list(delta.edited),
        "components": [
            {
                "identifiers": list(component.identifiers),
                "verdict": component.verdict.value,
                "reanalyzed": component.reanalyzed,
                "previous_verdict": (
                    component.previous_verdict.value
                    if component.previous_verdict is not None
                    else None
                ),
            }
            for component in delta.components
        ],
        "reanalyzed": len(delta.reanalyzed),
        "reused": len(delta.reused),
        "cache_hits": delta.cache_hits,
        "cache_misses": delta.cache_misses,
    }


class _Server:
    """Dispatches one session's worth of requests."""

    def __init__(self, tool: Optional[SpecCC] = None) -> None:
        self.tool = tool if tool is not None else SpecCC()
        self.session = SpecSession(self.tool)
        self.running = True

    def handle(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if op is None or handler is None:
            raise ValueError(f"unknown op {op!r}")
        return handler(request)

    @staticmethod
    def _require(request: dict, key: str):
        if key not in request:
            raise ValueError(f"missing field {key!r}")
        return request[key]

    def _op_add(self, request: dict) -> dict:
        self.session.add(
            str(self._require(request, "id")), str(self._require(request, "text"))
        )
        return {"size": len(self.session)}

    def _op_update(self, request: dict) -> dict:
        self.session.update(
            str(self._require(request, "id")), str(self._require(request, "text"))
        )
        return {"size": len(self.session)}

    def _op_remove(self, request: dict) -> dict:
        self.session.remove(str(self._require(request, "id")))
        return {"size": len(self.session)}

    def _op_load(self, request: dict) -> dict:
        added = self.session.load_document(str(self._require(request, "document")))
        return {"added": list(added), "size": len(self.session)}

    def _op_check(self, request: dict) -> dict:
        timings = bool(request.get("timings", True))
        session_report = self.session.check()
        return {
            "report": report_to_dict(session_report.report, timings=timings),
            "delta": _delta_to_dict(session_report),
            "revision": session_report.revision,
            "seconds": session_report.seconds if timings else None,
        }

    def _op_batch(self, request: dict) -> dict:
        documents = self._require(request, "documents")
        items = []
        for entry in documents:
            name = str(entry.get("name", f"doc{len(items) + 1}"))
            if "text" in entry:
                items.append((name, str(entry["text"])))
            elif "requirements" in entry:
                items.append(
                    (
                        name,
                        [(str(i), str(t)) for i, t in entry["requirements"]],
                    )
                )
            else:
                raise ValueError(f"document {name!r} has neither text nor requirements")
        # Share the session's tool so batch requests judge documents with
        # the same dictionary/signs as session checks.
        checker = BatchChecker(
            tool=self.tool,
            workers=int(request.get("workers", 4)),
            backend=str(request.get("backend", "thread")),
        )
        results = checker.check_documents(items)
        return {
            "results": [
                {"name": result.name, "report": result.data} for result in results
            ]
        }

    def _op_stats(self, request: dict) -> dict:
        return {"cache": self.tool.cache_stats(), "size": len(self.session)}

    def _op_reset(self, request: dict) -> dict:
        self.session = SpecSession(self.tool)
        return {"size": 0}

    def _op_shutdown(self, request: dict) -> dict:
        self.running = False
        return {}


def serve(
    stdin: Optional[IO[str]] = None,
    stdout: Optional[IO[str]] = None,
    tool: Optional[SpecCC] = None,
) -> int:
    """Run the JSON-lines loop until EOF or a ``shutdown`` request."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    server = _Server(tool)
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            response = {"ok": True, "op": request.get("op")}
            response.update(server.handle(request))
        except Exception as error:  # noqa: BLE001 - the daemon must survive
            response = {"ok": False, "error": str(error)}
        stdout.write(json.dumps(response, sort_keys=True) + "\n")
        stdout.flush()
        if not server.running:
            break
    return 0
