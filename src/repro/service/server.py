"""The long-lived service loop: JSON-lines requests over stdio.

``python -m repro serve`` reads one JSON object per line from stdin and
writes one JSON response per line to stdout, holding a single
:class:`~repro.service.session.SpecSession` (plus the shared process
caches) alive between requests — the daemon form of the paper's
edit/re-check maintenance loop.

Protocol (request ``op`` → response fields beyond ``{"ok": true, "op":
...}``):

* ``add`` / ``update`` — ``{"id": "R1", "text": "..."}``; ``remove`` —
  ``{"id": "R1"}``.  Respond with ``{"size": n}``.
* ``load`` — ``{"document": "..."}`` bulk-adds sentences; responds with
  ``{"added": [...], "size": n}``.
* ``check`` — responds with ``{"report": {...}, "delta": {...},
  "revision": n}``; the report is the shared
  :func:`~repro.service.reportjson.report_to_dict` format.
* ``batch`` — ``{"documents": [{"name": ..., "text": ...}, ...],
  "workers": 4}``; responds with ``{"results": [{"name": ...,
  "report": {...}}, ...]}`` in input order.
* ``stats`` — cache statistics; ``reset`` — fresh session;
  ``shutdown`` — acknowledge and exit the loop.
* ``metrics`` — the unified observability snapshot
  (:mod:`repro.obs.metrics`): native counters/gauges/histograms plus the
  collected ``pipeline``/``sat``/``game``/``pool``/``supervision``
  namespaces.  Additionally, *any* request may carry ``"trace": true``:
  the request runs under a per-request tracer and its span records come
  back on the response under the volatile ``"trace"`` field.

* ``ping`` / ``health`` — liveness without analysis: uptime, session
  count and stats, and the worker pools' supervision counters
  (restarts/retries/timeouts/degraded — see
  :mod:`repro.service.supervision`); ``status`` is ``"degraded"`` when
  any pool is running on its in-process fallback.

Malformed requests produce ``{"ok": false, "error": "...", "code":
"..."}`` and the loop continues: a broken client line must not take the
daemon down — this holds on both the sync and the async paths.  The
``code`` field is machine-readable and closed: ``bad_json`` (unparsable
line), ``bad_request`` (parsable but invalid — unknown op, missing or
malformed fields), ``oversized`` (raw line exceeds the request byte
bound), ``timeout`` (the per-request deadline elapsed), ``overloaded``
(a session's queue hit its backpressure bound), ``internal`` (anything
else; the daemon survives and says so rather than dropping the
connection).

**Async front end** (``python -m repro serve --async``): the same
protocol over an asyncio event loop that multiplexes *many* concurrent
clients/sessions on one stream.  Every request may carry ``"session":
"<name>"`` (default ``"default"``) selecting an isolated
:class:`SpecSession`, and an optional ``"rid"`` correlation id; both are
echoed on the response, which is required because responses from
different sessions may interleave.  Requests within one session are
processed strictly in arrival order (per-session locks), so per-session
responses are identical to a sequential run; blocking ``check`` ops run
on an executor thread and ``batch`` ops default to the persistent
sharded :mod:`~repro.service.pool` workers, so long analyses never stall
interactive ``add``/``update`` edits on other sessions.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import IO, Optional

from ..core.pipeline import SpecCC
from .batch import BatchChecker
from .reportjson import report_to_dict
from .session import SessionReport, SpecSession

#: Default bound on one raw request line (1 MiB): a runaway client must
#: not be able to buffer arbitrary bytes into the daemon.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20


def line_exceeds_bytes(line: str, bound: int) -> bool:
    """True when *line*'s UTF-8 encoding exceeds *bound* bytes.

    The bound is a *byte* bound (the resource being protected is buffer
    memory), so it must be measured on the encoded length: a character
    count undercounts multi-byte UTF-8 by up to 4x.  The character count
    still serves as a cheap two-sided filter — ``len(line) > bound``
    means the bytes exceed it too, and ``len(line) * 4 <= bound`` means
    even all-4-byte text cannot reach it — so the encode only runs for
    lines near the bound.  The TCP gateway never gets here: it reads raw
    bytes off the socket and bounds them before decoding.
    """
    if len(line) > bound:
        return True
    if len(line) * 4 <= bound:
        return False
    return len(line.encode("utf-8")) > bound


class ServiceError(Exception):
    """A request failure with a machine-readable *code* (see module doc)."""

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


def error_code(error: BaseException) -> str:
    """The structured code for *error* — shared by sync and async paths,
    so the two loops emit identical error responses for identical
    failures (the normalize-and-compare tests rely on this)."""
    if isinstance(error, ServiceError):
        return error.code
    if isinstance(error, (FuturesTimeoutError, asyncio.TimeoutError)):
        return "timeout"
    if isinstance(error, (ValueError, KeyError, TypeError)):
        return "bad_request"
    return "internal"


def error_response(error: BaseException) -> dict:
    return {"ok": False, "error": str(error), "code": error_code(error)}


def _delta_to_dict(report: SessionReport) -> dict:
    delta = report.delta
    return {
        "edited": list(delta.edited),
        "components": [
            {
                "identifiers": list(component.identifiers),
                "verdict": component.verdict.value,
                "reanalyzed": component.reanalyzed,
                "previous_verdict": (
                    component.previous_verdict.value
                    if component.previous_verdict is not None
                    else None
                ),
            }
            for component in delta.components
        ],
        "reanalyzed": len(delta.reanalyzed),
        "reused": len(delta.reused),
        "cache_hits": delta.cache_hits,
        "cache_misses": delta.cache_misses,
        "semantics_components": delta.semantics_components,
        "semantics_reanalysed": list(delta.semantics_reanalysed),
        "semantics_hits": delta.semantics_hits,
        "semantics_misses": delta.semantics_misses,
        "stage_seconds": dict(delta.stage_seconds),
    }


class _Server:
    """Dispatches one session's worth of requests."""

    def __init__(
        self,
        tool: Optional[SpecCC] = None,
        default_batch_backend: str = "thread",
        batch_pool=None,
        journal_store=None,
    ) -> None:
        """*batch_pool* pins a specific :class:`~repro.service.pool.
        WorkerPool` for ``batch`` requests (the TCP gateway passes its
        remote-worker pool here); without one, ``backend="process"``
        falls back to the shared registry pool.  *journal_store* (a
        :class:`~repro.service.journal.JournalStore`) enables the
        ``attach`` op: once attached to a durable session token, every
        mutation is write-ahead journaled before it is acknowledged and
        integer ``rid``\\ s are deduplicated for exactly-once retries."""
        self.tool = tool if tool is not None else SpecCC()
        self.session = SpecSession(self.tool)
        self.default_batch_backend = default_batch_backend
        self.batch_pool = batch_pool
        self.journal_store = journal_store
        #: The :class:`~repro.service.journal.DurableSession` this server
        #: is attached to, or None for a plain in-memory session.
        self.durable = None
        self.running = True
        self._started = time.monotonic()

    # -------------------------------------------------------- durability
    def adopt(self, durable) -> None:
        """Bind this server to *durable* (its session becomes ours)."""
        self.durable = durable
        self.session = durable.session

    @staticmethod
    def attach_response(durable) -> dict:
        """The ``attach`` handshake payload: everything a resuming
        client needs to resynchronise — most importantly ``last_rid``,
        the largest integer rid the journal has durably applied, which
        tells the client whether its unacknowledged in-flight edit
        landed before the crash (retry it either way: rids at or below
        the watermark are deduplicated, not re-applied)."""
        return {
            "token": durable.token,
            "size": len(durable.session),
            "revision": durable.session.revision,
            "last_rid": durable.last_rid,
            "replayed_records": durable.replayed_records,
        }

    @staticmethod
    def _journal_rid(request: dict):
        """The request's rid, when it can participate in exactly-once
        tracking (integers only — the protocol allows arbitrary rids for
        correlation, but the dedupe watermark needs an order)."""
        rid = request.get("rid")
        return rid if isinstance(rid, int) and not isinstance(rid, bool) else None

    def _duplicate(self, request: dict) -> Optional[dict]:
        """The duplicate-ack for an already-journaled rid, or None.

        A rid at or below the journal's watermark was durably applied
        before a (possibly lost) acknowledgement: re-acknowledge without
        re-applying.  Requires clients to send monotonically increasing
        integer rids per durable session — the ``attach`` response's
        ``last_rid`` is the resume point.
        """
        if self.durable is None:
            return None
        rid = self._journal_rid(request)
        if rid is None or self.durable.last_rid is None or rid > self.durable.last_rid:
            return None
        self.durable.journal.store.record_duplicate()
        return {
            "size": len(self.session),
            "revision": self.session.revision,
            "duplicate": True,
        }

    def _journal(self, record: dict, request: dict) -> None:
        """Write-ahead append *record* (a just-applied mutation) before
        the acknowledgement leaves; advances the rid watermark."""
        if self.durable is None:
            return
        rid = self._journal_rid(request)
        if rid is not None:
            record["rid"] = rid
        self.durable.journal.append(record)
        if rid is not None:
            self.durable.last_rid = rid

    def handle(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if op is None or handler is None:
            raise ValueError(f"unknown op {op!r}")
        if not request.get("trace"):
            return handler(request)
        # Per-request tracing: a fresh tracer scoped to this request (the
        # context variable overrides any process tracer, so concurrent
        # requests keep separate traces), its spans shipped back to the
        # client on the response under the volatile "trace" field.
        from ..obs.trace import Tracer, activated, span

        attrs = {"session": str(request.get("session", "default"))}
        if "rid" in request:
            attrs["rid"] = request["rid"]
        tracer = Tracer(name=f"serve.{op}")
        with activated(tracer):
            with span(f"serve.{op}", **attrs):
                result = handler(request)
        result = dict(result)
        result["trace"] = tracer.drain()
        return result

    @staticmethod
    def _require(request: dict, key: str):
        if key not in request:
            raise ValueError(f"missing field {key!r}")
        return request[key]

    def _op_attach(self, request: dict) -> dict:
        """Bind this server to a durable session token (see the journal
        module): recover-or-create, and return the resume handshake."""
        if self.journal_store is None:
            raise ServiceError(
                "durable sessions are not enabled (start serve with --journal DIR)"
            )
        token = str(self._require(request, "token"))
        self.adopt(self.journal_store.attach(token, self.tool))
        return self.attach_response(self.durable)

    def _op_add(self, request: dict) -> dict:
        duplicate = self._duplicate(request)
        if duplicate is not None:
            return duplicate
        identifier = str(self._require(request, "id"))
        text = str(self._require(request, "text"))
        self.session.add(identifier, text)
        self._journal({"op": "add", "id": identifier, "text": text}, request)
        return {"size": len(self.session)}

    def _op_update(self, request: dict) -> dict:
        duplicate = self._duplicate(request)
        if duplicate is not None:
            return duplicate
        identifier = str(self._require(request, "id"))
        text = str(self._require(request, "text"))
        self.session.update(identifier, text)
        self._journal({"op": "update", "id": identifier, "text": text}, request)
        return {"size": len(self.session)}

    def _op_remove(self, request: dict) -> dict:
        duplicate = self._duplicate(request)
        if duplicate is not None:
            return duplicate
        identifier = str(self._require(request, "id"))
        self.session.remove(identifier)
        self._journal({"op": "remove", "id": identifier}, request)
        return {"size": len(self.session)}

    def _op_load(self, request: dict) -> dict:
        duplicate = self._duplicate(request)
        if duplicate is not None:
            return duplicate
        document = str(self._require(request, "document"))
        added = self.session.load_document(document)
        self._journal({"op": "load", "document": document}, request)
        return {"added": list(added), "size": len(self.session)}

    def _op_check(self, request: dict) -> dict:
        timings = bool(request.get("timings", True))
        duplicate = self._duplicate(request)
        if duplicate is not None:
            # The check this rid named already ran (and was journaled);
            # re-acknowledge with its report.  The original delta
            # belonged to the lost acknowledgement and is not replayable
            # in isolation, so the duplicate ack carries none.
            last = self.session.last_report
            duplicate.pop("size", None)
            if last is not None:
                duplicate["report"] = report_to_dict(last.report, timings=timings)
                duplicate["revision"] = last.revision
                duplicate["seconds"] = None
            return duplicate
        session_report = self.session.check()
        self._journal({"op": "check"}, request)
        if self.durable is not None and self.durable.journal.should_compact():
            # Compaction only at check boundaries: the session has no
            # pending edits, so one snapshot record captures it exactly.
            self.durable.journal.compact(self.session, self.durable.last_rid)
        return {
            "report": report_to_dict(session_report.report, timings=timings),
            "delta": _delta_to_dict(session_report),
            "revision": session_report.revision,
            "seconds": session_report.seconds if timings else None,
        }

    #: Upper bound on client-requested batch worker/shard counts.  The
    #: process backend keeps one persistent pool per distinct shard count
    #: alive for the daemon's lifetime, so the request field must not be
    #: able to spawn workers without bound.
    MAX_BATCH_WORKERS = 8

    def _op_batch(self, request: dict) -> dict:
        documents = self._require(request, "documents")
        if not isinstance(documents, (list, tuple)):
            raise ValueError(
                "documents must be an array of objects, got "
                f"{type(documents).__name__}"
            )
        items = []
        for position, entry in enumerate(documents):
            # Shape-checked explicitly: a list or string entry would raise
            # AttributeError below, which error_code() classifies as
            # "internal" — but a malformed request is the client's fault
            # and must say "bad_request" on both the sync and async paths.
            if not isinstance(entry, dict):
                raise ValueError(
                    f"documents[{position}] must be an object with 'text' "
                    f"or 'requirements', got {type(entry).__name__}"
                )
            name = str(entry.get("name", f"doc{len(items) + 1}"))
            if "text" in entry:
                items.append((name, str(entry["text"])))
            elif "requirements" in entry:
                items.append(
                    (
                        name,
                        [(str(i), str(t)) for i, t in entry["requirements"]],
                    )
                )
            else:
                raise ValueError(f"document {name!r} has neither text nor requirements")
        # Share the session's tool so batch requests judge documents with
        # the same dictionary/signs as session checks.
        checker = BatchChecker(
            tool=self.tool,
            workers=max(1, min(int(request.get("workers", 4)), self.MAX_BATCH_WORKERS)),
            backend=str(request.get("backend", self.default_batch_backend)),
            pool=self.batch_pool,
        )
        results = checker.check_documents(items)
        return {
            "results": [
                {"name": result.name, "report": result.data} for result in results
            ]
        }

    def _op_stats(self, request: dict) -> dict:
        from .pool import shared_pool_stats
        from .reportjson import stats_to_dict

        payload = stats_to_dict(
            self.tool,
            pools=shared_pool_stats(),
            journal=(
                self.journal_store.stats() if self.journal_store is not None else None
            ),
        )
        payload["size"] = len(self.session)
        return payload

    def _op_metrics(self, request: dict) -> dict:
        """The full :class:`~repro.obs.metrics.MetricsRegistry` snapshot:
        native counters/gauges/histograms plus every collected namespace
        (``pipeline``/``sat``/``game``/``pool``/``supervision``).  Pass
        ``"full": false`` to drop the histogram bucket arrays."""
        from ..obs.metrics import registry

        return {"metrics": registry().snapshot(full=bool(request.get("full", True)))}

    def _op_ping(self, request: dict) -> dict:
        """Liveness + supervision summary, no analysis work."""
        from .pool import shared_pool_stats
        from .supervision import aggregate_stats

        supervision = aggregate_stats(shared_pool_stats())
        return {
            "status": "degraded" if supervision["degraded"] else "ok",
            "uptime_seconds": time.monotonic() - self._started,
            "sessions": 1,
            "session_stats": self.session.stats(),
            "supervision": supervision,
        }

    def _op_health(self, request: dict) -> dict:
        return self._op_ping(request)

    def _op_reset(self, request: dict) -> dict:
        duplicate = self._duplicate(request)
        if duplicate is not None:
            return duplicate
        self.session = SpecSession(self.tool)
        if self.durable is not None:
            self.durable.session = self.session
            self._journal({"op": "reset"}, request)
        return {"size": 0}

    def _op_shutdown(self, request: dict) -> dict:
        self.running = False
        return {}


# ------------------------------------------------------------------- async
#: Response fields that legitimately differ between a concurrent async
#: run and a dedicated sequential one: correlation echoes, wall-clock
#: seconds, and observability counters concurrent sessions bleed into
#: (see :class:`~repro.service.session.SessionDelta`).  Anything
#: comparing async responses against sequential references (the service
#: benchmark and the test suite both do) strips exactly these — one
#: list, so the two comparisons cannot drift apart.
VOLATILE_RESPONSE_FIELDS = (
    "session",
    "rid",
    "seconds",
    "pools",
    "sessions",
    "supervision",
    "uptime_seconds",
    "session_stats",
    "trace",
    "metrics",
    "histograms",
    "journal",
    "replayed_records",
)
VOLATILE_DELTA_FIELDS = (
    "cache_hits",
    "cache_misses",
    "semantics_hits",
    "semantics_misses",
    "stage_seconds",
)


def normalize_response(response: dict) -> dict:
    """Copy of *response* with the volatile fields stripped.

    What remains — reports, verdicts, deltas, revisions — is a pure
    function of the session's request sequence, so it must compare equal
    (byte-for-byte once serialized with ``sort_keys``) against a
    dedicated sequential ``serve`` run.
    """
    response = dict(response)
    for key in VOLATILE_RESPONSE_FIELDS:
        response.pop(key, None)
    delta = response.get("delta")
    if isinstance(delta, dict):
        response["delta"] = {
            key: value
            for key, value in delta.items()
            if key not in VOLATILE_DELTA_FIELDS
        }
    return response


class AsyncSpecServer:
    """Multiplexes many concurrent client sessions over one event loop.

    Each ``"session"`` name owns an isolated :class:`_Server` (its own
    :class:`SpecSession`) sharing the process-wide tool and caches, plus
    an :class:`asyncio.Lock` that serialises that session's requests in
    arrival order — so every session observes exactly the semantics of a
    dedicated sequential ``serve`` loop, while different sessions make
    progress concurrently.  Blocking ``check``/``batch`` work runs on an
    executor thread (``batch`` defaults to ``backend="process"``, i.e.
    the persistent sharded worker pool), keeping the loop free for
    interactive edits.
    """

    #: Ops that can run long: handled off-loop so one session's analysis
    #: never blocks another session's edits.  ``stats``/``ping``/``health``
    #: are here because they read ``pool.stats()``, whose lock a concurrent
    #: batch may hold for the whole worker spawn while the pool starts up.
    OFFLOADED_OPS = frozenset({"check", "batch", "stats", "metrics", "ping", "health"})
    #: The protocol surface; requests are validated against this *before*
    #: a session is created, so invalid traffic cannot allocate state.
    VALID_OPS = frozenset(
        name[len("_op_"):] for name in vars(_Server) if name.startswith("_op_")
    )

    def __init__(
        self,
        tool: Optional[SpecCC] = None,
        default_batch_backend: str = "process",
        max_sessions: int = 256,
        request_timeout: Optional[float] = None,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        max_queue: int = 64,
        batch_pool=None,
        journal_store=None,
    ) -> None:
        """*max_sessions* bounds the number of concurrently held client
        sessions: each named session keeps a :class:`SpecSession` alive
        for the daemon's lifetime, so client-chosen names must not be
        able to grow memory without bound.

        *request_timeout* is a per-request wall-clock deadline (None
        disables it): a request that exceeds it gets a structured
        ``timeout`` error instead of stalling its session forever.
        *max_request_bytes* bounds one raw request line (``oversized``).
        *max_queue* bounds how many requests may wait on one session's
        lock before new ones are rejected with ``overloaded`` — bounded
        backpressure instead of unbounded queue growth.

        *journal_store* enables durable sessions: every journal found in
        the store's directory is replayed eagerly here (startup, not
        first-touch, so recovery cost is paid once and ``attach`` is
        cheap), and the ``attach`` op binds client session names to
        durable tokens.  Durable sessions survive :meth:`drop_sessions`
        — a disconnecting TCP client only unbinds its *alias*
        (:meth:`detach_sessions`); the journaled state stays attachable.
        """
        self.tool = tool if tool is not None else SpecCC()
        self.default_batch_backend = default_batch_backend
        self.max_sessions = max_sessions
        self.request_timeout = request_timeout
        self.max_request_bytes = max_request_bytes
        self.max_queue = max_queue
        self.batch_pool = batch_pool
        self.journal_store = journal_store
        self._sessions: dict = {}
        self._locks: dict = {}
        self._queued: dict = {}  # session name -> requests waiting/running
        self._durable: dict = {}  # token -> _Server (survives disconnects)
        self._durable_locks: dict = {}  # token -> asyncio.Lock (lazy: see below)
        self._aliases: dict = {}  # client session name -> durable token
        self.running = True
        if journal_store is not None:
            for token, durable in sorted(journal_store.recover(self.tool).items()):
                self._adopt_durable(token, durable)

    @property
    def session_names(self) -> tuple:
        return tuple(self._sessions)

    @property
    def durable_tokens(self) -> tuple:
        return tuple(sorted(self._durable))

    def drop_sessions(self, prefix: str) -> int:
        """Discard every ephemeral session whose name starts with *prefix*.

        The TCP gateway namespaces each connection's sessions under a
        per-connection prefix and drops the namespace when the
        connection closes — without this, every reconnecting client
        would permanently consume ``max_sessions`` slots.  Durable
        sessions are *not* dropped (only their aliases are, via
        :meth:`detach_sessions` — surviving the disconnect is their
        reason to exist).  Returns the number of sessions dropped.
        """
        names = [name for name in self._sessions if name.startswith(prefix)]
        for name in names:
            self._sessions.pop(name, None)
            self._locks.pop(name, None)
            self._queued.pop(name, None)
        return len(names)

    def detach_sessions(self, prefix: str) -> int:
        """Unbind every durable-session alias starting with *prefix*.

        The journaled sessions themselves are retained — a reconnecting
        client re-``attach``\\ es its token and resumes.  Returns the
        number of aliases unbound.
        """
        names = [name for name in self._aliases if name.startswith(prefix)]
        for name in names:
            self._aliases.pop(name, None)
            self._queued.pop(name, None)
        return len(names)

    def _adopt_durable(self, token: str, durable):
        """The dedicated :class:`_Server` bound to durable *token*."""
        server = _Server(
            self.tool,
            default_batch_backend=self.default_batch_backend,
            batch_pool=self.batch_pool,
            journal_store=self.journal_store,
        )
        server.adopt(durable)
        self._durable[token] = server
        return server

    def _durable_lock(self, token: str) -> asyncio.Lock:
        # Lazily created because __init__ (which recovers durable
        # sessions eagerly) may run outside any event loop, where
        # asyncio.Lock() misbehaves on older Pythons.
        lock = self._durable_locks.get(token)
        if lock is None:
            lock = asyncio.Lock()
            self._durable_locks[token] = lock
        return lock

    def _attach(self, request: dict, name: str) -> dict:
        """The ``attach`` op: bind session *name* to a durable token."""
        if self.journal_store is None:
            raise ServiceError(
                "durable sessions are not enabled (start serve with --journal DIR)"
            )
        token = str(_Server._require(request, "token"))
        from .journal import validate_token

        validate_token(token)
        server = self._durable.get(token)
        if server is None:
            if len(self._sessions) + len(self._durable) >= self.max_sessions:
                raise ValueError(
                    f"too many sessions (max {self.max_sessions}); "
                    "reuse or reset an existing session"
                )
            server = self._adopt_durable(
                token, self.journal_store.attach(token, self.tool)
            )
        self._aliases[name] = token
        # Two clients may attach the same token (e.g. before and after a
        # reconnect); the shared per-token lock keeps its requests
        # strictly sequential either way.
        self._durable_lock(token)
        return _Server.attach_response(server.durable)

    def _session(self, name: str):
        token = self._aliases.get(name)
        if token is not None:
            server = self._durable.get(token)
            if server is not None:
                return server, self._durable_lock(token)
            self._aliases.pop(name, None)  # store was closed underneath
        server = self._sessions.get(name)
        if server is None:
            if len(self._sessions) + len(self._durable) >= self.max_sessions:
                raise ValueError(
                    f"too many sessions (max {self.max_sessions}); "
                    "reuse or reset an existing session"
                )
            server = _Server(
                self.tool,
                default_batch_backend=self.default_batch_backend,
                batch_pool=self.batch_pool,
            )
            self._sessions[name] = server
            self._locks[name] = asyncio.Lock()
        return server, self._locks[name]

    async def handle_request(self, request) -> dict:
        """One request dict in, one response dict out; never raises."""
        base: dict = {}
        name: Optional[str] = None
        if isinstance(request, dict):
            if "rid" in request:
                base["rid"] = request["rid"]
            base["session"] = str(request.get("session", "default"))
        try:
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            op = request.get("op")
            if op not in self.VALID_OPS:
                # Rejected before _session(): invalid traffic must not
                # allocate per-session state.
                raise ValueError(f"unknown op {op!r}")
            if op == "attach":
                # Handled here, not in a per-session _Server: attaching
                # binds the session *name* to a durable token, which is
                # front-end state.  Fast (recovery already ran eagerly)
                # and allocation-checked, so it runs inline.
                response = {"ok": True, "op": op}
                response.update(base)
                response.update(self._attach(request, base["session"]))
                return response
            server, lock = self._session(base["session"])
            # Backpressure: count waiters *before* queueing on the lock,
            # reject once the session's queue is full.  Rejection is an
            # error response, never a dropped connection.
            name = base["session"]
            queued = self._queued.get(name, 0)
            if queued >= self.max_queue:
                name = None  # nothing to undo
                raise ServiceError(
                    f"session {base['session']!r} has {queued} queued "
                    f"requests (max {self.max_queue}); retry later",
                    code="overloaded",
                )
            self._queued[name] = queued + 1
            await lock.acquire()  # in-order, one at a time per session
            held = True
            try:
                if op in self.OFFLOADED_OPS:
                    loop = asyncio.get_running_loop()
                    work = loop.run_in_executor(None, server.handle, request)
                else:

                    async def run_inline():
                        return server.handle(request)

                    work = asyncio.ensure_future(run_inline())
                if self.request_timeout is not None:
                    try:
                        result = await asyncio.wait_for(
                            asyncio.shield(work), timeout=self.request_timeout
                        )
                    except asyncio.TimeoutError:
                        # The deadline abandons the *response*, not the
                        # handler: an offloaded handler keeps running on
                        # its executor thread, still mutating this
                        # session.  Releasing the lock here would let the
                        # session's next request interleave with it —
                        # violating the strictly-sequential-per-session
                        # contract — so the lock is handed to the
                        # abandoned future and released only when it
                        # actually completes.  (shield() keeps *work*
                        # uncancelled so that completion is observable.)
                        held = False

                        def _release_when_done(future) -> None:
                            if not future.cancelled():
                                future.exception()  # consumed, never re-raised
                            lock.release()

                        work.add_done_callback(_release_when_done)
                        raise ServiceError(
                            f"request exceeded {self.request_timeout}s",
                            code="timeout",
                        ) from None
                else:
                    result = await work
            finally:
                if held:
                    lock.release()
            if not server.running:
                self.running = False  # shutdown is global, as in sync serve
            response = {"ok": True, "op": op}
            response.update(base)
            response.update(result)
            if op in ("stats", "ping", "health"):
                response["sessions"] = len(self._sessions) + len(self._durable)
            return response
        except Exception as error:  # noqa: BLE001 - the daemon must survive
            response = error_response(error)
            response.update(base)
            return response
        finally:
            if name is not None:
                remaining = self._queued.get(name, 1) - 1
                if remaining > 0:
                    self._queued[name] = remaining
                else:
                    self._queued.pop(name, None)

async def serve_async_loop(
    stdin: IO[str],
    stdout: IO[str],
    tool: Optional[SpecCC] = None,
    server: Optional[AsyncSpecServer] = None,
) -> int:
    """The asyncio JSON-lines loop: read lines, handle concurrently.

    Reads happen on an executor thread (stdin is a blocking file), every
    non-shutdown line becomes its own task, and a write lock keeps
    response lines atomic.  ``shutdown`` drains all in-flight requests,
    acknowledges, and ends the loop.
    """
    server = server if server is not None else AsyncSpecServer(tool)
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    pending: set = set()

    async def write(response: dict) -> None:
        async with write_lock:
            try:
                stdout.write(json.dumps(response, sort_keys=True) + "\n")
                stdout.flush()
            except (OSError, ValueError):
                # Client went away (broken pipe / closed stream): stop
                # accepting, let the drain below finish in-flight work.
                server.running = False

    async def handle(request) -> None:
        await write(await server.handle_request(request))

    while server.running:
        line = await loop.run_in_executor(None, stdin.readline)
        if not line:
            break
        if line_exceeds_bytes(line, server.max_request_bytes):
            # Checked on encoded bytes, before parsing: an oversized line
            # must not cost a parse, and must not silently drop the request.
            await write(
                error_response(
                    ServiceError(
                        f"request line exceeds {server.max_request_bytes} "
                        "bytes",
                        code="oversized",
                    )
                )
            )
            continue
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except Exception as error:  # noqa: BLE001 - the daemon must survive
            await write(
                {
                    "ok": False,
                    "error": f"malformed JSON: {error}",
                    "code": "bad_json",
                }
            )
            continue
        if isinstance(request, dict) and request.get("op") == "shutdown":
            # Global shutdown: everything already accepted finishes first.
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
                pending.clear()
            await handle(request)
            break
        task = asyncio.create_task(handle(request))
        pending.add(task)
        task.add_done_callback(pending.discard)
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    return 0


def serve_async(
    stdin: Optional[IO[str]] = None,
    stdout: Optional[IO[str]] = None,
    tool: Optional[SpecCC] = None,
    request_timeout: Optional[float] = None,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    max_queue: int = 64,
    journal_store=None,
) -> int:
    """Blocking entry point of the async front end (``serve --async``)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    server = AsyncSpecServer(
        tool,
        request_timeout=request_timeout,
        max_request_bytes=max_request_bytes,
        max_queue=max_queue,
        journal_store=journal_store,
    )
    try:
        return asyncio.run(serve_async_loop(stdin, stdout, tool, server=server))
    finally:
        if journal_store is not None:
            journal_store.sync_all()


class _DrainRequested(Exception):
    """Raised by the sync serve signal handler while the loop is idle
    (between requests): unwind to the drain path immediately."""


def serve(
    stdin: Optional[IO[str]] = None,
    stdout: Optional[IO[str]] = None,
    tool: Optional[SpecCC] = None,
    server: Optional[_Server] = None,
    request_timeout: Optional[float] = None,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    journal_store=None,
    attach_token: str = "default",
    install_signal_handlers: bool = False,
) -> int:
    """Run the JSON-lines loop until EOF, ``shutdown``, or a drain signal.

    *request_timeout* bounds one request's wall-clock time: the handler
    runs on a dedicated worker thread and an expired deadline produces a
    structured ``timeout`` error response while the loop lives on.  (The
    timed-out handler's thread keeps running to completion underneath —
    requests behind it queue rather than interleave, preserving the
    strictly sequential session semantics.)  *max_request_bytes* bounds
    one raw request line (``oversized`` error).

    *journal_store* makes the (single) session durable: it is attached
    to token *attach_token* up front, so every mutation is write-ahead
    journaled and a restarted daemon resumes exactly where the previous
    one crashed.

    *install_signal_handlers* gives the sync loop the same graceful
    drain the TCP gateway has: on SIGTERM/SIGINT an in-flight request is
    finished and its response written, stdout and the journal are
    flushed, and the loop returns 0.  Off by default — only the CLI
    entry point (which owns the main thread) turns it on; in-process
    callers and tests keep their signal dispositions.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    if server is None:
        server = _Server(tool, journal_store=journal_store)
    if server.journal_store is not None and server.durable is None:
        server.handle({"op": "attach", "token": attach_token})
    executor: Optional[ThreadPoolExecutor] = None
    if request_timeout is not None:
        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-handler"
        )
    # Drain state shared with the signal handler: while a request is
    # being handled the handler only *records* the wish (the request
    # finishes and its response is flushed first); between requests it
    # raises out of the blocking readline.
    drain = {"requested": False, "busy": False}
    restored: list = []
    if install_signal_handlers:
        import signal

        def _drain_handler(signum, frame):  # noqa: ARG001 - signal ABI
            drain["requested"] = True
            if not drain["busy"]:
                raise _DrainRequested()

        for signum in (signal.SIGTERM, signal.SIGINT):
            restored.append((signum, signal.signal(signum, _drain_handler)))
    try:
        while True:
            line = stdin.readline()
            if not line:
                break
            drain["busy"] = True
            try:
                response: Optional[dict]
                if line_exceeds_bytes(line, max_request_bytes):
                    response = error_response(
                        ServiceError(
                            f"request line exceeds {max_request_bytes} bytes",
                            code="oversized",
                        )
                    )
                elif not line.strip():
                    response = None
                else:
                    try:
                        request = json.loads(line.strip())
                    except Exception as error:  # noqa: BLE001 - daemon survives
                        response = {
                            "ok": False,
                            "error": f"malformed JSON: {error}",
                            "code": "bad_json",
                        }
                    else:
                        try:
                            if not isinstance(request, dict):
                                raise ValueError("request must be a JSON object")
                            response = {"ok": True, "op": request.get("op")}
                            if executor is not None:
                                result = executor.submit(
                                    server.handle, request
                                ).result(timeout=request_timeout)
                            else:
                                result = server.handle(request)
                            response.update(result)
                        except FuturesTimeoutError:
                            response = error_response(
                                ServiceError(
                                    f"request exceeded {request_timeout}s",
                                    code="timeout",
                                )
                            )
                        except Exception as error:  # noqa: BLE001
                            response = error_response(error)
                if response is not None:
                    stdout.write(json.dumps(response, sort_keys=True) + "\n")
                    stdout.flush()
            finally:
                drain["busy"] = False
            if drain["requested"] or not server.running:
                break
    except _DrainRequested:
        pass
    finally:
        for signum, previous in restored:
            import signal

            signal.signal(signum, previous)
        if executor is not None:
            executor.shutdown(wait=False)
        # Drain: everything acknowledged is on its way to the client and
        # everything applied is on its way to the disk.
        try:
            stdout.flush()
        except (OSError, ValueError):
            pass
        store = server.journal_store if server is not None else journal_store
        if store is not None:
            store.sync_all()
    return 0
