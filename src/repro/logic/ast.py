"""Abstract syntax for linear temporal logic (LTL).

The grammar follows Section IV-A of the paper:

    phi ::= p | !phi | phi || phi | X phi | F phi | G phi | phi U phi

with the derived operators ``&&``, ``->``, ``<->``, ``R`` (Release) and
``W`` (Weak until).  Formula objects are immutable and hashable so they can
be shared freely, used as dictionary keys inside the tableau construction,
and compared structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import FrozenSet, Iterable, Iterator, Tuple


class Formula:
    """Base class of all LTL formula nodes."""

    __slots__ = ()

    # -- convenient operator overloading -----------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``a >> b`` builds the implication ``a -> b``."""
        return Implies(self, other)

    def children(self) -> Tuple["Formula", ...]:
        return ()

    def __str__(self) -> str:  # pragma: no cover - delegated
        from .printer import to_str

        return to_str(self)

    def __repr__(self) -> str:
        from .printer import to_str

        return f"Formula({to_str(self)!r})"


@dataclass(frozen=True, repr=False)
class Bool(Formula):
    """Propositional constant ``true`` or ``false``."""

    value: bool

    __slots__ = ("value",)


TRUE = Bool(True)
FALSE = Bool(False)


@dataclass(frozen=True, repr=False)
class Atom(Formula):
    """An atomic proposition such as ``inflate_cuff``."""

    name: str

    __slots__ = ("name",)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("atomic proposition must have a non-empty name")


@dataclass(frozen=True, repr=False)
class _Unary(Formula):
    operand: Formula

    __slots__ = ("operand",)

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)


@dataclass(frozen=True, repr=False)
class _Binary(Formula):
    left: Formula
    right: Formula

    __slots__ = ("left", "right")

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


class Not(_Unary):
    """Negation ``!phi``."""


class Next(_Unary):
    """Next-time operator ``X phi``."""


class Finally(_Unary):
    """Eventually operator ``F phi`` (the paper's lozenge)."""


class Globally(_Unary):
    """Always operator ``G phi`` (the paper's box)."""


class And(_Binary):
    """Conjunction ``phi && psi``."""


class Or(_Binary):
    """Disjunction ``phi || psi``."""


class Implies(_Binary):
    """Implication ``phi -> psi``."""


class Iff(_Binary):
    """Equivalence ``phi <-> psi``."""


class Until(_Binary):
    """Strong until ``phi U psi``."""


class Release(_Binary):
    """Release ``phi R psi``, the dual of until."""


class WeakUntil(_Binary):
    """Weak until ``phi W psi`` = ``(phi U psi) || G phi``."""


# ---------------------------------------------------------------------------
# Convenience constructors


def conj(formulas: Iterable[Formula]) -> Formula:
    """Right-associated conjunction of *formulas*; ``true`` when empty."""
    items = list(formulas)
    if not items:
        return TRUE
    result = items[-1]
    for item in reversed(items[:-1]):
        result = And(item, result)
    return result


def disj(formulas: Iterable[Formula]) -> Formula:
    """Right-associated disjunction of *formulas*; ``false`` when empty."""
    items = list(formulas)
    if not items:
        return FALSE
    result = items[-1]
    for item in reversed(items[:-1]):
        result = Or(item, result)
    return result


def next_chain(formula: Formula, steps: int) -> Formula:
    """Prefix *formula* with *steps* ``X`` operators (the paper's discrete
    time encoding, Section IV-E)."""
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    for _ in range(steps):
        formula = Next(formula)
    return formula


def atoms(formula: Formula) -> FrozenSet[str]:
    """The set of atomic proposition names occurring in *formula*."""
    names = set()
    for node in walk(formula):
        if isinstance(node, Atom):
            names.add(node.name)
    return frozenset(names)


def walk(formula: Formula) -> Iterator[Formula]:
    """Yield every subformula of *formula* (pre-order, duplicates allowed)."""
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def subformulas(formula: Formula) -> FrozenSet[Formula]:
    """The set of distinct subformulas of *formula*."""
    return frozenset(walk(formula))


def size(formula: Formula) -> int:
    """Number of AST nodes in *formula*."""
    return sum(1 for _ in walk(formula))


@lru_cache(maxsize=4096)
def next_depth(formula: Formula) -> int:
    """Length of the longest chain of nested ``X`` operators.

    This is the quantity reduced by the time-abstraction technique of
    Section IV-E: a requirement "in t seconds" contributes a chain of t
    ``X`` operators.
    """
    if isinstance(formula, Next):
        return 1 + next_depth(formula.operand)
    if not formula.children():
        return 0
    return max(next_depth(child) for child in formula.children())
