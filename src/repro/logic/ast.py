"""Abstract syntax for linear temporal logic (LTL), hash-consed.

The grammar follows Section IV-A of the paper:

    phi ::= p | !phi | phi || phi | X phi | F phi | G phi | phi U phi

with the derived operators ``&&``, ``->``, ``<->``, ``R`` (Release) and
``W`` (Weak until).

Formula nodes are **interned** (hash-consed): the constructors return the
one canonical node per structural shape, so

* structural equality *is* pointer identity (``==`` and ``is`` coincide),
* ``hash()`` is a cached O(1) lookup instead of an O(size) recursion, and
* every node carries a stable small-integer id (:attr:`Formula.uid`) that
  hot paths can pack into ``frozenset``\\ s of ints.

This is what keeps the tableau construction in :mod:`repro.automata.gpvw`
fast on the deep ``X``-chains produced by the discrete-time encoding of
Section IV-E, and what lets the realizability/repair/localization loops
recognise a formula they have already translated.  The structural hash is
computed from CRC32s of atom names rather than ``hash(str)``, so it is
stable across processes regardless of ``PYTHONHASHSEED`` — set and dict
iteration over formulas is therefore reproducible run to run.

Intern pools are per-class :class:`weakref.WeakValueDictionary` instances:
a node lives exactly as long as something outside the pool references it,
so long-running (server) usage does not accumulate garbage formulas.
Lookups are lock-free; the construction (miss) path takes a module lock
and re-checks the pool, because equality-is-identity makes a lost
interning race *not* benign — two live structurally-equal nodes would
compare unequal everywhere.
"""

from __future__ import annotations

import threading
import zlib
from itertools import count
from typing import FrozenSet, Iterable, Iterator, Tuple
from weakref import WeakValueDictionary

# Stable creation-order ids; ``next()`` on itertools.count is atomic.
_uids = count()

# Serialises pool insertions (misses only — hits never take it).  A single
# lock for all pools: contention is negligible because each structural
# shape is constructed exactly once per lifetime.
_intern_lock = threading.Lock()

# Lazily populated per-node cache slots.  ``_sort_key`` holds the canonical
# printer string (deterministic ordering for the tableau), the rest memoise
# the bottom-up analyses that used to be module-level ``lru_cache``s keeping
# formulas alive forever: caches stored on the node die with the node.
_CACHE_SLOTS = ("_sort_key", "_nnf_pos", "_nnf_neg", "_simplified",
                "_next_depth", "_atoms")


class Formula:
    """Base class of all LTL formula nodes (interned, immutable)."""

    __slots__ = ("_hash", "_uid", "__weakref__") + _CACHE_SLOTS

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls._pool = WeakValueDictionary()
        # Deterministic per-class tag folded into structural hashes.
        cls._tag = zlib.crc32(cls.__name__.encode())

    # -- interning machinery ----------------------------------------------
    @property
    def uid(self) -> int:
        """Stable integer id, unique among live formulas."""
        return self._uid

    def __hash__(self) -> int:
        return self._hash

    # Interning makes structural equality pointer identity; object.__eq__
    # (identity) is exactly right, so no __eq__ override is needed.

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(
            f"{type(self).__name__} nodes are immutable (interned)"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"{type(self).__name__} nodes are immutable (interned)"
        )

    def __copy__(self) -> "Formula":
        return self

    def __deepcopy__(self, memo) -> "Formula":
        return self

    def __reduce__(self):
        # Re-enter the interning constructor on unpickling so the
        # equality-is-identity invariant survives a pickle round-trip.
        return (type(self), self._args())

    def _args(self) -> Tuple:  # pragma: no cover - overridden
        raise NotImplementedError

    def sort_key(self) -> str:
        """Canonical string for deterministic ordering, cached per node.

        Replaces the old module-level ``_sort_keys`` dict in the tableau
        construction (which grew without bound across runs).
        """
        key = self._sort_key
        if key is None:
            from .printer import to_str

            key = to_str(self)
            object.__setattr__(self, "_sort_key", key)
        return key

    # -- convenient operator overloading -----------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``a >> b`` builds the implication ``a -> b``."""
        return Implies(self, other)

    def children(self) -> Tuple["Formula", ...]:
        return ()

    def __str__(self) -> str:  # pragma: no cover - delegated
        from .printer import to_str

        return to_str(self)

    def __repr__(self) -> str:
        from .printer import to_str

        return f"Formula({to_str(self)!r})"


def _new_node(cls, structural_hash: int, fields: Tuple[str, ...], values: Tuple) -> Formula:
    """Allocate and initialise one interned node (pool insertion is the
    caller's job, keyed however the class likes)."""
    node = object.__new__(cls)
    assign = object.__setattr__
    for field, value in zip(fields, values):
        assign(node, field, value)
    assign(node, "_hash", structural_hash)
    assign(node, "_uid", next(_uids))
    for slot in _CACHE_SLOTS:
        assign(node, slot, None)
    return node


class Bool(Formula):
    """Propositional constant ``true`` or ``false``."""

    __slots__ = ("value",)

    def __new__(cls, value: bool) -> "Bool":
        value = bool(value)
        node = cls._pool.get(value)
        if node is None:
            with _intern_lock:
                node = cls._pool.get(value)
                if node is None:
                    node = _new_node(
                        cls, hash((cls._tag, value)), ("value",), (value,)
                    )
                    cls._pool[value] = node
        return node

    def _args(self) -> Tuple:
        return (self.value,)


TRUE = Bool(True)
FALSE = Bool(False)


class Atom(Formula):
    """An atomic proposition such as ``inflate_cuff``."""

    __slots__ = ("name",)

    def __new__(cls, name: str) -> "Atom":
        node = cls._pool.get(name)
        if node is None:
            if not name:
                raise ValueError("atomic proposition must have a non-empty name")
            with _intern_lock:
                node = cls._pool.get(name)
                if node is None:
                    structural_hash = hash((cls._tag, zlib.crc32(name.encode())))
                    node = _new_node(cls, structural_hash, ("name",), (name,))
                    cls._pool[name] = node
        return node

    def _args(self) -> Tuple:
        return (self.name,)


class _Unary(Formula):
    __slots__ = ("operand",)

    # Pools are keyed by child *uids*, not child nodes: a strong key
    # reference to the operand would pin child and parent forever once a
    # per-node cache on the child points back at the parent (e.g.
    # ``a._nnf_neg is Not(a)``) — the pair would be reachable from the
    # class itself and never collected.  With int keys the only strong
    # child references are the node's own slots, so orphaned formula
    # clusters are ordinary reference cycles the GC reclaims.  Uids are
    # never reused, so a dead child's key cannot collide with a new node.
    def __new__(cls, operand: Formula) -> "_Unary":
        if not isinstance(operand, Formula):
            raise TypeError(f"operand must be a Formula, got {operand!r}")
        key = operand._uid
        node = cls._pool.get(key)
        if node is None:
            with _intern_lock:
                node = cls._pool.get(key)
                if node is None:
                    structural_hash = hash((cls._tag, operand._hash))
                    node = _new_node(
                        cls, structural_hash, ("operand",), (operand,)
                    )
                    cls._pool[key] = node
        return node

    def _args(self) -> Tuple:
        return (self.operand,)

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)


class _Binary(Formula):
    __slots__ = ("left", "right")

    def __new__(cls, left: Formula, right: Formula) -> "_Binary":
        if not isinstance(left, Formula) or not isinstance(right, Formula):
            raise TypeError(
                f"operands must be Formulas, got {left!r} and {right!r}"
            )
        key = (left._uid, right._uid)  # see _Unary.__new__ for why uids
        node = cls._pool.get(key)
        if node is None:
            with _intern_lock:
                node = cls._pool.get(key)
                if node is None:
                    structural_hash = hash((cls._tag, left._hash, right._hash))
                    node = _new_node(
                        cls, structural_hash, ("left", "right"), (left, right)
                    )
                    cls._pool[key] = node
        return node

    def _args(self) -> Tuple:
        return (self.left, self.right)

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


class Not(_Unary):
    """Negation ``!phi``."""

    __slots__ = ()


class Next(_Unary):
    """Next-time operator ``X phi``."""

    __slots__ = ()


class Finally(_Unary):
    """Eventually operator ``F phi`` (the paper's lozenge)."""

    __slots__ = ()


class Globally(_Unary):
    """Always operator ``G phi`` (the paper's box)."""

    __slots__ = ()


class And(_Binary):
    """Conjunction ``phi && psi``."""

    __slots__ = ()


class Or(_Binary):
    """Disjunction ``phi || psi``."""

    __slots__ = ()


class Implies(_Binary):
    """Implication ``phi -> psi``."""

    __slots__ = ()


class Iff(_Binary):
    """Equivalence ``phi <-> psi``."""

    __slots__ = ()


class Until(_Binary):
    """Strong until ``phi U psi``."""

    __slots__ = ()


class Release(_Binary):
    """Release ``phi R psi``, the dual of until."""

    __slots__ = ()


class WeakUntil(_Binary):
    """Weak until ``phi W psi`` = ``(phi U psi) || G phi``."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Convenience constructors


def conj(formulas: Iterable[Formula]) -> Formula:
    """Right-associated conjunction of *formulas*; ``true`` when empty."""
    items = list(formulas)
    if not items:
        return TRUE
    result = items[-1]
    for item in reversed(items[:-1]):
        result = And(item, result)
    return result


def disj(formulas: Iterable[Formula]) -> Formula:
    """Right-associated disjunction of *formulas*; ``false`` when empty."""
    items = list(formulas)
    if not items:
        return FALSE
    result = items[-1]
    for item in reversed(items[:-1]):
        result = Or(item, result)
    return result


def next_chain(formula: Formula, steps: int) -> Formula:
    """Prefix *formula* with *steps* ``X`` operators (the paper's discrete
    time encoding, Section IV-E)."""
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    for _ in range(steps):
        formula = Next(formula)
    return formula


def atoms(formula: Formula) -> FrozenSet[str]:
    """The set of atomic proposition names occurring in *formula*.

    Cached per node; interning makes the cache hit whenever any previously
    analysed formula shares the subtree.
    """
    cached = formula._atoms
    if cached is not None:
        return cached
    # Iterative post-order so depth-180 X-chains cannot hit the recursion
    # limit; every visited node gets its cache filled.
    stack = [formula]
    while stack:
        node = stack[-1]
        if node._atoms is not None:
            stack.pop()
            continue
        pending = [c for c in node.children() if c._atoms is None]
        if pending:
            stack.extend(pending)
            continue
        if isinstance(node, Atom):
            result: FrozenSet[str] = frozenset((node.name,))
        else:
            children = node.children()
            if not children:
                result = frozenset()
            elif len(children) == 1:
                result = children[0]._atoms
            else:
                result = frozenset().union(*(c._atoms for c in children))
        object.__setattr__(node, "_atoms", result)
        stack.pop()
    return formula._atoms


def walk(formula: Formula) -> Iterator[Formula]:
    """Yield every subformula of *formula* (pre-order, duplicates allowed)."""
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def subformulas(formula: Formula) -> FrozenSet[Formula]:
    """The set of distinct subformulas of *formula*."""
    return frozenset(walk(formula))


def size(formula: Formula) -> int:
    """Number of AST nodes in *formula*."""
    return sum(1 for _ in walk(formula))


def next_depth(formula: Formula) -> int:
    """Length of the longest chain of nested ``X`` operators.

    This is the quantity reduced by the time-abstraction technique of
    Section IV-E: a requirement "in t seconds" contributes a chain of t
    ``X`` operators.  Memoised on the nodes themselves (the old
    ``lru_cache`` pinned formulas in memory forever).
    """
    cached = formula._next_depth
    if cached is not None:
        return cached
    stack = [formula]
    while stack:
        node = stack[-1]
        if node._next_depth is not None:
            stack.pop()
            continue
        pending = [c for c in node.children() if c._next_depth is None]
        if pending:
            stack.extend(pending)
            continue
        children = node.children()
        if isinstance(node, Next):
            depth = 1 + node.operand._next_depth
        elif not children:
            depth = 0
        else:
            depth = max(c._next_depth for c in children)
        object.__setattr__(node, "_next_depth", depth)
        stack.pop()
    return formula._next_depth


def clear_node_caches() -> None:
    """Reset the lazily computed per-node caches on all live formulas.

    Only useful for benchmarking cold paths; the caches are semantically
    transparent.
    """
    for cls in _all_concrete_classes():
        for node in list(cls._pool.values()):
            for slot in _CACHE_SLOTS:
                object.__setattr__(node, slot, None)


def interned_count() -> int:
    """Number of live interned nodes (diagnostics / leak tests)."""
    return sum(len(cls._pool) for cls in _all_concrete_classes())


def _all_concrete_classes() -> Tuple[type, ...]:
    return (
        Bool, Atom, Not, Next, Finally, Globally,
        And, Or, Implies, Iff, Until, Release, WeakUntil,
    )
