"""Pretty printing of LTL formulas.

Two styles are supported: the ASCII style used throughout the code base and
in the parser (``G (a -> F b)``), and the paper style that mirrors the
appendix listing (``[](a -> <>(b))`` with ``&&``/``||``).
"""

from __future__ import annotations

from .ast import (
    And,
    Atom,
    Bool,
    Finally,
    Formula,
    Globally,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
    WeakUntil,
)

# Binding strength, loosest first.  Unary operators bind tightest.
_PRECEDENCE = {
    Iff: 1,
    Implies: 2,
    Or: 3,
    And: 4,
    Until: 5,
    Release: 5,
    WeakUntil: 5,
    Not: 6,
    Next: 6,
    Finally: 6,
    Globally: 6,
}

_BINARY_SYMBOLS = {
    And: "&&",
    Or: "||",
    Implies: "->",
    Iff: "<->",
    Until: "U",
    Release: "R",
    WeakUntil: "W",
}

_UNARY_SYMBOLS = {Not: "!", Next: "X", Finally: "F", Globally: "G"}

_PAPER_UNARY = {Not: "!", Next: "X", Finally: "<>", Globally: "[]"}

# Until/Release/WeakUntil are non-associative in our grammar; And/Or and the
# implication chain associate to the right.
_RIGHT_ASSOCIATIVE = (And, Or, Implies, Iff)


def to_str(formula: Formula, *, paper_style: bool = False) -> str:
    """Render *formula* as a string re-parsable by :mod:`repro.logic.parser`
    (ASCII style) or matching the appendix notation (*paper_style*)."""
    unary = _PAPER_UNARY if paper_style else _UNARY_SYMBOLS
    return _render(formula, 0, unary)


def _render(formula: Formula, parent_level: int, unary: dict) -> str:
    if isinstance(formula, Bool):
        return "true" if formula.value else "false"
    if isinstance(formula, Atom):
        return formula.name
    cls = type(formula)
    level = _PRECEDENCE[cls]
    if cls in unary:
        symbol = unary[cls]
        inner = _render(formula.operand, level, unary)
        sep = "" if symbol == "!" else " "
        text = f"{symbol}{sep}{inner}"
    else:
        symbol = _BINARY_SYMBOLS[cls]
        # Right operand may reuse the same level only for right-associative
        # operators; everything else gets parenthesised on ties.
        right_level = level if cls in _RIGHT_ASSOCIATIVE else level + 1
        left = _render(formula.left, level + 1, unary)
        right = _render(formula.right, right_level, unary)
        text = f"{left} {symbol} {right}"
    if level < parent_level:
        return f"({text})"
    return text
