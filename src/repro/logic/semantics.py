"""Trace semantics of LTL over ultimately-periodic words.

An infinite word is represented as a *lasso*: a finite ``prefix`` followed
by a non-empty ``loop`` repeated forever.  Every omega-regular language is
non-empty iff it contains such a word, so lassos are sufficient both for
testing the tableau construction against the textbook semantics and for
presenting counterexamples to the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence, Tuple

from .ast import (
    And,
    Atom,
    Bool,
    Finally,
    Formula,
    Globally,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
    WeakUntil,
)

Letter = FrozenSet[str]


@dataclass(frozen=True)
class LassoWord:
    """An ultimately periodic word ``prefix . loop^omega``.

    Each position is the set of atomic propositions holding there.
    """

    prefix: Tuple[Letter, ...]
    loop: Tuple[Letter, ...]

    def __post_init__(self) -> None:
        if not self.loop:
            raise ValueError("lasso loop must be non-empty")

    @staticmethod
    def of(prefix: Sequence[Sequence[str]], loop: Sequence[Sequence[str]]) -> "LassoWord":
        return LassoWord(
            tuple(frozenset(letter) for letter in prefix),
            tuple(frozenset(letter) for letter in loop),
        )

    def letter(self, position: int) -> Letter:
        if position < len(self.prefix):
            return self.prefix[position]
        return self.loop[(position - len(self.prefix)) % len(self.loop)]

    def canonical_position(self, position: int) -> int:
        """Fold *position* into the fundamental domain ``[0, len(prefix) +
        len(loop))`` — suffixes at folded positions are identical words."""
        if position < len(self.prefix):
            return position
        return len(self.prefix) + (position - len(self.prefix)) % len(self.loop)

    def __len__(self) -> int:
        return len(self.prefix) + len(self.loop)


def satisfies(word: LassoWord, formula: Formula) -> bool:
    """Decide ``word, 0 |= formula`` by memoised structural recursion.

    Positions are folded into the fundamental domain of the lasso, so the
    recursion terminates: there are only ``len(word)`` distinct suffixes.
    """
    return _Evaluator(word).holds(formula, 0)


class _Evaluator:
    def __init__(self, word: LassoWord) -> None:
        self.word = word
        self.cache: Dict[Tuple[Formula, int], bool] = {}
        # Positions currently being evaluated, used to resolve the fixpoint
        # of U/R through the loop: U defaults to false (least fixpoint),
        # R defaults to true (greatest fixpoint).
        self.in_progress: Dict[Tuple[Formula, int], bool] = {}

    def holds(self, formula: Formula, position: int) -> bool:
        position = self.word.canonical_position(position)
        key = (formula, position)
        if key in self.cache:
            return self.cache[key]
        if key in self.in_progress:
            return self.in_progress[key]
        if isinstance(formula, (Until, Finally)):
            self.in_progress[key] = False
        elif isinstance(formula, (Release, Globally, WeakUntil)):
            self.in_progress[key] = True
        result = self._evaluate(formula, position)
        self.in_progress.pop(key, None)
        self.cache[key] = result
        return result

    def _evaluate(self, formula: Formula, position: int) -> bool:
        letter = self.word.letter(position)
        if isinstance(formula, Bool):
            return formula.value
        if isinstance(formula, Atom):
            return formula.name in letter
        if isinstance(formula, Not):
            return not self.holds(formula.operand, position)
        if isinstance(formula, And):
            return self.holds(formula.left, position) and self.holds(formula.right, position)
        if isinstance(formula, Or):
            return self.holds(formula.left, position) or self.holds(formula.right, position)
        if isinstance(formula, Implies):
            return (not self.holds(formula.left, position)) or self.holds(
                formula.right, position
            )
        if isinstance(formula, Iff):
            return self.holds(formula.left, position) == self.holds(formula.right, position)
        if isinstance(formula, Next):
            return self.holds(formula.operand, position + 1)
        if isinstance(formula, Finally):
            return self.holds(formula.operand, position) or self.holds(formula, position + 1)
        if isinstance(formula, Globally):
            return self.holds(formula.operand, position) and self.holds(formula, position + 1)
        if isinstance(formula, Until):
            return self.holds(formula.right, position) or (
                self.holds(formula.left, position) and self.holds(formula, position + 1)
            )
        if isinstance(formula, Release):
            return self.holds(formula.right, position) and (
                self.holds(formula.left, position) or self.holds(formula, position + 1)
            )
        if isinstance(formula, WeakUntil):
            return self.holds(formula.right, position) or (
                self.holds(formula.left, position) and self.holds(formula, position + 1)
            )
        raise TypeError(f"unknown formula node: {formula!r}")
