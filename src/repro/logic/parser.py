"""Parser for the ASCII LTL syntax.

Grammar (loosest binding first)::

    iff     ::= implies ("<->" iff)?        # all binary connectives
    implies ::= or ("->" implies)?          # associate to the right
    or      ::= and ("||" or)?
    and     ::= until ("&&" and)?
    until   ::= unary (("U" | "R" | "W") unary)?
    unary   ::= ("!" | "X" | "F" | "G" | "<>" | "[]") unary | primary
    primary ::= "true" | "false" | identifier | "(" iff ")"

Identifiers match ``[A-Za-z_][A-Za-z0-9_'-]*``; the paper's appendix uses
``-`` inside proposition names (``auto-control``), which we therefore allow.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from .ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    Finally,
    Formula,
    Globally,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
    WeakUntil,
)


class LTLSyntaxError(ValueError):
    """Raised when a formula string cannot be parsed."""

    def __init__(self, message: str, position: int, text: str) -> None:
        super().__init__(f"{message} at position {position}: {text!r}")
        self.position = position
        self.text = text


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><->|->|&&|\|\||<>|\[\]|[!()])
  | (?P<ident>[A-Za-z_](?:[A-Za-z0-9_']|-(?!>))*)
    """,
    re.VERBOSE,
)

# Keywords that act as operators when they appear as bare identifiers.
_UNARY_KEYWORDS = {
    "X": Next,
    "F": Finally,
    "G": Globally,
    "<>": Finally,
    "[]": Globally,
    "!": Not,
    "NOT": Not,
}
_BINARY_KEYWORDS = {"U": Until, "R": Release, "W": WeakUntil, "V": Release}


def tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise LTLSyntaxError("unexpected character", position, text)
        position = match.end()
        if match.lastgroup == "ws":
            continue
        kind = "op" if match.lastgroup == "op" else "ident"
        tokens.append(_Token(kind, match.group(), match.start()))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    def peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise LTLSyntaxError("unexpected end of input", len(self.text), self.text)
        self.index += 1
        return token

    def expect(self, value: str) -> None:
        token = self.advance()
        if token.value != value:
            raise LTLSyntaxError(f"expected {value!r}", token.position, self.text)

    # grammar rules, loosest first -----------------------------------------
    def parse(self) -> Formula:
        formula = self.iff()
        token = self.peek()
        if token is not None:
            raise LTLSyntaxError("trailing input", token.position, self.text)
        return formula

    def iff(self) -> Formula:
        left = self.implies()
        if self._match("<->"):
            return Iff(left, self.iff())
        return left

    def implies(self) -> Formula:
        left = self.or_()
        if self._match("->"):
            return Implies(left, self.implies())
        return left

    def or_(self) -> Formula:
        left = self.and_()
        if self._match("||"):
            return Or(left, self.or_())
        return left

    def and_(self) -> Formula:
        left = self.until()
        if self._match("&&"):
            return And(left, self.and_())
        return left

    def until(self) -> Formula:
        left = self.unary()
        token = self.peek()
        if token is not None and token.value in _BINARY_KEYWORDS:
            self.advance()
            return _BINARY_KEYWORDS[token.value](left, self.unary())
        return left

    def unary(self) -> Formula:
        token = self.peek()
        if token is not None and token.value in _UNARY_KEYWORDS:
            self.advance()
            return _UNARY_KEYWORDS[token.value](self.unary())
        return self.primary()

    def primary(self) -> Formula:
        token = self.advance()
        if token.value == "(":
            inner = self.iff()
            self.expect(")")
            return inner
        if token.kind == "ident":
            lowered = token.value.lower()
            if lowered == "true":
                return TRUE
            if lowered == "false":
                return FALSE
            return Atom(token.value)
        raise LTLSyntaxError("expected a formula", token.position, self.text)

    def _match(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token.value == value:
            self.index += 1
            return True
        return False


def parse(text: str) -> Formula:
    """Parse an LTL formula from its ASCII representation."""
    return _Parser(text).parse()
