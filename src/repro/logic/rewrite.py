"""Lightweight formula simplification.

The translator (Section IV) and the time-abstraction rewriter produce
formulas with obvious redundancies (``true && p``, ``!!p``, ``X true`` …).
:func:`simplify` removes them with local, semantics-preserving rules; it is
deliberately not a full minimiser — the synthesis engines do the heavy
lifting — but smaller formulas make the tableau construction cheaper and the
reports readable.
"""

from __future__ import annotations

from .ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bool,
    Finally,
    Formula,
    Globally,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
    WeakUntil,
)


def simplify(formula: Formula) -> Formula:
    """Apply local simplification rules bottom-up until a fixpoint.

    Memoised on the interned nodes themselves (``_simplified``): with
    interning, equality is identity, so the fixpoint test is a pointer
    comparison and every formula is normalised at most once per lifetime.
    """
    cached = formula._simplified
    if cached is not None:
        return cached
    chain = [formula]
    current = formula
    while True:
        step = _simplify_once(current)
        if step is current:
            break
        chain.append(step)
        current = step
    for node in chain:
        object.__setattr__(node, "_simplified", current)
    return current


def _simplify_once(formula: Formula) -> Formula:
    if isinstance(formula, (Bool, Atom)):
        return formula
    # A node already known to be fully simplified is a fixpoint of this
    # function; returning it early just skips ahead some iterations.
    cached = formula._simplified
    if cached is not None:
        return cached

    children = [_simplify_once(child) for child in formula.children()]

    if isinstance(formula, Not):
        (operand,) = children
        if isinstance(operand, Bool):
            return FALSE if operand.value else TRUE
        if isinstance(operand, Not):
            return operand.operand
        return Not(operand)

    if isinstance(formula, Next):
        (operand,) = children
        if isinstance(operand, Bool):
            return operand
        return Next(operand)

    if isinstance(formula, Finally):
        (operand,) = children
        if isinstance(operand, (Bool, Finally)):
            return operand if isinstance(operand, Bool) else Finally(operand.operand)
        return Finally(operand)

    if isinstance(formula, Globally):
        (operand,) = children
        if isinstance(operand, Bool):
            return operand
        if isinstance(operand, Globally):
            return Globally(operand.operand)
        return Globally(operand)

    left, right = children

    if isinstance(formula, And):
        if left == FALSE or right == FALSE:
            return FALSE
        if left == TRUE:
            return right
        if right == TRUE:
            return left
        if left == right:
            return left
        return And(left, right)

    if isinstance(formula, Or):
        if left == TRUE or right == TRUE:
            return TRUE
        if left == FALSE:
            return right
        if right == FALSE:
            return left
        if left == right:
            return left
        return Or(left, right)

    if isinstance(formula, Implies):
        if left == FALSE or right == TRUE:
            return TRUE
        if left == TRUE:
            return right
        if right == FALSE:
            return _simplify_once(Not(left))
        if left == right:
            return TRUE
        return Implies(left, right)

    if isinstance(formula, Iff):
        if left == TRUE:
            return right
        if right == TRUE:
            return left
        if left == FALSE:
            return _simplify_once(Not(right))
        if right == FALSE:
            return _simplify_once(Not(left))
        if left == right:
            return TRUE
        return Iff(left, right)

    if isinstance(formula, Until):
        if right == TRUE or right == FALSE:
            return right
        if left == FALSE:
            return right
        if left == TRUE:
            return Finally(right)
        if left == right:
            return left
        return Until(left, right)

    if isinstance(formula, Release):
        if right == TRUE or right == FALSE:
            return right
        if left == TRUE:
            return right
        if left == FALSE:
            return Globally(right)
        if left == right:
            return left
        return Release(left, right)

    if isinstance(formula, WeakUntil):
        if right == TRUE:
            return TRUE
        if left == FALSE:
            return right
        if left == TRUE:
            return TRUE
        if right == FALSE:
            return Globally(left)
        if left == right:
            return left
        return WeakUntil(left, right)

    raise TypeError(f"unknown formula node: {formula!r}")
