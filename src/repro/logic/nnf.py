"""Negation normal form and expansion of derived operators.

The tableau construction of :mod:`repro.automata.gpvw` expects formulas in
*negation normal form* (NNF): negations appear only in front of atomic
propositions and the only connectives are ``&&``, ``||``, ``X``, ``U`` and
``R``.  ``F p`` is rewritten as ``true U p``, ``G p`` as ``false R p`` and
``p W q`` as ``q R (p || q)``.
"""

from __future__ import annotations

from .ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bool,
    Finally,
    Formula,
    Globally,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
    WeakUntil,
)


def to_nnf(formula: Formula) -> Formula:
    """Rewrite *formula* into negation normal form over {&&, ||, X, U, R}."""
    return _positive(formula)


def _positive(formula: Formula) -> Formula:
    # Identity-keyed memoisation on the interned node: shared subtrees are
    # normalised once, and the cache lives exactly as long as the formula.
    cached = formula._nnf_pos
    if cached is None:
        cached = _positive_uncached(formula)
        object.__setattr__(formula, "_nnf_pos", cached)
    return cached


def _negative(formula: Formula) -> Formula:
    cached = formula._nnf_neg
    if cached is None:
        cached = _negative_uncached(formula)
        object.__setattr__(formula, "_nnf_neg", cached)
    return cached


def _positive_uncached(formula: Formula) -> Formula:
    if isinstance(formula, (Bool, Atom)):
        return formula
    if isinstance(formula, Not):
        return _negative(formula.operand)
    if isinstance(formula, Next):
        return Next(_positive(formula.operand))
    if isinstance(formula, Finally):
        return Until(TRUE, _positive(formula.operand))
    if isinstance(formula, Globally):
        return Release(FALSE, _positive(formula.operand))
    if isinstance(formula, And):
        return And(_positive(formula.left), _positive(formula.right))
    if isinstance(formula, Or):
        return Or(_positive(formula.left), _positive(formula.right))
    if isinstance(formula, Implies):
        return Or(_negative(formula.left), _positive(formula.right))
    if isinstance(formula, Iff):
        left, right = formula.left, formula.right
        return Or(
            And(_positive(left), _positive(right)),
            And(_negative(left), _negative(right)),
        )
    if isinstance(formula, Until):
        return Until(_positive(formula.left), _positive(formula.right))
    if isinstance(formula, Release):
        return Release(_positive(formula.left), _positive(formula.right))
    if isinstance(formula, WeakUntil):
        # p W q  ==  q R (p || q)
        left = _positive(formula.left)
        right = _positive(formula.right)
        return Release(right, Or(left, right))
    raise TypeError(f"unknown formula node: {formula!r}")


def _negative_uncached(formula: Formula) -> Formula:
    if isinstance(formula, Bool):
        return FALSE if formula.value else TRUE
    if isinstance(formula, Atom):
        return Not(formula)
    if isinstance(formula, Not):
        return _positive(formula.operand)
    if isinstance(formula, Next):
        return Next(_negative(formula.operand))
    if isinstance(formula, Finally):
        # !F p == G !p == false R !p
        return Release(FALSE, _negative(formula.operand))
    if isinstance(formula, Globally):
        # !G p == F !p == true U !p
        return Until(TRUE, _negative(formula.operand))
    if isinstance(formula, And):
        return Or(_negative(formula.left), _negative(formula.right))
    if isinstance(formula, Or):
        return And(_negative(formula.left), _negative(formula.right))
    if isinstance(formula, Implies):
        return And(_positive(formula.left), _negative(formula.right))
    if isinstance(formula, Iff):
        left, right = formula.left, formula.right
        return Or(
            And(_positive(left), _negative(right)),
            And(_negative(left), _positive(right)),
        )
    if isinstance(formula, Until):
        return Release(_negative(formula.left), _negative(formula.right))
    if isinstance(formula, Release):
        return Until(_negative(formula.left), _negative(formula.right))
    if isinstance(formula, WeakUntil):
        # !(p W q) == !q U (!p && !q)
        not_left = _negative(formula.left)
        not_right = _negative(formula.right)
        return Until(not_right, And(not_left, not_right))
    raise TypeError(f"unknown formula node: {formula!r}")


def is_nnf(formula: Formula) -> bool:
    """True when *formula* only uses NNF connectives with atomic negation."""
    if isinstance(formula, Bool):
        return True
    if isinstance(formula, Atom):
        return True
    if isinstance(formula, Not):
        return isinstance(formula.operand, Atom)
    if isinstance(formula, (And, Or, Until, Release, Next)):
        return all(is_nnf(child) for child in formula.children())
    return False
