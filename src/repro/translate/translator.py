"""The full stage-1 translator: structured English -> LTL + I/O partition.

Ties together parsing (:mod:`repro.nlp`), semantic reasoning (Algorithm 1),
template instantiation, time abstraction (Section IV-E) and the I/O
partition heuristic (Section IV-F).  The output
:class:`SpecificationTranslation` is what the consistency-checking stage
(:mod:`repro.core`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.ast import Formula, atoms as formula_atoms
from ..logic.rewrite import simplify
from ..nlp.antonyms import AntonymDictionary
from ..nlp.grammar import Sentence, parse_sentence
from ..nlp.tokenizer import split_sentences
from ..smt.timeopt import Sign
from .partition import Partition, partition_formulas
from .semantics import SemanticAnalysis, analyse, no_reasoning
from .templates import TranslationOptions, sentence_formula
from .timeabs import (
    AbstractionMethod,
    AbstractionResult,
    chain_lengths,
    rewrite_chains,
    solve_abstraction,
)


@dataclass(frozen=True)
class RequirementTranslation:
    """One requirement through every translation stage."""

    identifier: str
    text: str
    sentence: Sentence
    raw_formula: Formula  # before time abstraction
    formula: Formula  # after time abstraction + simplification


@dataclass
class SpecificationTranslation:
    """A fully translated specification."""

    requirements: List[RequirementTranslation]
    analysis: SemanticAnalysis
    abstraction: AbstractionResult
    partition: Partition

    @property
    def formulas(self) -> Tuple[Formula, ...]:
        return tuple(req.formula for req in self.requirements)

    @property
    def num_inputs(self) -> int:
        return len(self.partition.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.partition.outputs)

    def variables(self) -> Tuple[str, ...]:
        names = set()
        for requirement in self.requirements:
            names |= formula_atoms(requirement.formula)
        return tuple(sorted(names))

    def summary(self) -> str:
        lines = [
            f"{len(self.requirements)} formulas, "
            f"{self.num_inputs} inputs, {self.num_outputs} outputs"
        ]
        for requirement in self.requirements:
            lines.append(f"  [{requirement.identifier}] {requirement.formula}")
        return "\n".join(lines)


class TranslationCache:
    """Per-sentence memos enabling incremental re-translation.

    Translation is *mostly* per-sentence work (parsing, template
    instantiation) glued together by two global passes: semantic reasoning
    (Algorithm 1 runs over all sentences) and time abstraction (one solve
    over the specification's chain lengths).  The cache therefore keys
    every per-sentence artefact by the sentence text *plus* the global
    context it depends on — the semantic-analysis signature for raw
    formulas, the solved theta mapping for rewrites — so reuse is exact:
    ``translate(requirements, cache)`` returns the same translation as a
    fresh ``translate(requirements)``, only skipping work for sentences
    whose text and global context are unchanged.

    A cache is tied to the :class:`Translator` that created it (options,
    dictionary and abstraction settings are deliberately not part of the
    keys); obtain one from :meth:`Translator.new_cache`.  Single-document
    sessions keep one alive across edits; sharing one across threads is
    not supported.

    Memory: a long edit stream would otherwise accumulate every sentence
    ever seen (under every stale analysis signature and theta mapping),
    each entry pinning interned formula nodes alive.  Each memo is
    therefore bounded: when it outgrows *max_entries*, it is pruned back
    to the keys the current translation actually used — exactly the hot
    set the next edit's re-check needs.
    """

    def __init__(self, max_entries: int = 2048) -> None:
        self.max_entries = max_entries
        self.parses: Dict[str, Sentence] = {}
        self.raw_formulas: Dict[tuple, Formula] = {}
        self.solutions: Dict[tuple, object] = {}
        self.rewritten: Dict[tuple, Formula] = {}

    def prune(self, used: Dict[str, set]) -> None:
        """Drop entries a completed translation did not touch, per memo,
        but only once a memo exceeds its bound (cheap steady state)."""
        for name, keys in used.items():
            memo = getattr(self, name)
            if len(memo) > self.max_entries:
                setattr(self, name, {key: memo[key] for key in keys if key in memo})

    def stats(self) -> Dict[str, int]:
        return {
            "parses": len(self.parses),
            "raw_formulas": len(self.raw_formulas),
            "solutions": len(self.solutions),
            "rewritten": len(self.rewritten),
        }

    def parse(self, text: str) -> Sentence:
        sentence = self.parses.get(text)
        if sentence is None:
            sentence = self.parses[text] = parse_sentence(text)
        return sentence


def _analysis_signature(analysis: SemanticAnalysis) -> tuple:
    """Everything :meth:`SemanticAnalysis.reduce` can read, hashably.

    Two analyses with equal signatures reduce every proposition
    identically, so raw formulas cached under one are valid under the
    other.  (The dictionary is per-translator and the cache is
    per-translator, so it does not participate.)
    """
    if not analysis.enabled:
        return (False,)
    return (True, tuple(analysis.antonym_pairs()))


class Translator:
    """Stage 1 of SpecCC (Figure 1): natural language to LTL."""

    def __init__(
        self,
        options: TranslationOptions = TranslationOptions(),
        dictionary: Optional[AntonymDictionary] = None,
        abstraction: AbstractionMethod = AbstractionMethod.OPTIMAL,
        error_bound: int = 5,
        signs: Optional[Sequence[Sign]] = None,
    ) -> None:
        self.options = options
        self.dictionary = dictionary if dictionary is not None else AntonymDictionary.default()
        self.abstraction = abstraction
        self.error_bound = error_bound
        self.signs = signs

    def new_cache(self) -> TranslationCache:
        """A fresh :class:`TranslationCache` for incremental workloads."""
        return TranslationCache()

    def translate(
        self,
        requirements: Sequence[Tuple[str, str]],
        cache: Optional[TranslationCache] = None,
    ) -> SpecificationTranslation:
        """Translate ``(identifier, sentence)`` pairs into a specification.

        With a *cache* (see :meth:`new_cache`), only sentences whose text
        — or whose global context: antonym pairs, chain-length set —
        changed since the previous call are re-translated; the result is
        identical to a cache-less run.
        """
        if cache is None:
            cache = TranslationCache()
        used: Dict[str, set] = {
            "parses": set(),
            "raw_formulas": set(),
            "solutions": set(),
            "rewritten": set(),
        }
        sentences = []
        for identifier, text in requirements:
            used["parses"].add(text)
            sentences.append((identifier, text, cache.parse(text)))
        if self.options.semantic_reasoning:
            analysis = analyse([s for _, _, s in sentences], self.dictionary)
        else:
            analysis = no_reasoning()
        signature = _analysis_signature(analysis)

        raw_formulas: List[Formula] = []
        for _, text, sentence in sentences:
            key = (text, signature)
            used["raw_formulas"].add(key)
            raw = cache.raw_formulas.get(key)
            if raw is None:
                raw = cache.raw_formulas[key] = sentence_formula(
                    sentence, analysis, self.options
                )
            raw_formulas.append(raw)

        abstraction = self._abstract(raw_formulas, cache, used)
        cache.prune(used)
        translated = [
            RequirementTranslation(
                identifier, text, sentence, raw, simplify(abstracted)
            )
            for (identifier, text, sentence), raw, abstracted in zip(
                sentences, raw_formulas, abstraction.formulas
            )
        ]
        partition = partition_formulas([req.formula for req in translated])
        return SpecificationTranslation(translated, analysis, abstraction, partition)

    def _abstract(
        self,
        raw_formulas: Sequence[Formula],
        cache: TranslationCache,
        used: Dict[str, set],
    ) -> AbstractionResult:
        """Time abstraction with the solve and per-formula rewrites memoised."""
        thetas = chain_lengths(raw_formulas)
        signs = tuple(self.signs) if self.signs is not None else None
        key = (thetas, self.abstraction, self.error_bound, signs)
        used["solutions"].add(key)
        solution = cache.solutions.get(key)
        if solution is None:
            solution = cache.solutions[key] = solve_abstraction(
                thetas, self.abstraction, self.error_bound, self.signs
            )
        if self.abstraction is AbstractionMethod.NONE or not thetas:
            return AbstractionResult(
                tuple(raw_formulas), solution, self.abstraction, thetas
            )
        mapping = dict(zip(thetas, solution.scaled))
        rewritten = []
        for raw in raw_formulas:
            formula_key = (raw, key)
            used["rewritten"].add(formula_key)
            formula = cache.rewritten.get(formula_key)
            if formula is None:
                formula = cache.rewritten[formula_key] = rewrite_chains(
                    raw, mapping
                )
            rewritten.append(formula)
        return AbstractionResult(
            tuple(rewritten), solution, self.abstraction, thetas
        )

    def translate_document(
        self, document: str, cache: Optional[TranslationCache] = None
    ) -> SpecificationTranslation:
        """Translate a plain-text requirement document (one sentence per
        line; ``#`` comments allowed).  Requirements are numbered R1..Rn."""
        pairs = [
            (f"R{number}", sentence)
            for number, sentence in enumerate(split_sentences(document), start=1)
        ]
        return self.translate(pairs, cache)


def translate_requirements(
    requirements: Sequence[Tuple[str, str]], **kwargs
) -> SpecificationTranslation:
    """Convenience one-shot wrapper around :class:`Translator`."""
    return Translator(**kwargs).translate(requirements)
