"""The full stage-1 translator: structured English -> LTL + I/O partition.

Ties together parsing (:mod:`repro.nlp`), semantic reasoning (Algorithm 1),
template instantiation, time abstraction (Section IV-E) and the I/O
partition heuristic (Section IV-F).  The output
:class:`SpecificationTranslation` is what the consistency-checking stage
(:mod:`repro.core`) consumes.

Every stage runs through an incremental analysis graph
(:class:`repro.core.graph.AnalysisGraph`): parses, per-sentence
vocabulary, raw formulas, theta solutions, chain rewrites and the final
partition are nodes keyed by content signatures, with edges recording
what each node was derived from.  Re-translating after an edit therefore
recomputes exactly the nodes whose signatures the edit changed — in
particular, a raw formula is keyed by the *sentence-local* slice of the
semantic analysis (the antonym pairs of the sentence's own candidate
subjects), so a new antonym pair under one subject invalidates only the
sentences that mention that subject, not the whole document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.graph import AnalysisGraph
from ..logic.ast import Formula, atoms as formula_atoms
from ..logic.rewrite import simplify
from ..nlp.antonyms import AntonymDictionary
from ..nlp.dependencies import candidate_subjects
from ..nlp.grammar import Sentence, parse_sentence
from ..nlp.tokenizer import split_sentences
from ..obs.trace import span as _obs_span
from ..smt.timeopt import Sign
from .partition import Partition, partition_formulas
from .semantics import (
    SemanticAnalysis,
    SemanticsDelta,
    analyse_incremental,
    no_reasoning,
)
from .templates import TranslationOptions, sentence_formula
from .timeabs import (
    AbstractionMethod,
    AbstractionResult,
    chain_lengths,
    rewrite_chains,
    solve_abstraction,
)


@dataclass(frozen=True)
class RequirementTranslation:
    """One requirement through every translation stage."""

    identifier: str
    text: str
    sentence: Sentence
    raw_formula: Formula  # before time abstraction
    formula: Formula  # after time abstraction + simplification


@dataclass
class SpecificationTranslation:
    """A fully translated specification."""

    requirements: List[RequirementTranslation]
    analysis: SemanticAnalysis
    abstraction: AbstractionResult
    partition: Partition
    #: What Algorithm 1 actually re-ran for this translation (populated by
    #: graph-backed translations with semantic reasoning enabled).
    semantics_delta: Optional[SemanticsDelta] = None

    @property
    def formulas(self) -> Tuple[Formula, ...]:
        return tuple(req.formula for req in self.requirements)

    @property
    def num_inputs(self) -> int:
        return len(self.partition.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.partition.outputs)

    def variables(self) -> Tuple[str, ...]:
        names = set()
        for requirement in self.requirements:
            names |= formula_atoms(requirement.formula)
        return tuple(sorted(names))

    def summary(self) -> str:
        lines = [
            f"{len(self.requirements)} formulas, "
            f"{self.num_inputs} inputs, {self.num_outputs} outputs"
        ]
        for requirement in self.requirements:
            lines.append(f"  [{requirement.identifier}] {requirement.formula}")
        return "\n".join(lines)


#: Stages of a per-document translation graph, in pipeline order.
DOCUMENT_STAGES: Tuple[str, ...] = (
    "parses",  # text -> Sentence
    "vocab",  # text -> Algorithm 1 contributions (subject, dependents)
    "semantics_seen",  # component signature -> True (delta attribution)
    "raw_formulas",  # (text, sentence-local analysis slice) -> Formula
    "solutions",  # (thetas, method, bound, signs) -> abstraction solve
    "rewritten",  # (raw formula, solution key) -> rewritten formula
    "partitions",  # final formula tuple -> Partition
)


class TranslationCache:
    """Per-document analysis graph enabling incremental re-translation.

    Translation is *mostly* per-sentence work (parsing, template
    instantiation) glued together by two global passes: semantic reasoning
    (Algorithm 1) and time abstraction (one solve over the specification's
    chain lengths).  Both passes now decompose: the analysis splits into
    vocabulary components cached process-wide, and each per-sentence
    artefact is a graph node keyed by the sentence text *plus* exactly the
    slice of global context it reads — so reuse is exact:
    ``translate(requirements, cache)`` returns the same translation as a
    fresh ``translate(requirements)``, only skipping work for nodes whose
    signatures are unchanged.

    A cache is tied to the :class:`Translator` that created it (options,
    dictionary and abstraction settings are deliberately not part of the
    keys); obtain one from :meth:`Translator.new_cache`.  Safe to share
    across threads (batch checking does); single-document sessions keep
    one alive across edits.

    Memory: a long edit stream would otherwise accumulate every sentence
    ever seen (under every stale analysis slice and theta mapping), each
    entry pinning interned formula nodes alive.  Each stage is therefore
    bounded: when it outgrows *max_entries*, :meth:`AnalysisGraph.retain`
    prunes it back to the nodes the current translation actually touched —
    exactly the hot set the next edit's re-check needs.
    """

    def __init__(self, max_entries: int = 2048) -> None:
        self._max_entries = max_entries
        self.graph = AnalysisGraph(DOCUMENT_STAGES, max_entries=max_entries)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @max_entries.setter
    def max_entries(self, value: int) -> None:
        self._max_entries = value
        self.graph.set_capacity(value)

    def stats(self) -> Dict[str, int]:
        """Per-stage node counts (legacy memo-size shape)."""
        return self.graph.sizes()

    def clear(self) -> None:
        """Drop every node (cold-path measurements; releases pinned
        formulas).  Process-wide stages are cleared separately by
        :meth:`repro.SpecCC.clear_caches`."""
        self.graph.clear()

    def parse(self, text: str) -> Sentence:
        return self.graph.compute("parses", text, lambda: parse_sentence(text))


def _touched() -> Dict[str, set]:
    return {stage: set() for stage in DOCUMENT_STAGES}


def _sentence_signature(analysis: SemanticAnalysis, sentence: Sentence) -> tuple:
    """The slice of *analysis* this sentence's translation can read.

    :meth:`SemanticAnalysis.reduce` consults exactly the antonym pairs of
    an antonym-candidate proposition's subject (plus the dictionary and
    morphology, which are translator-constant), so two analyses agreeing
    on the sentence's candidate subjects translate it identically.  Keying
    raw formulas by this slice instead of the whole-document pair set is
    what keeps an antonym-pair change local to the sentences that mention
    the affected subject.
    """
    if not analysis.enabled:
        return (False,)
    relevant = []
    for subject in sorted(candidate_subjects(sentence)):
        pairs = analysis.pairs_by_subject.get(subject)
        if pairs:
            relevant.append((subject, tuple(pairs)))
    return (True, tuple(relevant))


class Translator:
    """Stage 1 of SpecCC (Figure 1): natural language to LTL."""

    def __init__(
        self,
        options: TranslationOptions = TranslationOptions(),
        dictionary: Optional[AntonymDictionary] = None,
        abstraction: AbstractionMethod = AbstractionMethod.OPTIMAL,
        error_bound: int = 5,
        signs: Optional[Sequence[Sign]] = None,
    ) -> None:
        self.options = options
        self.dictionary = dictionary if dictionary is not None else AntonymDictionary.default()
        self.abstraction = abstraction
        self.error_bound = error_bound
        self.signs = signs
        # The translator's own graph: one-shot `SpecCC.check` calls reuse
        # it across documents, so even the stateless API is incremental.
        self._default_cache = TranslationCache()

    def new_cache(self) -> TranslationCache:
        """A fresh :class:`TranslationCache` for incremental workloads."""
        return TranslationCache()

    def cache(self) -> TranslationCache:
        """The translator's default (per-instance) cache."""
        return self._default_cache

    def translate(
        self,
        requirements: Sequence[Tuple[str, str]],
        cache: Optional[TranslationCache] = None,
    ) -> SpecificationTranslation:
        """Translate ``(identifier, sentence)`` pairs into a specification.

        Runs on *cache*'s analysis graph (default: the translator's own),
        so only sentences whose text — or whose signature-relevant global
        context: the antonym pairs of their own subjects, the chain-length
        set — changed since the previous call are re-translated; the
        result is identical to a cache-less run.
        """
        if cache is None:
            cache = self._default_cache
        graph = cache.graph
        touched = _touched()
        with _obs_span("translate", sentences=len(requirements)):
            with _obs_span("translate.parse"):
                sentences = []
                for identifier, text in requirements:
                    parsed = graph.compute(
                        "parses",
                        text,
                        lambda text=text: parse_sentence(text),
                        touched=touched,
                    )
                    sentences.append((identifier, text, parsed))

            # Computed once per check: Algorithm 1's unit keys and the raw
            # formulas below both incorporate it (raw formulas read the
            # dictionary directly through the curated-positive fallback in
            # SemanticAnalysis.reduce, so a mutated dictionary must miss even
            # through the translator's persistent default graph).
            dict_sig = self.dictionary.signature()
            delta: Optional[SemanticsDelta] = None
            if self.options.semantic_reasoning:
                with _obs_span("translate.semantics") as sp:
                    analysis, delta = analyse_incremental(
                        [(text, sentence) for _, text, sentence in sentences],
                        self.dictionary,
                        graph,
                        touched=touched,
                        dict_sig=dict_sig,
                    )
                    sp.set(
                        components=delta.components,
                        reanalysed=delta.reanalysed_components,
                    )
            else:
                analysis = no_reasoning()

            with _obs_span("translate.formulas"):
                raw_formulas: List[Formula] = []
                for _, text, sentence in sentences:
                    key = (text, dict_sig, _sentence_signature(analysis, sentence))
                    # Vocabulary nodes only exist when semantic reasoning ran.
                    parse_node = ("parses", text)
                    deps = (
                        (parse_node, ("vocab", text))
                        if delta is not None
                        else (parse_node,)
                    )
                    raw = graph.compute(
                        "raw_formulas",
                        key,
                        lambda sentence=sentence: sentence_formula(
                            sentence, analysis, self.options
                        ),
                        deps=deps,
                        touched=touched,
                    )
                    raw_formulas.append(raw)

            with _obs_span("translate.abstraction", method=self.abstraction.value):
                abstraction = self._abstract(raw_formulas, graph, touched)
            translated = [
                RequirementTranslation(
                    identifier, text, sentence, raw, simplify(abstracted)
                )
                for (identifier, text, sentence), raw, abstracted in zip(
                    sentences, raw_formulas, abstraction.formulas
                )
            ]
            final_formulas = tuple(req.formula for req in translated)
            with _obs_span("translate.partition") as sp:
                partition = graph.compute(
                    "partitions",
                    final_formulas,
                    lambda: partition_formulas(list(final_formulas)),
                    touched=touched,
                )
                sp.set(
                    inputs=len(partition.inputs), outputs=len(partition.outputs)
                )
            graph.retain(touched)
        return SpecificationTranslation(
            translated, analysis, abstraction, partition, semantics_delta=delta
        )

    def _abstract(
        self,
        raw_formulas: Sequence[Formula],
        graph: AnalysisGraph,
        touched: Dict[str, set],
    ) -> AbstractionResult:
        """Time abstraction with the solve and per-formula rewrites memoised."""
        thetas = chain_lengths(raw_formulas)
        signs = tuple(self.signs) if self.signs is not None else None
        key = (thetas, self.abstraction, self.error_bound, signs)
        solution = graph.compute(
            "solutions",
            key,
            lambda: solve_abstraction(
                thetas, self.abstraction, self.error_bound, self.signs
            ),
            touched=touched,
        )
        if self.abstraction is AbstractionMethod.NONE or not thetas:
            return AbstractionResult(
                tuple(raw_formulas), solution, self.abstraction, thetas
            )
        mapping = dict(zip(thetas, solution.scaled))
        rewritten = []
        for raw in raw_formulas:
            formula = graph.compute(
                "rewritten",
                (raw, key),
                lambda raw=raw: rewrite_chains(raw, mapping),
                deps=(("solutions", key),),
                touched=touched,
            )
            rewritten.append(formula)
        return AbstractionResult(
            tuple(rewritten), solution, self.abstraction, thetas
        )

    def translate_document(
        self, document: str, cache: Optional[TranslationCache] = None
    ) -> SpecificationTranslation:
        """Translate a plain-text requirement document (one sentence per
        line; ``#`` comments allowed).  Requirements are numbered R1..Rn."""
        pairs = [
            (f"R{number}", sentence)
            for number, sentence in enumerate(split_sentences(document), start=1)
        ]
        return self.translate(pairs, cache)


def translate_requirements(
    requirements: Sequence[Tuple[str, str]], **kwargs
) -> SpecificationTranslation:
    """Convenience one-shot wrapper around :class:`Translator`."""
    return Translator(**kwargs).translate(requirements)
