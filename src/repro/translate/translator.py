"""The full stage-1 translator: structured English -> LTL + I/O partition.

Ties together parsing (:mod:`repro.nlp`), semantic reasoning (Algorithm 1),
template instantiation, time abstraction (Section IV-E) and the I/O
partition heuristic (Section IV-F).  The output
:class:`SpecificationTranslation` is what the consistency-checking stage
(:mod:`repro.core`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.ast import Formula, atoms as formula_atoms
from ..logic.rewrite import simplify
from ..nlp.antonyms import AntonymDictionary
from ..nlp.grammar import Sentence, parse_sentence
from ..nlp.tokenizer import split_sentences
from ..smt.timeopt import Sign
from .partition import Partition, partition_formulas
from .semantics import SemanticAnalysis, analyse, no_reasoning
from .templates import TranslationOptions, sentence_formula
from .timeabs import AbstractionMethod, AbstractionResult, abstract_time


@dataclass(frozen=True)
class RequirementTranslation:
    """One requirement through every translation stage."""

    identifier: str
    text: str
    sentence: Sentence
    raw_formula: Formula  # before time abstraction
    formula: Formula  # after time abstraction + simplification


@dataclass
class SpecificationTranslation:
    """A fully translated specification."""

    requirements: List[RequirementTranslation]
    analysis: SemanticAnalysis
    abstraction: AbstractionResult
    partition: Partition

    @property
    def formulas(self) -> Tuple[Formula, ...]:
        return tuple(req.formula for req in self.requirements)

    @property
    def num_inputs(self) -> int:
        return len(self.partition.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.partition.outputs)

    def variables(self) -> Tuple[str, ...]:
        names = set()
        for requirement in self.requirements:
            names |= formula_atoms(requirement.formula)
        return tuple(sorted(names))

    def summary(self) -> str:
        lines = [
            f"{len(self.requirements)} formulas, "
            f"{self.num_inputs} inputs, {self.num_outputs} outputs"
        ]
        for requirement in self.requirements:
            lines.append(f"  [{requirement.identifier}] {requirement.formula}")
        return "\n".join(lines)


class Translator:
    """Stage 1 of SpecCC (Figure 1): natural language to LTL."""

    def __init__(
        self,
        options: TranslationOptions = TranslationOptions(),
        dictionary: Optional[AntonymDictionary] = None,
        abstraction: AbstractionMethod = AbstractionMethod.OPTIMAL,
        error_bound: int = 5,
        signs: Optional[Sequence[Sign]] = None,
    ) -> None:
        self.options = options
        self.dictionary = dictionary if dictionary is not None else AntonymDictionary.default()
        self.abstraction = abstraction
        self.error_bound = error_bound
        self.signs = signs

    def translate(
        self,
        requirements: Sequence[Tuple[str, str]],
    ) -> SpecificationTranslation:
        """Translate ``(identifier, sentence)`` pairs into a specification."""
        sentences = [
            (identifier, text, parse_sentence(text))
            for identifier, text in requirements
        ]
        if self.options.semantic_reasoning:
            analysis = analyse([s for _, _, s in sentences], self.dictionary)
        else:
            analysis = no_reasoning()

        raw_formulas = [
            sentence_formula(sentence, analysis, self.options)
            for _, _, sentence in sentences
        ]
        abstraction = abstract_time(
            raw_formulas,
            method=self.abstraction,
            error_bound=self.error_bound,
            signs=self.signs,
        )
        translated = [
            RequirementTranslation(
                identifier, text, sentence, raw, simplify(abstracted)
            )
            for (identifier, text, sentence), raw, abstracted in zip(
                sentences, raw_formulas, abstraction.formulas
            )
        ]
        partition = partition_formulas([req.formula for req in translated])
        return SpecificationTranslation(translated, analysis, abstraction, partition)

    def translate_document(self, document: str) -> SpecificationTranslation:
        """Translate a plain-text requirement document (one sentence per
        line; ``#`` comments allowed).  Requirements are numbered R1..Rn."""
        pairs = [
            (f"R{number}", sentence)
            for number, sentence in enumerate(split_sentences(document), start=1)
        ]
        return self.translate(pairs)


def translate_requirements(
    requirements: Sequence[Tuple[str, str]], **kwargs
) -> SpecificationTranslation:
    """Convenience one-shot wrapper around :class:`Translator`."""
    return Translator(**kwargs).translate(requirements)
