"""LTL templates: from clause structure to temporal formulas (Section IV-C).

The translator follows the property patterns of Dwyer et al. as selected by
the paper (Universality and Existence) plus the subordinator/modifier
mapping implied by the appendix's gold formulas:

* condition subclauses (``if``/``when``/``whenever``/``once``/``after``/
  ``while``) become the antecedent of an implication under Always:
  ``G (C -> M)``; several nested conditions fold as
  ``G (C1 -> G (C2 -> M))`` (Req-17.4);
* the ``eventually``/``sometimes`` modifiers and the future modality
  ``will`` wrap the clause in Eventually (Req-01, Req-07, Req-17.1);
* ``always``/``globally`` wrap the clause in Always;
* a trailing ``until`` subclause produces the weak-until template of
  Req-49: ``!C -> (M W C)``;
* a trailing ``before`` subclause produces ``!C U M``;
* ``next`` prefixes the clause with one Next operator (configurable: the
  paper's own tool drops it — see TranslationOptions.next_as_x);
* a constraint "in t seconds" prefixes the clause with ``t`` Next
  operators (Section IV-E), subsequently shortened by time abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..logic.ast import (
    And,
    Atom,
    Finally,
    Formula,
    Globally,
    Implies,
    Next,
    Not,
    Or,
    Until,
    WeakUntil,
    next_chain,
)
from ..nlp import lexicon
from ..nlp.grammar import Clause, ClauseGroup, Sentence, StructuredEnglishError
from .propositions import Proposition, clause_propositions
from .semantics import SemanticAnalysis, no_reasoning


@dataclass(frozen=True)
class TranslationOptions:
    """Knobs of the translation stage."""

    #: Interpret the "next" marker as an X operator.  The paper's grammar
    #: lists "next" as a subordinator, but the appendix's gold formulas drop
    #: it (Req-13.1, Req-20, Req-44); False reproduces the tool's output.
    next_as_x: bool = True
    #: Apply Algorithm 1's proposition reduction.
    semantic_reasoning: bool = True
    #: Seconds represented by one Next operator before abstraction.
    unit_seconds: int = 1
    #: Interpret bare declarative sentences as invariants (Universality).
    bare_as_invariant: bool = True


def clause_formula(
    clause: Clause,
    analysis: Optional[SemanticAnalysis] = None,
    options: TranslationOptions = TranslationOptions(),
    subject_hint: Optional[str] = None,
) -> Formula:
    """The formula of a single clause (propositions + local operators)."""
    if analysis is None or not options.semantic_reasoning:
        analysis = no_reasoning()
    clause = _resolve_pronoun(clause, subject_hint)
    literals: List[Formula] = []
    for proposition in clause_propositions(clause):
        reduced = analysis.reduce(proposition)
        literal: Formula = Atom(reduced.name)
        if reduced.negated:
            literal = Not(literal)
        literals.append(literal)
    combine = Or if clause.subject_conjunction == "or" else And
    formula = literals[0]
    for literal in literals[1:]:
        formula = combine(formula, literal)

    if clause.modality in lexicon.FUTURE_MODALITIES:
        formula = Finally(formula)
    if clause.modifier in lexicon.EVENTUALLY_MODIFIERS:
        formula = Finally(formula)
    elif clause.modifier in lexicon.MODIFIERS and clause.modifier is not None:
        formula = Globally(formula)
    if clause.constraint is not None:
        formula = next_chain(formula, clause.constraint.ticks(options.unit_seconds))
    if clause.next_marker and options.next_as_x:
        formula = Next(formula)
    return formula


def _resolve_pronoun(clause: Clause, subject_hint: Optional[str]) -> Clause:
    """Resolve "it" to the enclosing main-clause subject (Req-49)."""
    if "it" not in clause.subjects:
        return clause
    if subject_hint is None:
        raise StructuredEnglishError(
            f"unresolvable pronoun in clause {clause.text!r}"
        )
    subjects = [subject_hint if s == "it" else s for s in clause.subjects]
    resolved = Clause(**{**clause.__dict__, "subjects": subjects})
    return resolved


def group_formula(
    group: ClauseGroup,
    analysis: Optional[SemanticAnalysis],
    options: TranslationOptions,
    subject_hint: Optional[str] = None,
) -> Formula:
    """Combine a clause group with its and/or connectives (left to right)."""
    formula = clause_formula(group.clauses[0], analysis, options, subject_hint)
    for connective, clause in zip(group.connectives, group.clauses[1:]):
        right = clause_formula(clause, analysis, options, subject_hint)
        formula = (And if connective == "and" else Or)(formula, right)
    return formula


def sentence_formula(
    sentence: Sentence,
    analysis: Optional[SemanticAnalysis] = None,
    options: TranslationOptions = TranslationOptions(),
) -> Formula:
    """Translate a full requirement sentence into LTL."""
    main_subject = sentence.main.clauses[0].subjects[0] if sentence.main.clauses else None
    consequent = group_formula(sentence.main, analysis, options)

    antecedents: List[Formula] = []
    for sub in sentence.pre:
        antecedents.append(
            _condition_formula(sub.subordinator, sub.group, analysis, options)
        )
    until_formula: Optional[Formula] = None
    before_formula: Optional[Formula] = None
    for sub in sentence.post:
        body = group_formula(sub.group, analysis, options, subject_hint=main_subject)
        if sub.subordinator == "until":
            until_formula = body
        elif sub.subordinator == "before":
            before_formula = body
        else:
            antecedents.append(body)

    if until_formula is not None:
        # Req-49 template: !C -> (M W C).
        consequent = Implies(
            Not(until_formula), WeakUntil(consequent, until_formula)
        )
    if before_formula is not None:
        consequent = Until(Not(before_formula), consequent)

    if antecedents:
        formula = consequent
        for antecedent in reversed(antecedents):
            formula = Globally(Implies(antecedent, formula))
        return formula

    if before_formula is not None:
        # A bare ordering constraint is a one-shot property, not an
        # invariant ("the door is closed before the pump is started").
        return consequent
    if _is_existence(sentence):
        return consequent
    if options.bare_as_invariant:
        return Globally(consequent)
    return consequent


def _condition_formula(
    subordinator: str,
    group: ClauseGroup,
    analysis: Optional[SemanticAnalysis],
    options: TranslationOptions,
) -> Formula:
    formula = group_formula(group, analysis, options)
    # All condition subordinators share the implication template; "after"
    # and "once" describe the same triggering semantics at the abstraction
    # level of the paper (state propositions, not events).
    return formula


def _is_existence(sentence: Sentence) -> bool:
    """Existence-pattern sentences keep their top-level Eventually."""
    for clause in sentence.main.clauses:
        if clause.modifier in lexicon.EVENTUALLY_MODIFIERS:
            return True
        if clause.modality in lexicon.FUTURE_MODALITIES:
            return True
    return False
