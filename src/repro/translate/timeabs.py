"""Time counting and abstraction over translated formulas (Section IV-E).

Timing constraints become chains of ``X`` operators during translation.
This module measures the chain lengths across a whole specification,
solves the abstraction problem of Eq. (1)/(2) — by GCD, by the exact
reference solver, or by the paper's bit-blasting route — and rewrites
every chain ``X^theta`` into ``X^theta'``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..logic.ast import Formula, Next, next_chain
from ..smt.timeopt import (
    Sign,
    TimeAbstractionProblem,
    TimeAbstractionSolution,
    gcd_reduction,
    solve_bitblast,
    solve_reference,
)


class AbstractionMethod(enum.Enum):
    """Which solver shortens the Next chains."""

    NONE = "none"
    GCD = "gcd"
    OPTIMAL = "optimal"  # exact reference solver
    BITBLAST = "bitblast"  # the paper's SMT-via-SAT route


def chain_lengths(formulas: Sequence[Formula]) -> Tuple[int, ...]:
    """The distinct lengths of maximal ``X`` chains, in increasing order.

    Only chains of length >= 2 participate in the abstraction: a single
    ``X`` (e.g. from the "next" marker) is already minimal and rescaling it
    would change its meaning relative to unscaled requirements.
    """
    lengths: Set[int] = set()
    for formula in formulas:
        _collect(formula, lengths)
    return tuple(sorted(length for length in lengths if length >= 2))


def _collect(formula: Formula, lengths: Set[int]) -> None:
    if isinstance(formula, Next):
        depth = 0
        node: Formula = formula
        while isinstance(node, Next):
            depth += 1
            node = node.operand
        lengths.add(depth)
        _collect(node, lengths)
        return
    for child in formula.children():
        _collect(child, lengths)


def rewrite_chains(formula: Formula, mapping: Dict[int, int]) -> Formula:
    """Replace every maximal chain ``X^n`` with ``X^mapping[n]``."""
    if isinstance(formula, Next):
        depth = 0
        node: Formula = formula
        while isinstance(node, Next):
            depth += 1
            node = node.operand
        new_depth = mapping.get(depth, depth)
        return next_chain(rewrite_chains(node, mapping), new_depth)
    if not formula.children():
        return formula
    rebuilt = [rewrite_chains(child, mapping) for child in formula.children()]
    return type(formula)(*rebuilt)


@dataclass(frozen=True)
class AbstractionResult:
    """Rewritten formulas plus the underlying solution, for reporting."""

    formulas: Tuple[Formula, ...]
    solution: TimeAbstractionSolution
    method: AbstractionMethod
    thetas: Tuple[int, ...] = ()

    @property
    def mapping(self) -> Dict[int, int]:
        return dict(zip(self.thetas, self.solution.scaled))


def solve_abstraction(
    thetas: Tuple[int, ...],
    method: AbstractionMethod = AbstractionMethod.OPTIMAL,
    error_bound: int = 5,
    signs: Optional[Sequence[Sign]] = None,
) -> TimeAbstractionSolution:
    """Solve the abstraction problem for a set of chain lengths.

    Split out of :func:`abstract_time` so incremental callers (the
    translator's :class:`~repro.translate.translator.TranslationCache`)
    can cache solutions per theta-set: an edit that does not introduce a
    new chain length reuses the solved mapping outright.
    """
    if method is AbstractionMethod.NONE or not thetas:
        return TimeAbstractionSolution(
            1, thetas, (0,) * len(thetas), sum(thetas), 0
        )
    if method is AbstractionMethod.GCD:
        return gcd_reduction(thetas)
    problem = TimeAbstractionProblem.of(thetas, error_bound, signs)
    if method is AbstractionMethod.BITBLAST:
        return solve_bitblast(problem)
    return solve_reference(problem)


def abstract_time(
    formulas: Sequence[Formula],
    method: AbstractionMethod = AbstractionMethod.OPTIMAL,
    error_bound: int = 5,
    signs: Optional[Sequence[Sign]] = None,
) -> AbstractionResult:
    """Measure, solve and rewrite in one step.

    *error_bound* is the paper's user-specified ``B``; *signs* restricts
    each chain's arrival error (default: all early, as in the running
    example of Section IV-E).
    """
    thetas = chain_lengths(formulas)
    solution = solve_abstraction(thetas, method, error_bound, signs)
    if method is AbstractionMethod.NONE or not thetas:
        return AbstractionResult(tuple(formulas), solution, method, thetas)
    mapping = dict(zip(thetas, solution.scaled))
    rewritten = tuple(rewrite_chains(formula, mapping) for formula in formulas)
    return AbstractionResult(rewritten, solution, method, thetas)
