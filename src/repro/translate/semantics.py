"""Semantic reasoning over antonym candidates — Algorithm 1 of the paper.

The algorithm walks the ``<subject, dependent>`` table extracted by the
dependency analysis.  For every subject with more than one adjective
dependent it consults the antonym oracle; words found to be semantically
contrasting are coloured *blue* and paired, the rest stay *green*.  Blue
pairs let the translator reuse one proposition for both words —
``unavailable_pulse_wave`` becomes ``!available_pulse_wave`` — which both
shrinks the proposition set and removes the need for mutual-exclusion
assumptions.

The paper further abbreviates: "When there is only one pair of adjective
or adverb antonyms for a subject, we abbreviate the propositions by just
using the subject and its negative form" — ``available_pulse_wave`` is
written ``pulse_wave``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..nlp.antonyms import AntonymDictionary
from ..nlp.dependencies import subject_dependents
from ..nlp.grammar import Sentence
from .propositions import Proposition


class Color(enum.Enum):
    """Algorithm 1's word colouring."""

    GREEN = "green"  # no antonym found among the subject's dependents
    BLUE = "blue"  # paired with a contrasting word


@dataclass
class WordEntry:
    """Per-word bookkeeping (the paper's ``wordset``).

    The antonym cache is global (one ``online(w)`` lookup per word), while
    colors are tracked per subject: the same word may be paired under one
    subject and unpaired under another.
    """

    word: str
    antonyms: Set[str] = field(default_factory=set)
    colors: Dict[str, Color] = field(default_factory=dict)  # subject -> color

    def color_for(self, subject: str) -> Color:
        return self.colors.get(subject, Color.GREEN)


@dataclass
class SemanticAnalysis:
    """Output of Algorithm 1 plus the derived proposition reduction."""

    wordset: Dict[str, WordEntry]
    pairs_by_subject: Dict[str, List[Tuple[str, str]]]  # (positive, negative)
    dictionary: Optional[AntonymDictionary] = None
    enabled: bool = True

    def antonym_pairs(self) -> List[Tuple[str, str, str]]:
        """All (subject, positive, negative) triples found."""
        triples = []
        for subject in sorted(self.pairs_by_subject):
            for positive, negative in self.pairs_by_subject[subject]:
                triples.append((subject, positive, negative))
        return triples

    def color_of(self, word: str, subject: str) -> Color:
        entry = self.wordset.get(word)
        return entry.color_for(subject) if entry is not None else Color.GREEN

    # -- proposition reduction (Section IV-D + appendix abbreviation) ------
    def reduce(self, proposition: Proposition) -> Proposition:
        """Rewrite an adjective proposition through its antonym pair."""
        if not self.enabled or not proposition.is_antonym_candidate:
            return proposition
        subject = proposition.subject
        pairs = self.pairs_by_subject.get(subject, [])
        # The abbreviation applies when every pair of the subject shares one
        # positive form ("available" paired with both "unavailable" and
        # "lost" still denotes a single variable).
        positives = {positive for positive, _ in pairs}
        for positive, negative in pairs:
            if proposition.complement not in (positive, negative):
                continue
            flip = proposition.complement == negative
            negated = proposition.negated != flip
            if len(positives) == 1:
                return Proposition(subject, negated, subject, positive)
            return Proposition(
                f"{positive}_{subject}", negated, subject, positive
            )
        # No observed pair: still normalise morphologically negative
        # adjectives ("unavailable" -> !available), which is always sound.
        stem = _strip_negation_prefix(proposition.complement)
        if stem is not None:
            return Proposition(
                f"{stem}_{subject}", not proposition.negated, subject, stem
            )
        # Likewise for curated negatives with a unique positive antonym
        # ("disabled" -> !enabled): the dictionary certifies the pair.
        unique = self._unique_curated_positive(proposition.complement)
        if unique is not None:
            return Proposition(
                f"{unique}_{subject}", not proposition.negated, subject, unique
            )
        return proposition

    def _unique_curated_positive(self, word: Optional[str]) -> Optional[str]:
        if word is None or self.dictionary is None:
            return None
        curated = self.dictionary.pairs.get(word.lower())
        if curated is not None and len(curated) == 1:
            positive = next(iter(curated))
            if self.dictionary.is_positive(positive, word):
                return positive
        return None


def _strip_negation_prefix(word: Optional[str]) -> Optional[str]:
    """The positive stem of a morphologically negated adjective, if any."""
    from ..nlp import lexicon

    if word is None:
        return None
    for prefix in ("un", "in", "dis", "non"):
        stem = word[len(prefix):]
        if word.startswith(prefix) and stem in lexicon.ADJECTIVES:
            return stem
    return None


def analyse(
    sentences: Sequence[Sentence],
    dictionary: Optional[AntonymDictionary] = None,
) -> SemanticAnalysis:
    """Run Algorithm 1 over a parsed specification."""
    if dictionary is None:
        dictionary = AntonymDictionary.default()

    subjects = subject_dependents(sentences)
    wordset: Dict[str, WordEntry] = {}
    for dependents in subjects.values():
        for word in sorted(dependents):
            wordset.setdefault(word, WordEntry(word))

    pairs_by_subject: Dict[str, List[Tuple[str, str]]] = {}
    for subject in sorted(subjects):
        dependents = subjects[subject]
        if len(dependents) <= 1:
            # A single dependent cannot form a pair within this subject;
            # Algorithm 1 skips it (line 3: |s.dep| > 1).
            continue
        for word in sorted(dependents):
            entry = wordset[word]
            if entry.color_for(subject) is not Color.GREEN:
                continue
            if not entry.antonyms:
                entry.antonyms = set(dictionary.lookup(word))  # online(w)
            found = dependents & entry.antonyms
            if not found:
                continue
            entry.colors[subject] = Color.BLUE
            for other in sorted(found):
                other_entry = wordset[other]
                other_entry.colors[subject] = Color.BLUE
                other_entry.antonyms.add(word)
                positive, negative = (
                    (word, other)
                    if dictionary.is_positive(word, other)
                    else (other, word)
                )
                pairs_by_subject.setdefault(subject, []).append(
                    (positive, negative)
                )
    return SemanticAnalysis(wordset, pairs_by_subject, dictionary)


def no_reasoning() -> SemanticAnalysis:
    """An analysis that reduces nothing (the ablation baseline)."""
    return SemanticAnalysis({}, {}, None, enabled=False)


def mutual_exclusion_assumptions(
    analysis: SemanticAnalysis,
) -> List[Tuple[str, str]]:
    """Pairs of propositions that would need explicit mutual-exclusion
    assumptions if semantic reasoning were disabled — used by the ablation
    benchmark to quantify the saving the paper claims."""
    assumptions = []
    for subject, positive, negative in analysis.antonym_pairs():
        assumptions.append((f"{positive}_{subject}", f"{negative}_{subject}"))
    return assumptions
