"""Semantic reasoning over antonym candidates — Algorithm 1 of the paper.

The algorithm walks the ``<subject, dependent>`` table extracted by the
dependency analysis.  For every subject with more than one adjective
dependent it consults the antonym oracle; words found to be semantically
contrasting are coloured *blue* and paired, the rest stay *green*.  Blue
pairs let the translator reuse one proposition for both words —
``unavailable_pulse_wave`` becomes ``!available_pulse_wave`` — which both
shrinks the proposition set and removes the need for mutual-exclusion
assumptions.

The paper further abbreviates: "When there is only one pair of adjective
or adverb antonyms for a subject, we abbreviate the propositions by just
using the subject and its negative form" — ``available_pulse_wave`` is
written ``pulse_wave``.

**Incrementality.**  Algorithm 1 walks the ``<subject, dependent>``
table subject by subject, and each subject's step is a pure function of
its sorted dependents plus the *pre-state* of each dependent word's
antonym memo (``online(w)`` runs at most once per word, and pairing
mutates the partner's memo — couplings the pre-states capture exactly).
:func:`analyse` therefore folds memoised per-subject steps through the
process-wide analysis graph (:func:`repro.core.graph.shared_graph`,
stage ``"semantics"``), keyed by dependents + pre-states — editing one
sentence re-runs the algorithm only for subjects whose dependents or
threaded-in states the edit actually changed, and subjects with
identical keys share a single node.  The pre-decomposition monolithic
loop is kept as :func:`_analyse_table_monolithic`, the reference the
differential tests compare against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Set, Tuple

from ..core.graph import AnalysisGraph, StageStats, shared_graph
from ..nlp.antonyms import AntonymDictionary
from ..nlp.dependencies import sentence_vocabulary, subject_dependents
from ..nlp.grammar import Sentence
from .propositions import Proposition


class Color(enum.Enum):
    """Algorithm 1's word colouring."""

    GREEN = "green"  # no antonym found among the subject's dependents
    BLUE = "blue"  # paired with a contrasting word


@dataclass
class WordEntry:
    """Per-word bookkeeping (the paper's ``wordset``).

    The antonym cache is global (one ``online(w)`` lookup per word), while
    colors are tracked per subject: the same word may be paired under one
    subject and unpaired under another.
    """

    word: str
    antonyms: Set[str] = field(default_factory=set)
    colors: Dict[str, Color] = field(default_factory=dict)  # subject -> color

    def color_for(self, subject: str) -> Color:
        return self.colors.get(subject, Color.GREEN)


@dataclass
class SemanticAnalysis:
    """Output of Algorithm 1 plus the derived proposition reduction."""

    wordset: Dict[str, WordEntry]
    pairs_by_subject: Dict[str, List[Tuple[str, str]]]  # (positive, negative)
    dictionary: Optional[AntonymDictionary] = None
    enabled: bool = True

    def antonym_pairs(self) -> List[Tuple[str, str, str]]:
        """All (subject, positive, negative) triples found."""
        triples = []
        for subject in sorted(self.pairs_by_subject):
            for positive, negative in self.pairs_by_subject[subject]:
                triples.append((subject, positive, negative))
        return triples

    def color_of(self, word: str, subject: str) -> Color:
        entry = self.wordset.get(word)
        return entry.color_for(subject) if entry is not None else Color.GREEN

    # -- proposition reduction (Section IV-D + appendix abbreviation) ------
    def reduce(self, proposition: Proposition) -> Proposition:
        """Rewrite an adjective proposition through its antonym pair."""
        if not self.enabled or not proposition.is_antonym_candidate:
            return proposition
        subject = proposition.subject
        pairs = self.pairs_by_subject.get(subject, [])
        # The abbreviation applies when every pair of the subject shares one
        # positive form ("available" paired with both "unavailable" and
        # "lost" still denotes a single variable).
        positives = {positive for positive, _ in pairs}
        for positive, negative in pairs:
            if proposition.complement not in (positive, negative):
                continue
            flip = proposition.complement == negative
            negated = proposition.negated != flip
            if len(positives) == 1:
                return Proposition(subject, negated, subject, positive)
            return Proposition(
                f"{positive}_{subject}", negated, subject, positive
            )
        # No observed pair: still normalise morphologically negative
        # adjectives ("unavailable" -> !available), which is always sound.
        stem = _strip_negation_prefix(proposition.complement)
        if stem is not None:
            return Proposition(
                f"{stem}_{subject}", not proposition.negated, subject, stem
            )
        # Likewise for curated negatives with a unique positive antonym
        # ("disabled" -> !enabled): the dictionary certifies the pair.
        unique = self._unique_curated_positive(proposition.complement)
        if unique is not None:
            return Proposition(
                f"{unique}_{subject}", not proposition.negated, subject, unique
            )
        return proposition

    def _unique_curated_positive(self, word: Optional[str]) -> Optional[str]:
        if word is None or self.dictionary is None:
            return None
        curated = self.dictionary.pairs.get(word.lower())
        if curated is not None and len(curated) == 1:
            positive = next(iter(curated))
            if self.dictionary.is_positive(positive, word):
                return positive
        return None


def _strip_negation_prefix(word: Optional[str]) -> Optional[str]:
    """The positive stem of a morphologically negated adjective, if any."""
    from ..nlp import lexicon

    if word is None:
        return None
    for prefix in ("un", "in", "dis", "non"):
        stem = word[len(prefix):]
        if word.startswith(prefix) and stem in lexicon.ADJECTIVES:
            return stem
    return None


# --------------------------------------------------------------------------
# Algorithm 1, decomposed into per-subject *analysis units*.
#
# The monolithic loop (kept below as the reference) mutates shared
# WordEntry state across subjects: the `online(w)` memo is filled at most
# once per word, and pairing adds the reverse direction to the partner's
# set — so a pairing under one subject can mask a later subject's
# dictionary lookup.  Each subject's step is nevertheless a *pure
# function* of its sorted dependents plus, per dependent word, the part of
# the word's antonym-memo state the step can observe: whether the memo is
# primed (non-empty — the ``online(w)`` lookup is skipped) and its
# intersection with the subject's own dependents (everything ``found`` can
# see).  Replaying the subjects in sorted order while threading the full
# word states through reproduces the monolithic run exactly; memoising
# each step under the *projected* key keeps edits local — a state change
# a later subject cannot observe does not invalidate its node, and
# subjects with identical keys (twenty sensors with the same adjective
# pair) share a single node.


#: A word's antonym-memo state as one subject's step observes it:
#: ``None`` = unprimed (the next consult runs ``online(w)``); a tuple =
#: primed, holding the memo's intersection with the subject's dependents.
WordState = Optional[Tuple[str, ...]]


class SubjectSemantics(NamedTuple):
    """Frozen outcome of Algorithm 1's step for one subject.

    Deliberately subject-name-free — the step's logic never reads the
    name — so equal (dependents, observable pre-states) share one memo
    node.  State changes are returned as a *delta* (lookups fetched,
    partners added) the fold applies to the full states it threads.
    Immutable and picklable.
    """

    #: ``(positive, negative)`` pairs in append order.
    pairs: Tuple[Tuple[str, str], ...]
    #: Dependent words coloured blue under this subject, sorted.
    blue: Tuple[str, ...]
    #: ``(word, full online(w) result)`` for every lookup this step ran.
    looked_up: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: ``(word, partners)`` added to word memos by this step's pairings.
    added: Tuple[Tuple[str, Tuple[str, ...]], ...]


@dataclass(frozen=True)
class SemanticsDelta:
    """What one analysis actually re-ran, for session/bench reporting.

    ``reanalysed`` holds the indices (into the analysed sentence list) of
    sentences owning a subject whose analysis unit was not seen by the
    *calling document's* previous pass — deterministic per session,
    unlike the process-wide stage counters which concurrent checkers
    bleed into.
    """

    components: int = 0  # analysis units (subjects with > 1 dependent)
    reanalysed_components: int = 0
    reused_components: int = 0
    reanalysed: Tuple[int, ...] = ()  # sentence indices


def _project(state: Optional[Set[str]], depset: Set[str]) -> WordState:
    """A word's memo state as observed from inside one subject's step."""
    return tuple(sorted(state & depset)) if state is not None else None


def _replay_subject(
    dependents: Tuple[str, ...],
    pre: Tuple[WordState, ...],
    dictionary: AntonymDictionary,
) -> SubjectSemantics:
    """One subject's slice of Algorithm 1, from observable word states.

    Control-flow-faithful to the monolithic loop's inner body: ``found``
    only ever reads ``dependents & antonyms``, which the projected *pre*
    preserves, and a primed memo — projected or not — suppresses the
    dictionary lookup exactly like a non-empty ``WordEntry.antonyms``.
    """
    depset = set(dependents)
    primed: Dict[str, bool] = {}
    effective: Dict[str, Set[str]] = {}  # memo ∩ dependents, evolving
    for word, frozen in zip(dependents, pre):
        primed[word] = frozen is not None
        effective[word] = set(frozen) if frozen is not None else set()

    blue: Set[str] = set()
    pairs: List[Tuple[str, str]] = []
    looked_up: List[Tuple[str, Tuple[str, ...]]] = []
    added: Dict[str, Set[str]] = {}
    for word in dependents:
        if word in blue:  # color_for(subject) is not GREEN
            continue
        if not primed[word]:  # if not entry.antonyms: online(w)
            result = dictionary.lookup(word)
            looked_up.append((word, tuple(sorted(result))))
            primed[word] = True
            effective[word] |= depset & result
        found = effective[word]  # dependents & entry.antonyms
        if not found:
            continue
        blue.add(word)
        for other in sorted(found):
            blue.add(other)
            primed[other] = True  # entry.antonyms.add(word)
            effective[other].add(word)
            added.setdefault(other, set()).add(word)
            positive, negative = (
                (word, other)
                if dictionary.is_positive(word, other)
                else (other, word)
            )
            pairs.append((positive, negative))
    return SubjectSemantics(
        pairs=tuple(pairs),
        blue=tuple(sorted(blue)),
        looked_up=tuple(looked_up),
        added=tuple(
            (word, tuple(sorted(partners)))
            for word, partners in sorted(added.items())
        ),
    )


#: An analysis unit as the fold visits it: subject, memo key, and the
#: step outcome.  ``key = (dictionary signature, sorted dependents,
#: observable pre-states)`` — everything the step reads.
AnalysisUnit = Tuple[str, tuple, "SubjectSemantics"]


def _analyse_table(
    table: Mapping[str, Set[str]],
    dictionary: AntonymDictionary,
    units: Optional[List[AnalysisUnit]] = None,
    dict_sig: Optional[tuple] = None,
) -> SemanticAnalysis:
    """Algorithm 1 as a fold of memoised per-subject steps.

    Walks the subjects in sorted order, threading each word's full
    antonym memo through the steps; every step is served from the
    process-wide ``semantics`` stage when its (dependents, observable
    pre-states) key has been computed before — by this document, another
    session, or another thread.  *units*, when given, collects the
    visited units for delta attribution.  *dict_sig* lets callers that
    already computed :meth:`AntonymDictionary.signature` (the translator
    keys raw formulas by it) avoid rebuilding it per check.
    """
    shared = shared_graph()
    if dict_sig is None:
        dict_sig = dictionary.signature()

    wordset: Dict[str, WordEntry] = {}
    for dependents in table.values():
        for word in sorted(dependents):
            wordset.setdefault(word, WordEntry(word))

    state: Dict[str, Optional[Set[str]]] = {word: None for word in wordset}
    pairs_by_subject: Dict[str, List[Tuple[str, str]]] = {}
    for subject in sorted(table):
        dependents = table[subject]
        if len(dependents) <= 1:
            # A single dependent cannot form a pair within this subject;
            # Algorithm 1 skips it (line 3: |s.dep| > 1).
            continue
        ordered = tuple(sorted(dependents))
        depset = set(ordered)
        pre = tuple(_project(state[word], depset) for word in ordered)
        key = (dict_sig, ordered, pre)
        unit = shared.compute(
            "semantics",
            key,
            lambda ordered=ordered, pre=pre: _replay_subject(
                ordered, pre, dictionary
            ),
        )
        if units is not None:
            units.append((subject, key, unit))
        # Apply the step's state delta to the threaded full memos.
        for word, result in unit.looked_up:
            state[word] = set(result)
        for word, partners in unit.added:
            memo = state[word]
            if memo is None:
                memo = state[word] = set()
            memo.update(partners)
        for word in unit.blue:
            wordset[word].colors[subject] = Color.BLUE
        if unit.pairs:
            pairs_by_subject[subject] = [tuple(pair) for pair in unit.pairs]

    for word, accumulated in state.items():
        if accumulated is not None:
            wordset[word].antonyms = set(accumulated)
    return SemanticAnalysis(wordset, pairs_by_subject, dictionary)


def _analyse_table_monolithic(
    table: Mapping[str, Set[str]], dictionary: AntonymDictionary
) -> SemanticAnalysis:
    """The paper's Algorithm 1 as one loop over the whole table.

    Kept verbatim as the reference implementation: the differential tests
    assert the component decomposition reproduces it exactly, including
    the order-coupled ``wordset`` mutations.
    """
    wordset: Dict[str, WordEntry] = {}
    for dependents in table.values():
        for word in sorted(dependents):
            wordset.setdefault(word, WordEntry(word))

    pairs_by_subject: Dict[str, List[Tuple[str, str]]] = {}
    for subject in sorted(table):
        dependents = table[subject]
        if len(dependents) <= 1:
            continue
        for word in sorted(dependents):
            entry = wordset[word]
            if entry.color_for(subject) is not Color.GREEN:
                continue
            if not entry.antonyms:
                entry.antonyms = set(dictionary.lookup(word))  # online(w)
            found = dependents & entry.antonyms
            if not found:
                continue
            entry.colors[subject] = Color.BLUE
            for other in sorted(found):
                other_entry = wordset[other]
                other_entry.colors[subject] = Color.BLUE
                other_entry.antonyms.add(word)
                positive, negative = (
                    (word, other)
                    if dictionary.is_positive(word, other)
                    else (other, word)
                )
                pairs_by_subject.setdefault(subject, []).append(
                    (positive, negative)
                )
    return SemanticAnalysis(wordset, pairs_by_subject, dictionary)


def analyse(
    sentences: Sequence[Sentence],
    dictionary: Optional[AntonymDictionary] = None,
) -> SemanticAnalysis:
    """Run Algorithm 1 over a parsed specification."""
    if dictionary is None:
        dictionary = AntonymDictionary.default()
    return _analyse_table(subject_dependents(sentences), dictionary)


def analyse_incremental(
    items: Sequence[Tuple[str, Sentence]],
    dictionary: AntonymDictionary,
    graph: AnalysisGraph,
    touched: Optional[Dict[str, set]] = None,
    dict_sig: Optional[tuple] = None,
) -> Tuple[SemanticAnalysis, SemanticsDelta]:
    """Algorithm 1 through the analysis graph, with delta attribution.

    *items* are ``(text, parsed sentence)`` in document order; *graph* is
    the calling document's graph (a
    :class:`~repro.translate.translator.TranslationCache` owns one).  Per
    sentence, a ``vocab`` node (keyed by text, edged to the parse node)
    caches the sentence's subject/dependent contributions; the merged
    table then folds through the process-wide ``semantics`` stage one
    analysis unit per pairing subject.  A per-document ``semantics_seen``
    stage — edged to the vocabulary nodes the unit's subject came from —
    records which unit keys earlier passes of *this* document produced,
    so the returned :class:`SemanticsDelta` attributes exactly the
    sentences whose unit an edit dirtied (by changing its dependents *or*
    the antonym-memo pre-states threaded into it), deterministically even
    when other sessions share the process-wide memo.
    """
    contributions = []
    for text, sentence in items:
        contributions.append(
            graph.compute(
                "vocab",
                text,
                lambda sentence=sentence: sentence_vocabulary(sentence),
                deps=(("parses", text),),
                touched=touched,
            )
        )

    table: Dict[str, Set[str]] = {}
    owners: Dict[str, Set[int]] = {}  # subject -> sentence indices
    for index, vocabulary in enumerate(contributions):
        for subject, dependents in vocabulary:
            table.setdefault(subject, set()).update(dependents)
            owners.setdefault(subject, set()).add(index)

    units: List[AnalysisUnit] = []
    analysis = _analyse_table(table, dictionary, units=units, dict_sig=dict_sig)

    # Seen-ness is evaluated against the *pre-pass* state for every unit
    # before any unit is marked, so units sharing one memo key (identical
    # dependents and pre-states) all count as fresh on their first pass.
    flags = [
        (subject, key, graph.contains("semantics_seen", key))
        for subject, key, _ in units
    ]
    reanalysed: Set[int] = set()
    reanalysed_units = 0
    for subject, key, seen in flags:
        graph.compute(
            "semantics_seen",
            key,
            lambda: True,
            deps=tuple(
                ("vocab", items[index][0]) for index in sorted(owners[subject])
            ),
            touched=touched,
        )
        if not seen:
            reanalysed_units += 1
            reanalysed.update(owners[subject])

    delta = SemanticsDelta(
        components=len(units),
        reanalysed_components=reanalysed_units,
        reused_components=len(units) - reanalysed_units,
        reanalysed=tuple(sorted(reanalysed)),
    )
    return analysis, delta



def semantics_cache_info() -> StageStats:
    """Statistics of the process-wide Algorithm 1 component memo."""
    return shared_graph().stats()["semantics"]


def no_reasoning() -> SemanticAnalysis:
    """An analysis that reduces nothing (the ablation baseline)."""
    return SemanticAnalysis({}, {}, None, enabled=False)


def mutual_exclusion_assumptions(
    analysis: SemanticAnalysis,
) -> List[Tuple[str, str]]:
    """Pairs of propositions that would need explicit mutual-exclusion
    assumptions if semantic reasoning were disabled — used by the ablation
    benchmark to quantify the saving the paper claims."""
    assumptions = []
    for subject, positive, negative in analysis.antonym_pairs():
        assumptions.append((f"{positive}_{subject}", f"{negative}_{subject}"))
    return assumptions
