"""Atomic-proposition extraction from parsed clauses (Section IV-C).

"Usually an atomic proposition comes from a subject and its predicate …
in the form of predicate_subject, to combine a variable and its
valuation."  The rules, mirroring the appendix's gold formulas:

* passive:        "cuff is inflated"            -> ``inflate_cuff``
* progressive:    "auto control mode is running" -> ``run_auto_control_mode``
* active:         "an alarm should sound"        -> ``sound_alarm``
* active + object:"the system enters manual mode" -> ``enter_manual_mode``
* be + adjective: "pulse wave is available"      -> ``available_pulse_wave``
  (adjective propositions are *antonym candidates* and may later be
  rewritten by the semantic reasoning of Section IV-D)

A verb particle is kept in the name (``turn_on_pump`` / ``turn_off_pump``)
because dropping it would conflate opposite valuations; the paper's
appendix drops it (``power_lstat``), a purely cosmetic difference recorded
in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..nlp.grammar import Clause


@dataclass(frozen=True)
class Proposition:
    """One extracted atomic proposition, before semantic reduction."""

    name: str
    negated: bool
    subject: str
    complement: Optional[str] = None  # set for adjective propositions

    @property
    def is_antonym_candidate(self) -> bool:
        return self.complement is not None


def clause_propositions(clause: Clause) -> List[Proposition]:
    """One proposition per subject of *clause*."""
    propositions = []
    for subject in clause.subjects:
        propositions.append(_single(clause, subject))
    return propositions


def _single(clause: Clause, subject: str) -> Proposition:
    if clause.verb is not None and clause.verb != "be":
        parts = [clause.verb]
        if clause.particle is not None:
            parts.append(clause.particle)
        if clause.object is not None:
            # Active transitive: the object is the affected variable.
            parts.append(clause.object)
        else:
            parts.append(subject)
        return Proposition("_".join(parts), clause.negated, subject)
    if clause.complement is not None:
        name = f"{clause.complement}_{subject}"
        return Proposition(name, clause.negated, subject, clause.complement)
    raise ValueError(f"clause has neither verb nor complement: {clause!r}")
