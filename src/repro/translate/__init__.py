"""Stage 1 of SpecCC: structured English to LTL with time abstraction and
input/output partitioning."""

from .partition import (
    Partition,
    RequirementPartition,
    classify_requirement,
    partition_formulas,
    partition_report,
    unify,
)
from .propositions import Proposition, clause_propositions
from .semantics import (
    Color,
    SemanticAnalysis,
    SemanticsDelta,
    WordEntry,
    analyse,
    analyse_incremental,
    mutual_exclusion_assumptions,
    no_reasoning,
    semantics_cache_info,
)
from .templates import TranslationOptions, clause_formula, group_formula, sentence_formula
from .timeabs import (
    AbstractionMethod,
    AbstractionResult,
    abstract_time,
    chain_lengths,
    rewrite_chains,
)
from .translator import (
    RequirementTranslation,
    SpecificationTranslation,
    Translator,
    translate_requirements,
)

__all__ = [
    "AbstractionMethod",
    "AbstractionResult",
    "Color",
    "Partition",
    "Proposition",
    "RequirementPartition",
    "RequirementTranslation",
    "SemanticAnalysis",
    "SemanticsDelta",
    "SpecificationTranslation",
    "TranslationOptions",
    "Translator",
    "WordEntry",
    "abstract_time",
    "analyse",
    "analyse_incremental",
    "chain_lengths",
    "classify_requirement",
    "clause_formula",
    "clause_propositions",
    "group_formula",
    "mutual_exclusion_assumptions",
    "no_reasoning",
    "partition_formulas",
    "partition_report",
    "rewrite_chains",
    "semantics_cache_info",
    "sentence_formula",
    "translate_requirements",
    "unify",
]
