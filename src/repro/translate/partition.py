"""Heuristic input/output variable partition (Section IV-F).

"For left-hand parts in an implication, or for right-hand parts of the
Until operator, we assume that the constituting variables are input
variables.  If a proposition in positive form appears in the both sides of
such operators, it is assumed as an output."  Per-requirement partitions
are then unified: any conflict makes the variable an output, and if no
input remains one output is promoted (deterministically, instead of the
paper's random pick).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..logic.ast import (
    And,
    Atom,
    Bool,
    Finally,
    Formula,
    Globally,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
    WeakUntil,
    atoms,
)


@dataclass(frozen=True)
class Partition:
    """A complete input/output split of the specification's propositions."""

    inputs: FrozenSet[str]
    outputs: FrozenSet[str]

    def __post_init__(self) -> None:
        overlap = self.inputs & self.outputs
        if overlap:
            raise ValueError(f"variables on both sides: {sorted(overlap)}")

    def move_to_output(self, name: str) -> "Partition":
        """Refinement step: reclassify one variable as an output."""
        if name not in self.inputs:
            raise ValueError(f"{name!r} is not an input")
        return Partition(self.inputs - {name}, self.outputs | {name})

    def move_to_input(self, name: str) -> "Partition":
        if name not in self.outputs:
            raise ValueError(f"{name!r} is not an output")
        return Partition(self.inputs | {name}, self.outputs - {name})


@dataclass
class RequirementPartition:
    """Per-requirement variable classification, before unification."""

    inputs: Set[str] = field(default_factory=set)
    outputs: Set[str] = field(default_factory=set)


def classify_requirement(formula: Formula) -> RequirementPartition:
    """Classify one requirement's variables by the paper's side heuristic."""
    condition_side: Set[str] = set()
    response_side: Set[str] = set()
    _walk(formula, condition_side, response_side, in_condition=False)
    both = condition_side & response_side
    return RequirementPartition(
        inputs=condition_side - both,
        outputs=(response_side - condition_side) | both,
    )


def _walk(
    formula: Formula,
    condition: Set[str],
    response: Set[str],
    in_condition: bool,
) -> None:
    if isinstance(formula, Atom):
        (condition if in_condition else response).add(formula.name)
        return
    if isinstance(formula, Bool):
        return
    if isinstance(formula, Implies):
        _walk(formula.left, condition, response, True)
        _walk(formula.right, condition, response, in_condition)
        return
    if isinstance(formula, (Until, WeakUntil)):
        # The right-hand side of Until is the environment event that
        # releases the obligation.
        _walk(formula.left, condition, response, in_condition)
        _walk(formula.right, condition, response, True)
        return
    if isinstance(formula, Iff):
        _walk(formula.left, condition, response, in_condition)
        _walk(formula.right, condition, response, in_condition)
        return
    for child in formula.children():
        _walk(child, condition, response, in_condition)


def unify(
    per_requirement: Sequence[RequirementPartition],
) -> Partition:
    """Merge per-requirement classifications (conflicts become outputs)."""
    inputs: Set[str] = set()
    outputs: Set[str] = set()
    for part in per_requirement:
        inputs |= part.inputs
        outputs |= part.outputs
    conflicted = inputs & outputs
    inputs -= conflicted
    if not inputs and outputs:
        # The paper picks a random output; we pick the alphabetically first
        # so runs are reproducible.
        promoted = min(outputs)
        inputs = {promoted}
        outputs = outputs - {promoted}
    return Partition(frozenset(inputs), frozenset(outputs))


def partition_formulas(formulas: Sequence[Formula]) -> Partition:
    """End-to-end heuristic: classify each requirement, then unify."""
    return unify([classify_requirement(formula) for formula in formulas])


def partition_report(
    formulas: Sequence[Formula], partition: Partition
) -> List[Tuple[int, FrozenSet[str], FrozenSet[str]]]:
    """Per-requirement view of the final partition, for diagnostics."""
    report = []
    for index, formula in enumerate(formulas):
        names = atoms(formula)
        report.append(
            (index, names & partition.inputs, names & partition.outputs)
        )
    return report
