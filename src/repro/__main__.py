"""Command-line interface.

``python -m repro check <requirements.txt>`` runs the full SpecCC
pipeline on a plain-text requirement document (one sentence per line,
``#`` comments allowed) and prints the consistency report; ``--ltl``
additionally prints the translated formulas, ``--tree`` the syntax trees,
``--controllers`` the synthesized Mealy machines and ``--json`` a
machine-readable report instead of the textual summary.

``python -m repro serve`` runs the long-lived JSON-lines service loop on
stdin/stdout (see :mod:`repro.service.server` for the protocol) — or,
with ``--tcp HOST:PORT``, on a listening socket (see
:mod:`repro.service.gateway`).  ``python -m repro batch <dir>`` checks
every ``*.txt`` document in a directory concurrently, one JSON report
line per document; ``--backend remote --bind HOST:PORT`` dispatches to
``python -m repro worker --connect HOST:PORT`` processes on other
machines instead of local worker processes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core.pipeline import SpecCC, SpecCCConfig
from .nlp import parse_sentence, render_sentence, split_sentences
from .translate import AbstractionMethod, TranslationOptions


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--abstraction",
        choices=[method.value for method in AbstractionMethod],
        default=AbstractionMethod.OPTIMAL.value,
        help="time abstraction method (default: optimal)",
    )
    parser.add_argument(
        "--error-bound", type=int, default=5, help="budget B of Eq. (2)"
    )
    parser.add_argument(
        "--keep-next",
        action="store_true",
        help="translate the 'next' marker as an X operator (the paper drops it)",
    )


def _config_from(args: argparse.Namespace) -> SpecCCConfig:
    return SpecCCConfig(
        translation=TranslationOptions(next_as_x=args.keep_next),
        abstraction=AbstractionMethod(args.abstraction),
        error_bound=args.error_bound,
    )


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="record nested spans across the whole run and write them as "
        "Chrome trace-event JSON (open in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--slow-span-ms",
        type=float,
        default=None,
        help="log any span exceeding this threshold (milliseconds) with "
        "its attributes via the 'repro.obs.trace' logger; implies tracing",
    )


class _TraceScope:
    """Installs the process-wide tracer for one CLI run, if requested."""

    def __init__(self, args: argparse.Namespace) -> None:
        self.trace_out = args.trace_out
        self.slow_ms = args.slow_span_ms
        self.tracer = None
        self._previous = None

    def __enter__(self) -> "_TraceScope":
        if self.trace_out is not None or self.slow_ms is not None:
            from .obs.trace import Tracer, set_process_tracer

            self.tracer = Tracer(name="cli", slow_ms=self.slow_ms)
            self._previous = set_process_tracer(self.tracer)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.tracer is None:
            return
        from .obs.trace import set_process_tracer

        set_process_tracer(self._previous)
        if self.trace_out is not None:
            events = self.tracer.export_chrome(self.trace_out)
            print(
                f"trace: {events} events -> {self.trace_out}", file=sys.stderr
            )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpecCC: consistency checking of natural-language specifications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check one requirement document")
    check.add_argument("document", type=Path, help="requirement text file")
    check.add_argument("--ltl", action="store_true", help="print translated LTL")
    check.add_argument("--tree", action="store_true", help="print syntax trees")
    check.add_argument(
        "--controllers", action="store_true", help="print synthesized machines"
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (same format as serve/batch)",
    )
    check.add_argument(
        "--stats",
        action="store_true",
        help="attach cache and synthesis-engine statistics (the serve "
        "loop's 'stats' payload) to the report",
    )
    _add_config_arguments(check)
    _add_trace_arguments(check)

    serve = sub.add_parser(
        "serve", help="run the JSON-lines service loop on stdin/stdout"
    )
    serve.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="asyncio front end: multiplex concurrent sessions (tag requests "
        "with 'session'; batch/check offloaded to the worker pool)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="per-request wall-clock deadline in seconds; an expired "
        "request gets a structured 'timeout' error (default: none)",
    )
    serve.add_argument(
        "--max-request-bytes",
        type=int,
        default=None,
        help="bound on one raw request line; longer lines get a "
        "structured 'oversized' error (default: 1 MiB)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="async only: max requests queued per session before new ones "
        "are rejected with 'overloaded' (default: 64)",
    )
    serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help="listen on a TCP socket instead of stdio (port 0 picks a "
        "free port; the bound address is printed to stderr); implies "
        "the async front end",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=64,
        help="TCP only: concurrent client connections before new ones "
        "are rejected with 'overloaded' (default: 64)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="TCP only: per-connection request rate in requests/second "
        "(token bucket); excess requests get 'overloaded' (default: none)",
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        default=None,
        help="TCP only: token-bucket burst capacity (default: the rate)",
    )
    serve.add_argument(
        "--no-client-shutdown",
        action="store_true",
        help="TCP only: reject the 'shutdown' op over the network "
        "(stop the gateway with SIGTERM instead)",
    )
    serve.add_argument(
        "--journal",
        type=Path,
        metavar="DIR",
        default=None,
        help="durable sessions: write-ahead journal every session "
        "mutation under DIR, recover (replay) existing journals at "
        "startup, and enable the 'attach' op for client resume "
        "(see the README's Durability & recovery section)",
    )
    serve.add_argument(
        "--journal-fsync",
        default="always",
        metavar="POLICY",
        help="journal durability policy: 'always' (fsync every append), "
        "'interval:<n>' (fsync every n appends) or 'never' (flush to "
        "the OS only) (default: always)",
    )
    serve.add_argument(
        "--journal-compact-every",
        type=int,
        default=256,
        metavar="N",
        help="snapshot-compact a session's journal once N records have "
        "accumulated (0 disables compaction; default: 256)",
    )
    serve.add_argument(
        "--workers-bind",
        metavar="HOST:PORT",
        default=None,
        help="TCP only: also listen here for 'python -m repro worker' "
        "registrations and dispatch batch/check work to them instead of "
        "local worker processes",
    )
    serve.add_argument(
        "--min-workers",
        type=int,
        default=1,
        help="with --workers-bind: wait for this many registered workers "
        "before the first dispatch (default: 1)",
    )
    _add_config_arguments(serve)

    worker = sub.add_parser(
        "worker",
        help="run a remote pool worker: connect to a dispatcher hub and "
        "execute its document-check tasks",
    )
    worker.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="the RemoteWorkerHub to register with (a 'serve --tcp "
        "--workers-bind' gateway or a 'batch --backend remote --bind' run)",
    )
    worker.add_argument(
        "--name",
        default=None,
        help="stable worker name (default: hostname-pid); reusing a name "
        "across restarts keeps its registration index, so scheduled "
        "faults and placement stay deterministic",
    )
    worker.add_argument(
        "--reconnect",
        action="store_true",
        help="re-register after the hub hangs up or restarts instead of "
        "exiting",
    )
    worker.add_argument(
        "--reconnect-delay",
        type=float,
        default=0.5,
        help="base delay of the reconnect backoff; consecutive failed "
        "attempts back off exponentially (seeded jitter) from here "
        "(default: 0.5)",
    )
    worker.add_argument(
        "--reconnect-cap",
        type=float,
        default=30.0,
        help="upper bound on the reconnect backoff delay in seconds "
        "(default: 30)",
    )

    batch = sub.add_parser(
        "batch", help="check every *.txt document in a directory concurrently"
    )
    batch.add_argument("directory", type=Path, help="directory of *.txt documents")
    batch.add_argument(
        "--workers", type=int, default=4, help="pool size (default: 4)"
    )
    batch.add_argument(
        "--backend",
        choices=["thread", "process", "process-fresh", "remote"],
        default="thread",
        help="worker pool backend: thread (shared in-process caches), "
        "process (persistent sharded worker pool, warm per-process caches), "
        "process-fresh (one cold tool per task; the pre-pool reference) "
        "or remote ('python -m repro worker' processes registered over "
        "TCP; needs --bind)",
    )
    batch.add_argument(
        "--bind",
        metavar="HOST:PORT",
        default=None,
        help="remote backend: listen for worker registrations here "
        "(port 0 picks a free port; the bound address is printed to "
        "stderr)",
    )
    batch.add_argument(
        "--min-workers",
        type=int,
        default=1,
        help="remote backend: wait for this many registered workers "
        "before dispatching (default: 1)",
    )
    batch.add_argument(
        "--output", type=Path, default=None,
        help="write the JSON-lines results here instead of stdout",
    )
    batch.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="process backend: per-document wall-clock watchdog in "
        "seconds; a hung worker is respawned and the document retried "
        "(default: none)",
    )
    batch.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="process backend: supervised tries per document before it "
        "degrades to the in-process path or an error record (default: 3)",
    )
    _add_config_arguments(batch)
    _add_trace_arguments(batch)
    return parser


def run_check(args: argparse.Namespace) -> int:
    text = args.document.read_text()
    tool = SpecCC(_config_from(args))

    if args.tree:
        for sentence in split_sentences(text):
            print(render_sentence(parse_sentence(sentence)))
            print()

    report = tool.check_document(text)
    if args.json:
        from .service.reportjson import report_to_dict, stats_to_dict

        # With --stats every gauge lives exactly once, under "stats";
        # without it the report keeps its compact "cache" attachment.
        if args.stats:
            from .service.pool import shared_pool_stats

            data = report_to_dict(report)
            data["stats"] = stats_to_dict(tool, pools=shared_pool_stats())
        else:
            data = report_to_dict(report, cache=tool.cache_stats())
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0 if report.consistent else 1
    if args.ltl:
        print("translated LTL:")
        for requirement in report.translation.requirements:
            print(f"  [{requirement.identifier}] {requirement.formula}")
        print()
    print(report.summary())
    if args.controllers and report.controllers:
        print()
        for machine in report.controllers:
            print(machine.describe())
    if args.stats:
        from .service.pool import shared_pool_stats
        from .service.reportjson import stats_to_dict

        print()
        print(
            json.dumps(
                stats_to_dict(tool, pools=shared_pool_stats()),
                indent=2,
                sort_keys=True,
            )
        )
    return 0 if report.consistent else 1


def _parse_address(text: str) -> "tuple":
    """``HOST:PORT`` → ``(host, port)`` (raises SystemExit on nonsense)."""
    host, separator, port = text.rpartition(":")
    if not separator or not host:
        raise SystemExit(f"expected HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"invalid port in {text!r}") from None


def run_serve(args: argparse.Namespace) -> int:
    from .service.server import DEFAULT_MAX_REQUEST_BYTES, serve, serve_async

    tool = SpecCC(_config_from(args))
    max_bytes = (
        args.max_request_bytes
        if args.max_request_bytes is not None
        else DEFAULT_MAX_REQUEST_BYTES
    )
    journal_store = None
    if args.journal is not None:
        from .service.faults import FaultPlan, install_journal
        from .service.journal import JournalStore

        # REPRO_FAULTS journal faults (journal_crash / journal_torn) are
        # armed only on journaling serve processes — the soak harnesses'
        # crash injection point.
        install_journal(FaultPlan.from_env())
        journal_store = JournalStore(
            args.journal,
            fsync=args.journal_fsync,
            compact_every=args.journal_compact_every,
        )
    if args.tcp is not None:
        from .service.gateway import serve_tcp

        host, port = _parse_address(args.tcp)
        hub = None
        batch_pool = None
        if args.workers_bind is not None:
            from .service.pool import WorkerPool, register_shared_pool
            from .service.remote import RemoteWorkerHub

            worker_host, worker_port = _parse_address(args.workers_bind)
            hub = RemoteWorkerHub(
                host=worker_host, port=worker_port, min_workers=args.min_workers
            )
            worker_host, worker_port = hub.start()
            print(
                f"workers connect to {worker_host}:{worker_port}",
                file=sys.stderr,
                flush=True,
            )
            # Registered with the shared registry so the stats/metrics
            # ops report its routing and recovery counters over the wire.
            batch_pool = register_shared_pool(
                WorkerPool(
                    tool=tool,
                    shards=max(8, 4 * args.min_workers),
                    remote=hub,
                )
            )
        try:
            return serve_tcp(
                host,
                port,
                tool=tool,
                request_timeout=args.request_timeout,
                max_request_bytes=max_bytes,
                max_queue=args.max_queue,
                max_connections=args.max_connections,
                rate=args.rate_limit,
                burst=args.rate_burst,
                allow_shutdown=not args.no_client_shutdown,
                batch_pool=batch_pool,
                journal_store=journal_store,
            )
        finally:
            if batch_pool is not None:
                batch_pool.shutdown(wait=False)
            if hub is not None:
                hub.close()
            if journal_store is not None:
                journal_store.close()
    try:
        if args.use_async:
            return serve_async(
                tool=tool,
                request_timeout=args.request_timeout,
                max_request_bytes=max_bytes,
                max_queue=args.max_queue,
                journal_store=journal_store,
            )
        return serve(
            tool=tool,
            request_timeout=args.request_timeout,
            max_request_bytes=max_bytes,
            journal_store=journal_store,
            install_signal_handlers=True,
        )
    finally:
        if journal_store is not None:
            journal_store.close()


def run_worker(args: argparse.Namespace) -> int:
    from .service.remote import run_worker as run_once
    from .service.remote import run_worker_loop

    host, port = _parse_address(args.connect)
    if args.reconnect:
        return run_worker_loop(
            host,
            port,
            name=args.name,
            reconnect_delay=args.reconnect_delay,
            reconnect_cap=args.reconnect_cap,
        )
    return run_once(host, port, name=args.name)


def run_batch(args: argparse.Namespace) -> int:
    from .service.batch import BatchChecker
    from .service.supervision import SupervisionConfig

    paths = sorted(args.directory.glob("*.txt"))
    if not paths:
        print(f"no *.txt documents in {args.directory}", file=sys.stderr)
        return 2
    supervision = None
    if args.backend in ("process", "remote") and (
        args.task_timeout is not None or args.max_attempts != 3
    ):
        supervision = SupervisionConfig(
            task_timeout=args.task_timeout, max_attempts=args.max_attempts
        )
    hub = None
    if args.backend == "remote":
        if args.bind is None:
            print("--backend remote needs --bind HOST:PORT", file=sys.stderr)
            return 2
        from .service.remote import RemoteWorkerHub

        host, port = _parse_address(args.bind)
        hub = RemoteWorkerHub(host=host, port=port, min_workers=args.min_workers)
        host, port = hub.start()
        print(f"workers connect to {host}:{port}", file=sys.stderr)
        sys.stderr.flush()
    checker = BatchChecker(
        config=_config_from(args),
        workers=args.workers if args.backend != "remote" else args.min_workers,
        backend=args.backend,
        supervision=supervision,
        remote=hub,
    )
    try:
        results = checker.check_documents(
            [(path.name, path.read_text()) for path in paths]
        )
    finally:
        if hub is not None:
            if checker.pool is not None:
                checker.pool.shutdown()
            hub.close()
    lines = [
        json.dumps({"name": result.name, "report": result.data}, sort_keys=True)
        for result in results
    ]
    if args.output is not None:
        args.output.write_text("\n".join(lines) + "\n")
    else:
        for line in lines:
            print(line)
    return 0 if all(result.consistent for result in results) else 1


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "check":
        if args.json and (args.ltl or args.tree or args.controllers):
            # --json owns stdout; the formulas are already in the report.
            parser.error("--json cannot be combined with --ltl/--tree/--controllers")
        with _TraceScope(args):
            return run_check(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "worker":
        return run_worker(args)
    if args.command == "batch":
        with _TraceScope(args):
            return run_batch(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
