"""Command-line interface: ``python -m repro check <requirements.txt>``.

Runs the full SpecCC pipeline on a plain-text requirement document (one
sentence per line, ``#`` comments allowed) and prints the consistency
report; ``--ltl`` additionally prints the translated formulas, ``--tree``
the syntax trees, and ``--controllers`` the synthesized Mealy machines.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.pipeline import SpecCC, SpecCCConfig
from .nlp import parse_sentence, render_sentence, split_sentences
from .translate import AbstractionMethod, TranslationOptions


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpecCC: consistency checking of natural-language specifications",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser("check", help="check one requirement document")
    check.add_argument("document", type=Path, help="requirement text file")
    check.add_argument("--ltl", action="store_true", help="print translated LTL")
    check.add_argument("--tree", action="store_true", help="print syntax trees")
    check.add_argument(
        "--controllers", action="store_true", help="print synthesized machines"
    )
    check.add_argument(
        "--abstraction",
        choices=[method.value for method in AbstractionMethod],
        default=AbstractionMethod.OPTIMAL.value,
        help="time abstraction method (default: optimal)",
    )
    check.add_argument(
        "--error-bound", type=int, default=5, help="budget B of Eq. (2)"
    )
    check.add_argument(
        "--keep-next",
        action="store_true",
        help="translate the 'next' marker as an X operator (the paper drops it)",
    )
    return parser


def run_check(args: argparse.Namespace) -> int:
    text = args.document.read_text()
    config = SpecCCConfig(
        translation=TranslationOptions(next_as_x=args.keep_next),
        abstraction=AbstractionMethod(args.abstraction),
        error_bound=args.error_bound,
    )
    tool = SpecCC(config)

    if args.tree:
        for sentence in split_sentences(text):
            print(render_sentence(parse_sentence(sentence)))
            print()

    report = tool.check_document(text)
    if args.ltl:
        print("translated LTL:")
        for requirement in report.translation.requirements:
            print(f"  [{requirement.identifier}] {requirement.formula}")
        print()
    print(report.summary())
    if args.controllers and report.controllers:
        print()
        for machine in report.controllers:
            print(machine.describe())
    return 0 if report.consistent else 1


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "check":
        return run_check(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
