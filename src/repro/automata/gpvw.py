"""LTL to generalized Büchi automata via the GPVW tableau construction.

This is the classic on-the-fly algorithm of Gerth, Peled, Vardi and Wolper
("Simple on-the-fly automatic verification of linear temporal logic", PSTV
1995), which also powers the Stanford-parser-to-LTL toolchains the paper
builds on.  Input formulas are first brought into negation normal form; the
resulting automaton has

* one transition label per *node* (the conjunction of literals the node
  committed to), and
* one acceptance set per ``Until`` subformula, containing the nodes that do
  not owe that until obligation.

The implementation is iterative (explicit worklist) so deeply nested ``X``
chains — the discrete-time encoding of Section IV-E produces chains of up
to 180 — do not overflow the Python recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, FrozenSet, List, Optional, Set, Tuple
from weakref import WeakKeyDictionary

from ..logic.ast import (
    And,
    Atom,
    Bool,
    Formula,
    Next,
    Not,
    Or,
    Release,
    Until,
    atoms as formula_atoms,
)
from ..logic.nnf import to_nnf
from .buchi import BuchiAutomaton, Label


@dataclass
class _Node:
    """A tableau node in construction."""

    name: int
    incoming: Set[int] = field(default_factory=set)
    new: Set[Formula] = field(default_factory=set)
    old: Set[Formula] = field(default_factory=set)
    next: Set[Formula] = field(default_factory=set)

    def clone(self, name: int) -> "_Node":
        return _Node(
            name=name,
            incoming=set(self.incoming),
            new=set(self.new),
            old=set(self.old),
            next=set(self.next),
        )


_INIT = -1  # virtual predecessor of initial nodes

# Stable per-formula sort keys make node processing independent of Python's
# per-process hash randomisation, so repeated runs build identical automata
# (important for reproducible benchmark tables).  The canonical string is
# cached on the interned node itself (Formula.sort_key), so — unlike the old
# module-level ``_sort_keys`` dict — the cache dies with the formula instead
# of growing forever in long-lived processes.
_sort_key = Formula.sort_key


def _pop_deterministic(formulas: Set[Formula]) -> Formula:
    chosen = min(formulas, key=_sort_key)
    formulas.remove(chosen)
    return chosen


# Per-formula automaton cache (one per ``simplify_nnf`` flavour).  The
# automaton depends only on the formula, so the realizability driver, the
# partition-repair loop and the localization checker all reuse one
# translation however often they revisit the formula.  Weak keys: entries
# vanish with the (interned) formula.  Cached automata are shared — callers
# must treat them as immutable, which every consumer in this code base does.
_translation_cache: Tuple[
    "WeakKeyDictionary[Formula, BuchiAutomaton]",
    "WeakKeyDictionary[Formula, BuchiAutomaton]",
] = (WeakKeyDictionary(), WeakKeyDictionary())


def clear_translation_cache() -> None:
    """Drop all cached formula-to-automaton translations."""
    for cache in _translation_cache:
        cache.clear()


def translation_cache_size() -> int:
    return sum(len(cache) for cache in _translation_cache)


def translate(
    formula: Formula, *, simplify_nnf: bool = True, use_cache: bool = True
) -> BuchiAutomaton:
    """Translate *formula* into a generalized Büchi automaton.

    The automaton accepts exactly the infinite words satisfying *formula*.
    Results are cached per formula (see ``_translation_cache``); pass
    ``use_cache=False`` to force a fresh construction.
    """
    cache = _translation_cache[bool(simplify_nnf)]
    if use_cache:
        cached = cache.get(formula)
        if cached is not None:
            return cached
    automaton = _translate(formula, simplify_nnf)
    if use_cache:
        cache[formula] = automaton
    return automaton


def _translate(formula: Formula, simplify_nnf: bool) -> BuchiAutomaton:
    nnf = to_nnf(formula)
    if simplify_nnf:
        from ..logic.rewrite import simplify

        nnf = simplify(nnf)
        # simplify() may reintroduce F/G/W sugar; normalise once more.
        nnf = to_nnf(nnf)

    names = count()
    initial = _Node(name=next(names), incoming={_INIT}, new={nnf})

    # Finished nodes, keyed by (old, next) for merging.  Interned formulas
    # let the key be two frozensets of small ints — structural equality of
    # formula sets collapses to integer-set equality.
    finished: Dict[Tuple[FrozenSet[int], FrozenSet[int]], _Node] = {}
    worklist: List[_Node] = [initial]

    while worklist:
        node = worklist.pop()
        if not node.new:
            key = (
                frozenset(f._uid for f in node.old),
                frozenset(f._uid for f in node.next),
            )
            existing = finished.get(key)
            if existing is not None:
                existing.incoming |= node.incoming
                continue
            finished[key] = node
            successor = _Node(
                name=next(names), incoming={node.name}, new=set(node.next)
            )
            worklist.append(successor)
            continue

        eta = _pop_deterministic(node.new)
        if isinstance(eta, Bool):
            if eta.value:
                node.old.add(eta)
                worklist.append(node)
            # 'false' discards the node.
            continue
        if isinstance(eta, (Atom, Not)):
            negation = _negate_literal(eta)
            if negation in node.old:
                continue  # contradictory node
            node.old.add(eta)
            worklist.append(node)
            continue
        if isinstance(eta, And):
            for part in (eta.left, eta.right):
                if part not in node.old:
                    node.new.add(part)
            node.old.add(eta)
            worklist.append(node)
            continue
        if isinstance(eta, Next):
            node.old.add(eta)
            node.next.add(eta.operand)
            worklist.append(node)
            continue
        if isinstance(eta, (Or, Until, Release)):
            node1 = node.clone(next(names))
            node2 = node.clone(next(names))
            new1, next1, new2 = _split(eta)
            node1.old.add(eta)
            node2.old.add(eta)
            node1.new |= new1 - node1.old
            node1.next |= next1
            node2.new |= new2 - node2.old
            worklist.append(node1)
            worklist.append(node2)
            continue
        raise TypeError(f"formula not in NNF: {eta!r}")

    return _build_automaton(nnf, list(finished.values()))


def _negate_literal(literal: Formula) -> Formula:
    if isinstance(literal, Not):
        return literal.operand
    return Not(literal)


def _split(eta: Formula) -> Tuple[Set[Formula], Set[Formula], Set[Formula]]:
    """The GPVW split table: (New1, Next1, New2)."""
    if isinstance(eta, Until):
        return {eta.left}, {eta}, {eta.right}
    if isinstance(eta, Release):
        return {eta.right}, {eta}, {eta.left, eta.right}
    if isinstance(eta, Or):
        return {eta.left}, set(), {eta.right}
    raise TypeError(f"not a splittable formula: {eta!r}")


def _build_automaton(nnf: Formula, nodes: List[_Node]) -> BuchiAutomaton:
    automaton = BuchiAutomaton(atoms=formula_atoms(nnf))
    state_of: Dict[int, int] = {}
    for node in nodes:
        description = ", ".join(sorted(f.sort_key() for f in node.old)) or "true"
        state_of[node.name] = automaton.new_state(description)

    labels: Dict[int, Label] = {}
    for node in nodes:
        pos = {f.name for f in node.old if isinstance(f, Atom)}
        neg = {
            f.operand.name
            for f in node.old
            if isinstance(f, Not) and isinstance(f.operand, Atom)
        }
        labels[node.name] = Label.of(pos, neg)

    for node in nodes:
        dst = state_of[node.name]
        label = labels[node.name]
        for pred in node.incoming:
            if pred == _INIT:
                automaton.initial.add(dst)
            elif pred in state_of:
                automaton.add_transition(state_of[pred], label, dst)

    # Initial-state labels also constrain the first letter.  GPVW handles
    # this by treating node labels as constraints on the *incoming*
    # transition; initial nodes have their label checked against letter 0,
    # which we model with a fresh unconstrained pre-initial state.
    pre = automaton.new_state("init")
    for node in nodes:
        if _INIT in node.incoming:
            automaton.add_transition(pre, labels[node.name], state_of[node.name])
    automaton.initial = {pre}

    # Sorted so the acceptance-set order (and hence degeneralization) is
    # identical across runs, not just up to set reordering.
    untils = sorted(
        (f for f in _closure(nnf) if isinstance(f, Until)),
        key=_sort_key,
    )
    accepting_sets: List[Set[int]] = []
    for until in untils:
        members = {
            state_of[node.name]
            for node in nodes
            if until not in node.old or until.right in node.old
        }
        # The pre-initial state belongs to every set: it is visited once.
        members.add(pre)
        accepting_sets.append(members)
    automaton.accepting_sets = accepting_sets
    return automaton


def _closure(formula: Formula) -> Set[Formula]:
    seen: Set[Formula] = set()
    stack = [formula]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(node.children())
    return seen
