"""Emptiness checking of (generalized) Büchi automata with witnesses.

Non-emptiness of a GBA reduces to finding a reachable strongly connected
component that (a) contains at least one transition and (b) intersects every
acceptance set.  Tarjan's algorithm is implemented iteratively; a witness
lasso word is reconstructed by breadth-first search so callers can present
concrete satisfying traces (used by the satisfiability-based consistency
check and by counterexample reporting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..logic.semantics import LassoWord
from .buchi import BuchiAutomaton, Label


@dataclass(frozen=True)
class Witness:
    """An accepting lasso through the automaton and the induced word."""

    prefix_states: Tuple[int, ...]
    loop_states: Tuple[int, ...]
    word: LassoWord


def is_empty(automaton: BuchiAutomaton) -> bool:
    return find_witness(automaton) is None


def find_witness(automaton: BuchiAutomaton) -> Optional[Witness]:
    """Return an accepting lasso, or ``None`` when the language is empty."""
    sccs = _tarjan(automaton)
    for component in sccs:
        if not _has_internal_transition(automaton, component):
            continue
        if all(component & acc for acc in automaton.accepting_sets):
            return _build_witness(automaton, component)
    return None


def _tarjan(automaton: BuchiAutomaton) -> List[Set[int]]:
    """Iterative Tarjan over the reachable part; returns all SCCs."""
    index_counter = 0
    indices: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[Set[int]] = []

    for root in automaton.initial:
        if root in indices:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            state, edge_index = work[-1]
            if edge_index == 0:
                indices[state] = index_counter
                lowlink[state] = index_counter
                index_counter += 1
                stack.append(state)
                on_stack.add(state)
            edges = automaton.successors(state)
            advanced = False
            while edge_index < len(edges):
                _, dst = edges[edge_index]
                edge_index += 1
                if dst not in indices:
                    work[-1] = (state, edge_index)
                    work.append((dst, 0))
                    advanced = True
                    break
                if dst in on_stack:
                    lowlink[state] = min(lowlink[state], indices[dst])
            if advanced:
                continue
            work.pop()
            if lowlink[state] == indices[state]:
                component: Set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == state:
                        break
                sccs.append(component)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[state])
    return sccs


def _has_internal_transition(automaton: BuchiAutomaton, component: Set[int]) -> bool:
    for state in component:
        for _, dst in automaton.successors(state):
            if dst in component:
                return True
    return False


def _build_witness(automaton: BuchiAutomaton, component: Set[int]) -> Witness:
    prefix_states, prefix_labels, entry = _path_to_component(automaton, component)
    loop_states, loop_labels = _loop_through_sets(automaton, component, entry)
    word = LassoWord(
        tuple(_concretise(label) for label in prefix_labels),
        tuple(_concretise(label) for label in loop_labels),
    )
    return Witness(tuple(prefix_states), tuple(loop_states), word)


def _path_to_component(
    automaton: BuchiAutomaton, component: Set[int]
) -> Tuple[List[int], List[Label], int]:
    """BFS from the initial states to *component*; returns (states, labels,
    entry state)."""
    parents: Dict[int, Tuple[int, Label]] = {}
    queue: List[int] = list(automaton.initial)
    seen: Set[int] = set(queue)
    target: Optional[int] = None
    for state in queue:
        if state in component:
            target = state
    position = 0
    while target is None and position < len(queue):
        state = queue[position]
        position += 1
        for label, dst in automaton.successors(state):
            if dst in seen:
                continue
            seen.add(dst)
            parents[dst] = (state, label)
            if dst in component:
                target = dst
                break
            queue.append(dst)
    assert target is not None, "component must be reachable"
    states = [target]
    labels: List[Label] = []
    current = target
    while current in parents:
        parent, label = parents[current]
        labels.append(label)
        states.append(parent)
        current = parent
    states.reverse()
    labels.reverse()
    return states, labels, target


def _loop_through_sets(
    automaton: BuchiAutomaton, component: Set[int], entry: int
) -> Tuple[List[int], List[Label]]:
    """A cycle inside *component* from *entry* back to itself that touches
    every acceptance set."""
    targets: List[Set[int]] = []
    for acc in automaton.accepting_sets:
        targets.append(acc & component)
    loop_states: List[int] = [entry]
    loop_labels: List[Label] = []
    current = entry
    for target in targets:
        if any(state in target for state in loop_states):
            continue
        states, labels = _bfs_inside(automaton, component, current, target)
        loop_states.extend(states[1:])
        loop_labels.extend(labels)
        current = loop_states[-1]
    states, labels = _bfs_inside(automaton, component, current, {entry})
    loop_states.extend(states[1:])
    loop_labels.extend(labels)
    if not loop_labels:
        # entry satisfies every set and needs a self-loop cycle.
        states, labels = _shortest_cycle(automaton, component, entry)
        loop_states.extend(states[1:])
        loop_labels.extend(labels)
    # Drop the duplicated final state (== entry).
    return loop_states[:-1], loop_labels


def _bfs_inside(
    automaton: BuchiAutomaton,
    component: Set[int],
    source: int,
    targets: Set[int],
) -> Tuple[List[int], List[Label]]:
    if source in targets:
        return [source], []
    parents: Dict[int, Tuple[int, Label]] = {}
    queue = [source]
    seen = {source}
    found: Optional[int] = None
    position = 0
    while found is None and position < len(queue):
        state = queue[position]
        position += 1
        for label, dst in automaton.successors(state):
            if dst not in component or dst in seen:
                continue
            seen.add(dst)
            parents[dst] = (state, label)
            if dst in targets:
                found = dst
                break
            queue.append(dst)
    assert found is not None, "targets must be reachable inside the SCC"
    states = [found]
    labels: List[Label] = []
    current = found
    while current != source:
        parent, label = parents[current]
        labels.append(label)
        states.append(parent)
        current = parent
    states.reverse()
    labels.reverse()
    return states, labels


def _shortest_cycle(
    automaton: BuchiAutomaton, component: Set[int], state: int
) -> Tuple[List[int], List[Label]]:
    """Shortest non-empty cycle from *state* back to itself inside the SCC."""
    best: Optional[Tuple[List[int], List[Label]]] = None
    for label, dst in automaton.successors(state):
        if dst == state:
            return [state, state], [label]
        if dst not in component:
            continue
        states, labels = _bfs_inside(automaton, component, dst, {state})
        candidate = ([state] + states, [label] + labels)
        if best is None or len(candidate[0]) < len(best[0]):
            best = candidate
    assert best is not None, "SCC with an internal transition has a cycle"
    return best


def _concretise(label: Label) -> FrozenSet[str]:
    """Pick the concrete letter that sets exactly the positive literals."""
    return frozenset(label.pos)
