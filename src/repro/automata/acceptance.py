"""Membership of ultimately-periodic words in Büchi languages.

Used by the test suite to cross-validate the GPVW construction against the
direct trace semantics of :mod:`repro.logic.semantics`, and by the pipeline
to double-check witnesses before they are shown to the user.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..logic.semantics import LassoWord
from .buchi import BuchiAutomaton, Label
from .emptiness import is_empty


def accepts(automaton: BuchiAutomaton, word: LassoWord) -> bool:
    """Decide whether *automaton* accepts *word*.

    The product of the automaton with the lasso's position structure is a
    Büchi automaton over a single-letter alphabet; the word is accepted iff
    that product has an accepting lasso.
    """
    horizon = len(word)
    product = BuchiAutomaton(atoms=automaton.atoms)
    index: Dict[Tuple[int, int], int] = {}

    def state_for(state: int, position: int) -> int:
        key = (state, position)
        if key not in index:
            index[key] = product.new_state(f"{state}@{position}")
        return index[key]

    worklist = []
    for init in automaton.initial:
        product.initial.add(state_for(init, 0))
        worklist.append((init, 0))
    seen = set(worklist)
    while worklist:
        state, position = worklist.pop()
        src = index[(state, position)]
        letter = word.letter(position)
        next_position = word.canonical_position(position + 1)
        for label, dst in automaton.successors(state):
            if not label.matches(letter):
                continue
            product.add_transition(src, Label(), state_for(dst, next_position))
            if (dst, next_position) not in seen:
                seen.add((dst, next_position))
                worklist.append((dst, next_position))

    product.accepting_sets = [
        {
            index[(state, position)]
            for (state, position) in index
            if state in acc
        }
        for acc in automaton.accepting_sets
    ]
    return not is_empty(product)
