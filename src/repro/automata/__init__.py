"""Automata substrate: Büchi automata, GPVW translation, emptiness, LTL-SAT."""

from .acceptance import accepts
from .buchi import BuchiAutomaton, Label, Transition
from .emptiness import Witness, find_witness, is_empty
from .gpvw import translate
from .ltlsat import (
    counterexample_to_implication,
    equivalent,
    is_satisfiable,
    is_valid,
    satisfiable,
)

__all__ = [
    "BuchiAutomaton",
    "Label",
    "Transition",
    "Witness",
    "accepts",
    "counterexample_to_implication",
    "equivalent",
    "find_witness",
    "is_empty",
    "is_satisfiable",
    "is_valid",
    "satisfiable",
    "translate",
]
