"""LTL satisfiability, validity and equivalence via automata emptiness.

Satisfiability is the cheap first-stage consistency check the pipeline runs
before the full realizability analysis: an unsatisfiable conjunction of
requirements can never be implemented, whatever the input/output partition.
"""

from __future__ import annotations

from typing import Optional

from ..logic.ast import And, Formula, Not
from ..logic.semantics import LassoWord
from .emptiness import Witness, find_witness
from .gpvw import translate


def satisfiable(formula: Formula) -> Optional[Witness]:
    """A satisfying lasso word for *formula*, or ``None`` if unsatisfiable.

    Deliberately uncached beyond the automaton translation: the pipeline's
    repeated satisfiability prechecks are absorbed upstream by the
    component-outcome cache in :mod:`repro.synthesis.realizability`, and
    the conjunction nodes queried here are short-lived, so a weak-keyed
    witness cache would never be hit.
    """
    return find_witness(translate(formula))


def is_satisfiable(formula: Formula) -> bool:
    return satisfiable(formula) is not None


def is_valid(formula: Formula) -> bool:
    """True when *formula* holds on every infinite word."""
    return satisfiable(Not(formula)) is None


def equivalent(left: Formula, right: Formula) -> bool:
    """Language equivalence of two formulas.

    Used by the test suite to compare translated requirements against the
    paper's gold formulas modulo logically-irrelevant syntax differences.
    """
    if satisfiable(And(left, Not(right))) is not None:
        return False
    return satisfiable(And(Not(left), right)) is None


def counterexample_to_implication(
    left: Formula, right: Formula
) -> Optional[LassoWord]:
    """A word satisfying *left* but not *right*, if one exists."""
    witness = satisfiable(And(left, Not(right)))
    return witness.word if witness is not None else None
