"""Büchi automata over partial-letter labels.

Transitions are labelled with a :class:`Label`: a conjunction of literals
over atomic propositions (a *partial* letter).  A concrete letter — a set of
atomic propositions — matches the label when it contains every positive
literal and no negative one.  Partial letters keep the automata produced by
GPVW small: propositions a transition does not mention stay unconstrained,
which the synthesis engines later exploit to avoid enumerating the full
``2^AP`` alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)


@dataclass(frozen=True)
class Label:
    """A conjunction of literals: ``pos`` must hold, ``neg`` must not."""

    pos: FrozenSet[str] = frozenset()
    neg: FrozenSet[str] = frozenset()

    @staticmethod
    def of(pos: Iterable[str] = (), neg: Iterable[str] = ()) -> "Label":
        return Label(frozenset(pos), frozenset(neg))

    def is_consistent(self) -> bool:
        return not (self.pos & self.neg)

    def matches(self, letter: FrozenSet[str]) -> bool:
        return self.pos <= letter and not (self.neg & letter)

    def conjoin(self, other: "Label") -> Optional["Label"]:
        """The conjunction of two labels, or ``None`` when contradictory."""
        pos = self.pos | other.pos
        neg = self.neg | other.neg
        if pos & neg:
            return None
        return Label(frozenset(pos), frozenset(neg))

    def support(self) -> FrozenSet[str]:
        return self.pos | self.neg

    def restrict(self, keep: FrozenSet[str]) -> "Label":
        """Project the label onto the propositions in *keep*."""
        return Label(self.pos & keep, self.neg & keep)

    def __str__(self) -> str:
        parts = sorted(self.pos) + [f"!{name}" for name in sorted(self.neg)]
        return " && ".join(parts) if parts else "true"


@dataclass(frozen=True)
class Transition:
    src: int
    label: Label
    dst: int


@dataclass
class BuchiAutomaton:
    """A (generalized) nondeterministic Büchi automaton.

    ``accepting_sets`` holds one or more sets of accepting *states*; a run is
    accepting when it visits every set infinitely often.  An automaton with a
    single set is an ordinary NBA.  An empty list of sets means "all runs
    accept" and is represented by one set containing every state.
    """

    num_states: int = 0
    initial: Set[int] = field(default_factory=set)
    transitions: Dict[int, List[Tuple[Label, int]]] = field(default_factory=dict)
    accepting_sets: List[Set[int]] = field(default_factory=list)
    atoms: FrozenSet[str] = frozenset()
    state_info: Dict[int, str] = field(default_factory=dict)
    #: Memoised result of :meth:`degeneralize`.  Valid because automata are
    #: treated as immutable once built (the GPVW translation cache shares
    #: them between engines); never set it by hand.
    _degeneralized: Optional["BuchiAutomaton"] = field(
        default=None, repr=False, compare=False
    )

    def new_state(self, info: str = "") -> int:
        state = self.num_states
        self.num_states += 1
        self.transitions[state] = []
        if info:
            self.state_info[state] = info
        return state

    def add_transition(self, src: int, label: Label, dst: int) -> None:
        if not label.is_consistent():
            return
        self.transitions.setdefault(src, []).append((label, dst))

    def successors(self, state: int) -> List[Tuple[Label, int]]:
        return self.transitions.get(state, [])

    def all_transitions(self) -> Iterable[Transition]:
        for src, edges in self.transitions.items():
            for label, dst in edges:
                yield Transition(src, label, dst)

    def num_transitions(self) -> int:
        return sum(len(edges) for edges in self.transitions.values())

    def is_generalized(self) -> bool:
        return len(self.accepting_sets) != 1

    def degeneralize(self) -> "BuchiAutomaton":
        """Counter construction turning a GBA into an equivalent NBA.

        States become ``(state, index)`` where *index* counts how many
        acceptance sets have been visited in order; completing the round trip
        through all sets is the single new acceptance condition.

        The result is memoised: the synthesis engines degeneralize the same
        cached translation once per formula instead of once per call.
        """
        if self._degeneralized is None:
            self._degeneralized = self._degeneralize()
        return self._degeneralized

    def _degeneralize(self) -> "BuchiAutomaton":
        if not self.accepting_sets:
            whole = set(range(self.num_states))
            base = BuchiAutomaton(
                num_states=self.num_states,
                initial=set(self.initial),
                transitions={s: list(e) for s, e in self.transitions.items()},
                accepting_sets=[whole],
                atoms=self.atoms,
                state_info=dict(self.state_info),
            )
            return base
        if len(self.accepting_sets) == 1:
            return self
        sets = self.accepting_sets
        k = len(sets)
        result = BuchiAutomaton(atoms=self.atoms)
        index_of: Dict[Tuple[int, int], int] = {}

        def state_for(state: int, counter: int) -> int:
            key = (state, counter)
            if key not in index_of:
                info = self.state_info.get(state, str(state))
                index_of[key] = result.new_state(f"{info}#{counter}")
            return index_of[key]

        # Counter value c in [0, k) means "waiting to see acceptance set c";
        # value k marks the completion of a full round and is the (single)
        # acceptance condition.  For outgoing transitions, k behaves like 0.
        worklist: List[Tuple[int, int]] = []
        for init in self.initial:
            result.initial.add(state_for(init, 0))
            worklist.append((init, 0))
        seen = set(worklist)
        while worklist:
            state, counter = worklist.pop()
            src = state_for(state, counter)
            effective = 0 if counter == k else counter
            for label, dst in self.successors(state):
                next_counter = effective
                while next_counter < k and dst in sets[next_counter]:
                    next_counter += 1
                result.add_transition(src, label, state_for(dst, next_counter))
                if (dst, next_counter) not in seen:
                    seen.add((dst, next_counter))
                    worklist.append((dst, next_counter))
        accepting = {
            index_of[(state, counter)]
            for (state, counter) in index_of
            if counter == k
        }
        result.accepting_sets = [accepting]
        return result

    def reachable_states(self) -> Set[int]:
        seen = set(self.initial)
        stack = list(self.initial)
        while stack:
            state = stack.pop()
            for _, dst in self.successors(state):
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return seen
