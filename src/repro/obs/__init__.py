"""Observability: nested-span tracing, metrics, Chrome-trace export.

The subsystem is dependency-free and always importable; instrumentation
call sites use :func:`span` unconditionally and pay a near-zero no-op
cost until a tracer is installed (``--trace-out`` on the CLI, or a
``"trace": true`` request flag on the serve protocol).
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    registry,
    reset_counters,
)
from .trace import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    activate,
    activated,
    annotate,
    chrome_events,
    deactivate,
    get_tracer,
    set_process_tracer,
    span,
    tracing_active,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "SpanRecord",
    "Tracer",
    "activate",
    "activated",
    "annotate",
    "chrome_events",
    "deactivate",
    "get_tracer",
    "registry",
    "reset_counters",
    "set_process_tracer",
    "span",
    "tracing_active",
    "write_chrome_trace",
]
