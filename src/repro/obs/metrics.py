"""The unified metrics surface: counters, gauges, latency histograms.

Before this module the repo had five *disjoint* counter surfaces — the
analysis graph's per-stage hit/miss counters, ``SpecCC.cache_stats()``,
the SAT/game engine accumulators (``synthesis_stats()``), worker-pool
routing counters (``pool.stats()``) and the supervision recovery
counters — each with its own dict shape and its own reset path.  The
:class:`MetricsRegistry` absorbs all of them behind **one namespaced
read API** without breaking any of the existing shapes: the legacy
surfaces stay exactly as they are (their tests and callers keep
working), and the registry reads them through registered *collectors*
at snapshot time:

=============== ====================================================
namespace       source
=============== ====================================================
``pipeline.*``  :func:`repro.synthesis.realizability.cache_snapshot`
                (component cache, Algorithm 1 semantics memo,
                automaton cache, interned nodes)
``sat.*``       ``synthesis_stats()`` SAT counters (propagations,
                conflicts, decisions, restarts, clause visits)
``game.*``      ``synthesis_stats()`` safety-game counters
``pool.*``      every registered worker pool's ``stats()`` row
``supervision.*`` fleet-level recovery counters
                (:func:`repro.service.supervision.aggregate_stats`)
``gateway.*``   TCP gateway connection/session gauges
                (:meth:`repro.service.gateway.SpecGateway.stats`,
                registered while a gateway is serving)
``journal.*``   durable-session journal counters — appends, fsyncs,
                compactions, replayed records, truncated tails,
                duplicate acks
                (:meth:`repro.service.journal.JournalStore.stats`,
                registered while a serve loop journals)
=============== ====================================================

On top of the collected namespaces the registry owns *native*
instruments: monotonic *counters* (e.g. the serve loop's per-op request
counts), *gauges*, and fixed-bucket latency *histograms* with
p50/p90/p99 summaries — fed by the tracer (every finished span's
duration lands in ``span.<name>``), surfaced through the ``metrics``
serve op and ``check --stats``.

**One reset path.**  Counter surfaces used to be reset by different
code paths (``clear_caches()`` zeroed the engine accumulators and the
shared graph together, graph GC and per-document clears zeroed graph
counters alone), which could leave cross-surface ratios inconsistent —
a hit count on one surface with its matching lookup total already
zeroed on another.  :func:`reset_counters` is now the single owner:
it zeroes the shared graph's stage counters, the synthesis accumulators
and the registry's native instruments in one call, and
``repro.synthesis.realizability.clear_caches`` routes through it.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default latency bucket upper bounds, in seconds.  Spans in this
#: codebase range from microsecond graph hits to multi-second solver
#: calls, so the buckets are log-spaced across six decades.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Histogram:
    """A fixed-bucket latency histogram with interpolated quantiles.

    Observations are counted into ``len(buckets) + 1`` bins (the last
    bin is the overflow above the largest bound); quantiles interpolate
    linearly inside the containing bucket, clamped to the observed
    min/max so a single observation reports itself exactly.
    """

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q: float) -> Optional[float]:
        """The *q*-quantile (0..1) estimated from the bucket counts."""
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= target:
                low = self.buckets[index - 1] if index > 0 else 0.0
                high = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else (self.max if self.max is not None else low)
                )
                fraction = (target - seen) / bucket_count
                value = low + (high - low) * fraction
                if self.min is not None:
                    value = max(value, self.min)
                if self.max is not None:
                    value = min(value, self.max)
                return value
            seen += bucket_count
        return self.max

    def summary(self) -> Dict[str, Optional[float]]:
        """The headline numbers: count, sum, min/max, p50/p90/p99."""
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def snapshot(self) -> Dict[str, object]:
        data: Dict[str, object] = dict(self.summary())
        data["buckets"] = list(self.buckets)
        data["counts"] = list(self.counts)
        return data


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, histograms, collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Callable[[], object]] = {}

    # -------------------------------------------------- native instruments
    def counter(self, name: str, value: int = 1) -> int:
        """Increment (and return) the monotonic counter *name*."""
        with self._lock:
            total = self._counters.get(name, 0) + value
            self._counters[name] = total
            return total

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(
        self, name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        """Record one observation into histogram *name* (seconds)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(buckets)
                self._histograms[name] = histogram
            histogram.observe(value)

    # ----------------------------------------------------------- collectors
    def register_collector(self, namespace: str, fn: Callable[[], object]) -> None:
        """Attach a read-through *namespace*: *fn* is called at snapshot
        time and must return plain JSON-safe data.  Registering the same
        namespace again replaces the collector (idempotent setup)."""
        with self._lock:
            self._collectors[namespace] = fn

    def collect(self, namespace: str) -> object:
        """One namespace's current value (``None`` for unknown names)."""
        with self._lock:
            fn = self._collectors.get(namespace)
        return fn() if fn is not None else None

    # ------------------------------------------------------------ snapshots
    def histograms_summary(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Per-histogram p50/p90/p99 summaries (no bucket arrays) — the
        compact form ``check --stats`` and the serve ``stats`` op attach."""
        with self._lock:
            histograms = dict(self._histograms)
        return {name: histograms[name].summary() for name in sorted(histograms)}

    def snapshot(self, full: bool = True) -> Dict[str, object]:
        """The whole surface as one JSON-safe document.

        Native instruments under ``"counters"``/``"gauges"``/
        ``"histograms"`` (bucket arrays included when *full*), then one
        key per registered collector namespace.  A collector that raises
        reports ``{"error": ...}`` under its namespace instead of taking
        the snapshot down — the metrics surface must stay readable while
        the thing it measures is on fire.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            collectors = dict(self._collectors)
        data: Dict[str, object] = {
            "counters": {name: counters[name] for name in sorted(counters)},
            "gauges": {name: gauges[name] for name in sorted(gauges)},
            "histograms": {
                name: (
                    histograms[name].snapshot()
                    if full
                    else histograms[name].summary()
                )
                for name in sorted(histograms)
            },
        }
        for namespace in sorted(collectors):
            try:
                data[namespace] = collectors[namespace]()
            except Exception as error:  # noqa: BLE001 - stay readable
                data[namespace] = {"error": f"{type(error).__name__}: {error}"}
        return data

    def reset(self) -> None:
        """Zero the native instruments (collector sources are reset by
        their owners — see :func:`reset_counters`)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# --------------------------------------------------- the process registry
_registry: Optional[MetricsRegistry] = None
_registry_lock = threading.Lock()


def _collect_pipeline() -> dict:
    from ..synthesis.realizability import cache_snapshot

    snapshot = cache_snapshot()
    snapshot.pop("synthesis", None)  # lives under sat.* / game.*
    return snapshot


def _split_synthesis() -> Tuple[dict, dict]:
    from ..synthesis.realizability import synthesis_stats

    stats = synthesis_stats()
    sat = {
        key[len("sat_"):]: value
        for key, value in stats.items()
        if key.startswith("sat_")
    }
    game = {
        key[len("game_"):]: value
        for key, value in stats.items()
        if key.startswith("game_")
    }
    return sat, game


def _collect_sat() -> dict:
    return _split_synthesis()[0]


def _collect_game() -> dict:
    return _split_synthesis()[1]


def _collect_pool() -> dict:
    from ..service.pool import shared_pool_stats

    rows = shared_pool_stats()
    return {
        "pools": len(rows),
        "tasks": sum(row.get("tasks", 0) for row in rows),
        "failures": sum(row.get("failures", 0) for row in rows),
        "rows": rows,
    }


def _collect_supervision() -> dict:
    from ..service.pool import shared_pool_stats
    from ..service.supervision import aggregate_stats

    return aggregate_stats(shared_pool_stats())


def registry() -> MetricsRegistry:
    """The process-wide registry, with the standard collectors attached."""
    global _registry
    if _registry is None:
        with _registry_lock:
            if _registry is None:
                fresh = MetricsRegistry()
                fresh.register_collector("pipeline", _collect_pipeline)
                fresh.register_collector("sat", _collect_sat)
                fresh.register_collector("game", _collect_game)
                fresh.register_collector("pool", _collect_pool)
                fresh.register_collector("supervision", _collect_supervision)
                _registry = fresh
    return _registry


def reset_counters() -> None:
    """THE observability reset: zero every counter surface in one call.

    Covers the shared analysis graph's per-stage hit/miss counters, the
    SAT/game engine accumulators and the registry's native instruments —
    leaving cached *values* untouched, so resetting observability never
    changes what the pipeline computes.  ``clear_caches()`` (which does
    drop values) routes through here, so the two reset paths can never
    disagree again: after either, every surface reads zero and no
    surface can report a hit count its sibling's lookup total has
    already forgotten.
    """
    from ..core.graph import shared_graph
    from ..synthesis.realizability import reset_synthesis_stats

    shared_graph().reset_counters()
    reset_synthesis_stats()
    registry().reset()
