"""Nested-span tracing across the whole pipeline.

One request through SpecCC crosses many layers — parsing, Algorithm 1,
time abstraction, partitioning, per-component realizability, SAT solves,
pool dispatch, supervised retries — and until now the only answer to
"where did this slow ``check`` spend its 400 ms?" was a single
wall-clock total.  A :class:`Tracer` records a tree of **spans**: each
``with span("translate.semantics", sentences=40):`` block becomes one
timed node with arbitrary key/value attributes, nested under whatever
span was active on the same thread when it opened.

Design constraints, in order:

* **Tracing off is near-free.**  The module-level :func:`span` helper
  resolves the active tracer with one context-variable read plus one
  global read; with no tracer installed it returns a shared no-op
  handle.  Instrumentation therefore stays compiled into every hot path
  permanently — there is no "instrumented build".
* **Tracing on never changes results.**  Spans only *read* the pipeline
  (timings, counters, verdict strings); report bytes are identical with
  tracing on or off — asserted in ``tests/test_obs.py``.
* **Span batches are picklable.**  Finished spans are plain dicts of
  JSON-safe scalars, so pool workers ship their per-task spans back
  through the existing result pipe (the same pattern as the
  ``cache_snapshot()`` hit/miss deltas) and the parent *stitches* them
  under the dispatching request's span via :meth:`Tracer.adopt` — one
  coherent cross-process trace.

Two activation scopes mirror how the service tiers work:

* a **process-wide tracer** (:func:`set_process_tracer`) — what ``python
  -m repro check --trace-out trace.json`` installs; every thread's spans
  land in it (batch threads, pool dispatchers, the degraded inline
  path);
* a **context tracer** (:func:`activate` / :func:`activated`) — a
  per-request tracer the serve loops install around one request (keyed
  by the protocol's ``rid``/``session``), shipped back to the client on
  the response.  The context variable overrides the process tracer, so
  concurrent requests keep separate traces.

Exports are Chrome trace-event JSON (``B``/``E`` pairs, loadable in
Perfetto / ``chrome://tracing``); spans exceeding a configurable
threshold are additionally logged through :mod:`logging` with their full
attribute payload (the *slow-op log*).
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, IO, Iterator, List, Optional, Sequence, Union

logger = logging.getLogger("repro.obs.trace")

#: A finished span: plain JSON-safe data (picklable, ships across the
#: worker-pool pipe unchanged).  ``ts``/``dur`` are microseconds relative
#: to the owning tracer's epoch; ``parent`` is the id of the enclosing
#: span or None for roots.
SpanRecord = Dict[str, Any]


class _NullSpan:
    """The shared do-nothing handle returned while tracing is off."""

    __slots__ = ()
    id: Optional[int] = None
    ts = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    """One open span; finished spans live on as plain dict records."""

    __slots__ = ("tracer", "name", "args", "id", "parent", "ts", "_start_ns")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        args: Dict[str, Any],
        span_id: int,
        parent: Optional[int],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args
        self.id = span_id
        self.parent = parent
        self._start_ns = time.perf_counter_ns()
        self.ts = (self._start_ns - tracer._epoch_ns) / 1000.0

    def set(self, **attrs: object) -> "_Span":
        """Attach attributes to the open span (counters, verdicts, ...)."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self.tracer._finish(self, time.perf_counter_ns())
        return False


class Tracer:
    """Collects a tree of spans; thread safe, monotonic-clock timed.

    Each thread keeps its own span stack (nesting is a per-thread
    notion), all finished records land in one shared list.  *slow_ms*
    enables the slow-op log: any span outliving the threshold is logged
    at ``WARNING`` with its attributes.  *record_metrics* feeds every
    finished span's duration into the process
    :class:`~repro.obs.metrics.MetricsRegistry` as a latency histogram
    named ``span.<name>``.
    """

    def __init__(
        self,
        name: str = "trace",
        slow_ms: Optional[float] = None,
        record_metrics: bool = True,
    ) -> None:
        self.name = name
        self.slow_ms = slow_ms
        self.record_metrics = record_metrics
        self._epoch_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        # next() on a count is GIL-atomic: unique ids without a lock on
        # the hot path (bench_core's tracing_overhead row polices this).
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._observe = None  # resolved lazily from the metrics registry

    # -------------------------------------------------------------- spans
    def _stack(self) -> List[_Span]:
        local = self._local
        try:
            return local.stack
        except AttributeError:
            stack: List[_Span] = []
            local.stack = stack
            local.tid = threading.current_thread().name
            return stack

    def span(self, name: str, **attrs: object) -> _Span:
        """Open a nested span; use as a context manager."""
        stack = self._stack()
        parent = stack[-1].id if stack else None
        handle = _Span(self, name, attrs, next(self._ids), parent)
        stack.append(handle)
        return handle

    def current(self) -> Optional[_Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _finish(self, handle: _Span, end_ns: int) -> None:
        stack = self._stack()
        if stack and stack[-1] is handle:
            stack.pop()
        else:  # out-of-order exit (generator teardown): drop to the handle
            while stack:
                if stack.pop() is handle:
                    break
        dur_us = (end_ns - handle._start_ns) / 1000.0
        record: SpanRecord = {
            "name": handle.name,
            "ts": handle.ts,
            "dur": dur_us,
            "id": handle.id,
            "parent": handle.parent,
            # Cached by _stack() when this thread's stack was created
            # (the _stack() call above guarantees it exists).
            "tid": self._local.tid,
            "args": handle.args,
        }
        # list.append is atomic under the GIL; readers copy under _lock.
        self._records.append(record)
        if self.record_metrics:
            observe = self._observe
            if observe is None:
                from .metrics import registry

                observe = self._observe = registry().observe
            observe("span." + handle.name, dur_us / 1e6)
        if self.slow_ms is not None and dur_us / 1000.0 >= self.slow_ms:
            logger.warning(
                "slow span %s: %.1f ms (threshold %.1f ms) %s",
                handle.name,
                dur_us / 1000.0,
                self.slow_ms,
                handle.args,
            )

    # ------------------------------------------------------------ batches
    def mark(self) -> int:
        """A position in the record stream (see :meth:`records_since`)."""
        with self._lock:
            return len(self._records)

    def records(self) -> List[SpanRecord]:
        """A copy of every finished span so far."""
        with self._lock:
            return list(self._records)

    def records_since(self, mark: int) -> List[SpanRecord]:
        """Finished spans appended after *mark* (approximate under
        concurrency: other threads' spans interleave into the window)."""
        with self._lock:
            return list(self._records[mark:])

    def drain(self) -> List[SpanRecord]:
        """Remove and return every finished span (per-task shipping)."""
        with self._lock:
            records, self._records = self._records, []
            return records

    def adopt(
        self,
        batch: Sequence[SpanRecord],
        parent: Union[_Span, int, None] = None,
        tid: Optional[str] = None,
        offset_us: float = 0.0,
    ) -> List[SpanRecord]:
        """Stitch a shipped span *batch* (another tracer's records, e.g. a
        pool worker's) into this trace.

        Span ids are re-allocated from this tracer's sequence, parent
        links inside the batch are remapped, roots are re-parented under
        *parent* (a span handle or id), timestamps are shifted by
        *offset_us* (conventionally the adopting span's own ``ts``, so
        the worker's task-relative clock lands inside the dispatch
        window) and *tid* overrides the thread label (one track per
        shard in the exported trace).
        """
        if not batch:
            return []
        parent_id = parent.id if isinstance(parent, _Span) else parent
        with self._lock:
            mapping = {record["id"]: next(self._ids) for record in batch}
            adopted = []
            for record in batch:
                stitched = dict(record)
                stitched["id"] = mapping[record["id"]]
                stitched["parent"] = mapping.get(record.get("parent"), parent_id)
                stitched["ts"] = float(record["ts"]) + offset_us
                if tid is not None:
                    stitched["tid"] = tid
                self._records.append(stitched)
                adopted.append(stitched)
            return adopted

    # ------------------------------------------------------------- export
    def export_chrome(self, target: Union[str, "os.PathLike[str]", IO[str]]) -> int:
        """Write the trace as Chrome trace-event JSON; returns the number
        of events written.  Load the file in Perfetto (ui.perfetto.dev)
        or ``chrome://tracing``."""
        return write_chrome_trace(self.records(), target)


def chrome_events(
    records: Sequence[SpanRecord], pid: Optional[int] = None
) -> List[dict]:
    """Convert span records to Chrome trace-event ``B``/``E`` pairs.

    The tree is emitted by a depth-first walk (children in timestamp
    order), which guarantees *balanced* begin/end pairs per thread track
    regardless of float-timestamp ties; per-track timestamps are clamped
    monotone non-decreasing.  ``benchmarks/trace_schema.py`` validates
    exactly these properties.
    """
    pid = pid if pid is not None else os.getpid()
    by_id = {record["id"]: record for record in records}
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for record in records:
        parent = record.get("parent")
        if parent is not None and parent not in by_id:
            parent = None  # orphan (adopted batch with a lost root)
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda record: (record["ts"], record["id"]))

    events: List[dict] = []
    last_ts: Dict[str, float] = {}

    def clamp(tid: str, ts: float) -> float:
        floor = last_ts.get(tid, 0.0)
        ts = ts if ts >= floor else floor
        last_ts[tid] = ts
        return ts

    def walk(record: SpanRecord) -> None:
        tid = str(record.get("tid", "main"))
        begin = clamp(tid, float(record["ts"]))
        events.append(
            {
                "name": record["name"],
                "cat": "repro",
                "ph": "B",
                "ts": begin,
                "pid": pid,
                "tid": tid,
                "args": record.get("args", {}),
            }
        )
        for child in children.get(record["id"], ()):
            walk(child)
        end = clamp(tid, float(record["ts"]) + float(record["dur"]))
        events.append(
            {"name": record["name"], "cat": "repro", "ph": "E",
             "ts": end, "pid": pid, "tid": tid}
        )

    for root in children.get(None, ()):
        walk(root)
    return events


def write_chrome_trace(
    records: Sequence[SpanRecord],
    target: Union[str, "os.PathLike[str]", IO[str]],
) -> int:
    """Write raw span *records* as a Chrome trace file (see above).

    Uses the self-describing *JSON Object Format* — ``{"traceEvents":
    [...]}`` — which both Perfetto and ``chrome://tracing`` load, and
    which ``benchmarks/trace_schema.py`` validates.
    """
    events = chrome_events(records)
    payload = json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, sort_keys=True
    )
    if hasattr(target, "write"):
        target.write(payload)  # type: ignore[union-attr]
    else:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(payload)
    return len(events)


# ------------------------------------------------------------- activation
_process_tracer: Optional[Tracer] = None
_context_tracer: "ContextVar[Optional[Tracer]]" = ContextVar(
    "repro_obs_tracer", default=None
)


def set_process_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with None clear) the process-wide fallback tracer;
    returns the previous one.  Every thread without a context tracer
    records here — which is what lets pool dispatcher threads, batch
    workers and the degraded inline path contribute to one CLI trace."""
    global _process_tracer
    previous = _process_tracer
    _process_tracer = tracer
    return previous


def activate(tracer: Optional[Tracer]):
    """Make *tracer* current for this context; returns a reset token."""
    return _context_tracer.set(tracer)


def deactivate(token) -> None:
    _context_tracer.reset(token)


@contextmanager
def activated(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """``with activated(tracer):`` — scope a per-request tracer."""
    token = _context_tracer.set(tracer)
    try:
        yield tracer
    finally:
        _context_tracer.reset(token)


def get_tracer() -> Optional[Tracer]:
    """The active tracer: context override first, process-wide second."""
    tracer = _context_tracer.get()
    return tracer if tracer is not None else _process_tracer


def tracing_active() -> bool:
    """True when some tracer would record a span opened right now."""
    return _context_tracer.get() is not None or _process_tracer is not None


def span(name: str, **attrs: object) -> Union[_Span, _NullSpan]:
    """Open a span on the active tracer — the instrumentation entry point.

    With no tracer installed this returns the shared no-op handle: one
    context-variable read, one global read, no allocation beyond the
    call itself.  The returned handle supports ``with`` and ``.set()``
    either way, so call sites never branch on tracing state.
    """
    tracer = _context_tracer.get()
    if tracer is None:
        tracer = _process_tracer
        if tracer is None:
            return NULL_SPAN
    return tracer.span(name, **attrs)


def annotate(**attrs: object) -> None:
    """Attach attributes to the innermost open span, if tracing is on."""
    tracer = _context_tracer.get()
    if tracer is None:
        tracer = _process_tracer
        if tracer is None:
            return
    current = tracer.current()
    if current is not None:
        current.set(**attrs)
