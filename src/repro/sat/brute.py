"""Brute-force reference SAT solver.

Exhaustively enumerates assignments; only usable for tiny instances.  It
exists so the CDCL solver can be cross-checked in the test suite (including
hypothesis-generated random CNFs) and so ablation benchmarks can show the
benefit of CDCL.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional

from .cnf import CNF


def solve_brute(cnf: CNF, max_vars: int = 24) -> Optional[Dict[int, bool]]:
    """Return a model as ``{var: bool}`` or ``None`` when unsatisfiable.

    Raises :class:`ValueError` when the instance has more than *max_vars*
    variables, to protect against accidental exponential blow-up.
    """
    if cnf.num_vars > max_vars:
        raise ValueError(
            f"instance has {cnf.num_vars} variables; brute force capped at {max_vars}"
        )
    variables = list(range(1, cnf.num_vars + 1))
    for bits in product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in cnf.clauses
        ):
            return assignment
    return None
