"""Tseitin transformation from propositional formulas to CNF.

Temporal operators are rejected: this module is used for the propositional
skeletons produced by the bit-blaster and by the translator's sanity checks
(e.g. mutual-exclusion side conditions from the antonym analysis).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..logic.ast import (
    And,
    Atom,
    Bool,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
)
from .cnf import CNF, Lit


class NotPropositional(TypeError):
    """Raised when a formula contains temporal operators."""


def encode(formula: Formula, cnf: CNF) -> Lit:
    """Encode *formula* into *cnf*, returning a literal equisatisfiable with
    it.  Atom names are registered in the CNF name table, so repeated atoms
    share variables across calls on the same CNF."""
    cache: Dict[Formula, Lit] = {}
    return _encode(formula, cnf, cache)


def assert_formula(formula: Formula, cnf: CNF) -> None:
    """Encode *formula* and assert that it holds."""
    cnf.add([encode(formula, cnf)])


def _encode(formula: Formula, cnf: CNF, cache: Dict[Formula, Lit]) -> Lit:
    cached = cache.get(formula)
    if cached is not None:
        return cached
    lit = _encode_uncached(formula, cnf, cache)
    cache[formula] = lit
    return lit


def _encode_uncached(formula: Formula, cnf: CNF, cache: Dict[Formula, Lit]) -> Lit:
    if isinstance(formula, Bool):
        var = cnf.var("__true__")
        cnf.add([var])  # idempotent enough; duplicate unit clauses are cheap
        return var if formula.value else -var
    if isinstance(formula, Atom):
        return cnf.var(formula.name)
    if isinstance(formula, Not):
        return -_encode(formula.operand, cnf, cache)
    if isinstance(formula, And):
        left = _encode(formula.left, cnf, cache)
        right = _encode(formula.right, cnf, cache)
        out = cnf.new_var()
        cnf.add_iff_and(out, [left, right])
        return out
    if isinstance(formula, Or):
        left = _encode(formula.left, cnf, cache)
        right = _encode(formula.right, cnf, cache)
        out = cnf.new_var()
        cnf.add_iff_or(out, [left, right])
        return out
    if isinstance(formula, Implies):
        left = _encode(formula.left, cnf, cache)
        right = _encode(formula.right, cnf, cache)
        out = cnf.new_var()
        cnf.add_iff_or(out, [-left, right])
        return out
    if isinstance(formula, Iff):
        left = _encode(formula.left, cnf, cache)
        right = _encode(formula.right, cnf, cache)
        out = cnf.new_var()
        # out <-> (left <-> right)
        cnf.add([-out, -left, right])
        cnf.add([-out, left, -right])
        cnf.add([out, left, right])
        cnf.add([out, -left, -right])
        return out
    raise NotPropositional(f"temporal operator in propositional context: {formula!r}")
