"""CNF formulas and fresh-variable management.

Literals use the DIMACS convention: variables are positive integers and a
negative integer denotes the negation of the corresponding variable.  The
:class:`CNF` container also keeps an optional name table so encodings (the
bounded-synthesis and bit-blasting modules) can build readable models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

Lit = int
Clause = Sequence[Lit]


@dataclass
class CNF:
    """A conjunction of clauses with a fresh-variable counter."""

    num_vars: int = 0
    clauses: List[List[Lit]] = field(default_factory=list)
    _names: Dict[str, int] = field(default_factory=dict)
    _by_var: Dict[int, str] = field(default_factory=dict)

    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable, optionally registering *name* for it."""
        self.num_vars += 1
        var = self.num_vars
        if name is not None:
            if name in self._names:
                raise ValueError(f"duplicate variable name: {name}")
            self._names[name] = var
            self._by_var[var] = name
        return var

    def var(self, name: str) -> int:
        """The variable registered under *name*, allocating it on first use."""
        existing = self._names.get(name)
        if existing is not None:
            return existing
        return self.new_var(name)

    def name_of(self, var: int) -> Optional[str]:
        return self._by_var.get(abs(var))

    def add(self, clause: Iterable[Lit]) -> None:
        """Add a clause, extending the variable count as needed."""
        lits = list(clause)
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.num_vars = max(self.num_vars, abs(lit))
        self.clauses.append(lits)

    def add_all(self, clauses: Iterable[Iterable[Lit]]) -> None:
        for clause in clauses:
            self.add(clause)

    # -- frequently used gate encodings -------------------------------------
    def add_at_most_one(self, lits: Sequence[Lit]) -> None:
        """Pairwise at-most-one constraint over *lits*."""
        for i, a in enumerate(lits):
            for b in lits[i + 1 :]:
                self.add([-a, -b])

    def add_exactly_one(self, lits: Sequence[Lit]) -> None:
        self.add(list(lits))
        self.add_at_most_one(lits)

    def add_iff_and(self, out: Lit, inputs: Sequence[Lit]) -> None:
        """Encode ``out <-> AND(inputs)``."""
        for lit in inputs:
            self.add([-out, lit])
        self.add([out] + [-lit for lit in inputs])

    def add_iff_or(self, out: Lit, inputs: Sequence[Lit]) -> None:
        """Encode ``out <-> OR(inputs)``."""
        for lit in inputs:
            self.add([-lit, out])
        self.add([-out] + list(inputs))

    def add_implies(self, antecedents: Sequence[Lit], consequent: Lit) -> None:
        """Encode ``AND(antecedents) -> consequent``."""
        self.add([-lit for lit in antecedents] + [consequent])

    def to_dimacs(self) -> str:
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @staticmethod
    def pigeonhole(pigeons: int, holes: int) -> "CNF":
        """The pigeonhole instance family: ``p(i,h) = holes*i + h + 1``.

        Unsatisfiable whenever ``pigeons > holes`` and resolution-hard, so
        the tests and the propagation microbench share it as a
        conflict-heavy workload.
        """
        cnf = CNF()

        def var(i: int, h: int) -> int:
            return holes * i + h + 1

        for i in range(pigeons):
            cnf.add([var(i, h) for h in range(holes)])
        for h in range(holes):
            for i in range(pigeons):
                for j in range(i + 1, pigeons):
                    cnf.add([-var(i, h), -var(j, h)])
        return cnf

    @staticmethod
    def from_dimacs(text: str) -> "CNF":
        cnf = CNF()
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith(("c", "p", "%")):
                continue
            lits = [int(tok) for tok in line.split()]
            if lits and lits[-1] == 0:
                lits = lits[:-1]
            if lits:
                cnf.add(lits)
        return cnf
