"""Conflict-driven clause learning SAT solver.

A compact but complete CDCL implementation standing in for the paper's use
of Yices 2 (Section IV-E solves the time-abstraction optimisation "via
bit-blasting"):

* two-watched-literal propagation with blocker literals (MiniSat-style:
  each watcher carries a cached literal from the clause; when the blocker
  is already true the clause body is never dereferenced),
* first-UIP conflict analysis with self-subsumption clause minimisation,
* exponential VSIDS activity with decay and phase saving,
* Luby-sequence restarts,
* learnt-clause database reduction scored by literal-block distance
  (Glucose-style: the LBD is tagged at learn time; every
  ``reduce_interval`` conflicts the learnt DB is halved, keeping binary
  clauses, "glue" clauses with LBD <= 2 and clauses locked as reasons),
* incremental solving under assumptions with implication-graph failed
  assumption cores,
* MiniSat-style solver reuse: :meth:`CDCLSolver.add_clause` is valid
  *between* :meth:`CDCLSolver.solve` calls (the solver returns to
  decision level 0 after every answer, so new clauses are simplified
  against the permanent root-level trail and watched correctly), and
  learnt clauses, VSIDS activity and saved phases all survive into the
  next call.  Callers gate constraints that must be retractable behind
  activation literals passed as assumptions — adding the unit clause
  ``[-activation]`` later retires the whole group at root level.  The
  ``incremental`` block of :meth:`CDCLSolver.stats` counts reuse:
  solve calls, clauses added after the first answer, and learnt clauses
  carried into subsequent calls.

The solver is deterministic: identical inputs yield identical models, which
keeps the benchmark tables and tests reproducible.

For differential testing and the ``benchmarks/bench_synthesis.py``
microbench the solver can also run with ``propagation="scan"``: the
pre-watcher reference scheme that re-scans the full body of every clause
containing a freshly falsified literal.  Both modes share the search loop,
conflict analysis and cores, so any divergence in verdicts is a bug the
differential suite will catch.  :meth:`CDCLSolver.stats` exposes counters
(propagations, conflicts, decisions, restarts, clause visits, learnt
clauses) so benchmarks can assert that watched propagation actually visits
fewer clauses instead of guessing from timings.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .cnf import CNF, Lit


@dataclass
class SatResult:
    """Outcome of a :meth:`CDCLSolver.solve` call."""

    satisfiable: bool
    model: Optional[Dict[int, bool]] = None
    failed_assumptions: Optional[List[Lit]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    clause_visits: int = 0

    def __bool__(self) -> bool:
        return self.satisfiable

    def value(self, lit: Lit) -> bool:
        if self.model is None:
            raise ValueError("no model available (unsatisfiable result?)")
        assignment = self.model[abs(lit)]
        return assignment if lit > 0 else not assignment


def _code(lit: Lit) -> int:
    """Dense index of a literal: positive -> 2v, negative -> 2v+1."""
    return (abs(lit) << 1) | (lit < 0)


class CDCLSolver:
    """CDCL solver over a :class:`~repro.sat.cnf.CNF` instance.

    ``propagation`` selects the unit-propagation scheme: ``"watch"`` (the
    default two-watched-literal lists) or ``"scan"`` (the full-clause
    re-scan reference used by the differential tests and benchmarks).
    ``restart_interval`` scales the Luby restart sequence, ``var_decay``
    is the per-conflict VSIDS decay factor, and ``reduce_interval`` is
    the number of conflicts between learnt-database reductions (0
    disables reduction; deleting learnt clauses is always sound, so the
    verdict never depends on this knob).
    """

    def __init__(
        self,
        cnf: CNF,
        propagation: str = "watch",
        restart_interval: int = 100,
        var_decay: float = 0.95,
        reduce_interval: int = 2000,
    ) -> None:
        if propagation not in ("watch", "scan"):
            raise ValueError(f"unknown propagation scheme: {propagation!r}")
        if reduce_interval < 0:
            raise ValueError("reduce_interval must be >= 0")
        self.propagation = propagation
        self.num_vars = cnf.num_vars
        # clause database: each clause is a list of literals; in watch mode
        # indices 0/1 are the watched literals.  Slots of learnt clauses
        # deleted by database reduction are tombstoned with None (clause
        # indices stored in watchers/reasons must stay stable).
        self.clauses: List[Optional[List[Lit]]] = []
        # Per-literal index (indexed by _code), allocated for the selected
        # scheme only: watch mode keeps (clause index, blocker literal)
        # watcher pairs, scan mode keeps plain occurrence lists.
        size = 2 * (self.num_vars + 1)
        self.watches: List[List[Tuple[int, Lit]]] = (
            [[] for _ in range(size)] if propagation == "watch" else []
        )
        self.occurs: List[List[int]] = (
            [[] for _ in range(size)] if propagation == "scan" else []
        )
        self.assign: List[int] = [0] * (self.num_vars + 1)  # 0 unset, ±1
        self.level: List[int] = [0] * (self.num_vars + 1)
        self.reason: List[Optional[int]] = [None] * (self.num_vars + 1)
        self.trail: List[Lit] = []
        self.trail_lim: List[int] = []
        self.queue_head = 0
        self.activity: List[float] = [0.0] * (self.num_vars + 1)
        # Max-heap (negated activity) with lazy deletion for branch picking.
        self.heap: List[tuple] = []
        self.var_inc = 1.0
        self.var_decay = 1.0 / var_decay
        self.restart_interval = restart_interval
        self.saved_phase: List[bool] = [False] * (self.num_vars + 1)
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.clause_visits = 0
        self.learnt_clauses = 0
        # Learnt-database reduction state: indices of live learnt clauses,
        # their LBD scores (tagged at learn time), and the conflict count
        # that triggers the next halving.
        self.reduce_interval = reduce_interval
        self.learnt: List[int] = []
        self.lbd: Dict[int, int] = {}
        self.learnt_dropped = 0
        self.next_reduce = reduce_interval
        # Incremental-reuse counters: solve() calls, clauses added after
        # the first answer, and learnt clauses alive at the start of each
        # subsequent call (the work a from-scratch solver would redo).
        self.solves = 0
        self.clauses_added_incremental = 0
        self.learnt_carried = 0
        for clause in cnf.clauses:
            self.add_clause(clause)
        self.heap = [(0.0, var) for var in range(1, self.num_vars + 1)]
        heapq.heapify(self.heap)

    # ------------------------------------------------------------------ API
    def add_clause(self, lits: Iterable[Lit]) -> None:
        """Add a clause at decision level 0.

        Safe between :meth:`solve` calls: every answer leaves the solver
        back at level 0, so the clause is simplified against the
        permanent root trail only (dropped literals are root-falsified
        facts, which can never be unassigned again), watchers are
        attached to unassigned literals, and a clause that is unit under
        the root trail is propagated immediately — conflicts here make
        the instance permanently unsatisfiable (``ok = False``).
        """
        if self.solves:
            self.clauses_added_incremental += 1
        if not self.ok:
            return
        seen: Set[Lit] = set()
        clause: List[Lit] = []
        for lit in lits:
            if abs(lit) > self.num_vars:
                self._grow(abs(lit))
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value == 1 and self.level[abs(lit)] == 0:
                return  # already satisfied at root
            if value == -1 and self.level[abs(lit)] == 0:
                continue  # falsified at root: drop the literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self.ok = False
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self.ok = False
            elif self._propagate() is not None:
                self.ok = False
            return
        self._attach(clause)

    def stats(self) -> Dict[str, object]:
        """Work counters since construction.

        ``clause_visits`` counts how many times a clause body was actually
        scanned during propagation — the quantity the two-watched-literal
        scheme exists to shrink.  Blocker hits and satisfied-watch
        short-circuits do not dereference the clause and are not counted.
        The nested ``incremental`` block counts solver reuse: total
        :meth:`solve` calls, clauses added after the first answer, and
        learnt clauses carried into subsequent calls.
        """
        return {
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "restarts": self.restarts,
            "clause_visits": self.clause_visits,
            "learnt_clauses": self.learnt_clauses,
            "learnt_kept": len(self.learnt),
            "learnt_dropped": self.learnt_dropped,
            "clauses": sum(1 for clause in self.clauses if clause is not None),
            "vars": self.num_vars,
            "incremental": {
                "solves": self.solves,
                "clauses_added": self.clauses_added_incremental,
                "learnt_carried": self.learnt_carried,
            },
        }

    def solve(self, assumptions: Sequence[Lit] = ()) -> SatResult:
        """Search for a model extending *assumptions*."""
        from ..obs.trace import tracing_active

        if not tracing_active():
            return self._solve(assumptions)
        from ..obs.trace import span

        with span("sat.solve", vars=self.num_vars, assumptions=len(assumptions)) as sp:
            result = self._solve(assumptions)
            counters = self.stats()
            sp.set(
                sat=result.satisfiable,
                conflicts=counters["conflicts"],
                decisions=counters["decisions"],
                propagations=counters["propagations"],
                restarts=counters["restarts"],
                clause_visits=counters["clause_visits"],
            )
            return result

    def _solve(self, assumptions: Sequence[Lit] = ()) -> SatResult:
        self.solves += 1
        if self.solves > 1:
            self.learnt_carried += len(self.learnt)
        if not self.ok:
            return SatResult(False, failed_assumptions=[], conflicts=self.conflicts)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self.ok = False
            return SatResult(False, failed_assumptions=[], conflicts=self.conflicts)

        assumption_list = list(assumptions)
        luby_index = 1
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return self._unsat_result([])
                learnt, backjump = self._analyze(conflict)
                # LBD = distinct decision levels in the learnt clause; must
                # be read before backtracking unassigns the literals.
                lbd = len({self.level[abs(lit)] for lit in learnt})
                self._backtrack(backjump)
                self.learnt_clauses += 1
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    index = self._attach(learnt)
                    self.learnt.append(index)
                    self.lbd[index] = lbd
                    self._enqueue(learnt[0], index)
                self.var_inc *= self.var_decay
                if self.reduce_interval and self.conflicts >= self.next_reduce:
                    self._reduce_learnts()
                    self.next_reduce = self.conflicts + self.reduce_interval
                continue

            if conflicts_since_restart >= self.restart_interval * _luby(luby_index):
                luby_index += 1
                conflicts_since_restart = 0
                self.restarts += 1
                self._backtrack(0)
                continue

            # Place pending assumptions as decisions.  Already-satisfied
            # assumptions are skipped without opening a decision level —
            # empty levels would break the first-UIP invariant.
            pending: Optional[Lit] = None
            for lit in assumption_list:
                value = self._value(lit)
                if value == -1:
                    core = self._assumption_core(assumption_list, failed=lit)
                    self._backtrack(0)
                    return self._unsat_result(core)
                if value == 0:
                    pending = lit
                    break
            if pending is not None:
                self.trail_lim.append(len(self.trail))
                self._enqueue(pending, None)
                continue

            lit = self._pick_branch()
            if lit is None:
                model = {
                    var: self.assign[var] == 1 for var in range(1, self.num_vars + 1)
                }
                self._backtrack(0)
                return SatResult(
                    True,
                    model=model,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                    restarts=self.restarts,
                    clause_visits=self.clause_visits,
                )
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)

    # ------------------------------------------------------------ internals
    def _grow(self, var: int) -> None:
        extra = var - self.num_vars
        self.assign.extend([0] * extra)
        self.level.extend([0] * extra)
        self.reason.extend([None] * extra)
        self.activity.extend([0.0] * extra)
        self.saved_phase.extend([False] * extra)
        index = self.watches if self.propagation == "watch" else self.occurs
        for _ in range(2 * extra):
            index.append([])
        for fresh in range(self.num_vars + 1, var + 1):
            heapq.heappush(self.heap, (0.0, fresh))
        self.num_vars = var

    def _value(self, lit: Lit) -> int:
        value = self.assign[abs(lit)]
        return value if lit > 0 else -value

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _attach(self, clause: List[Lit]) -> int:
        index = len(self.clauses)
        self.clauses.append(clause)
        if self.propagation == "watch":
            # Each watcher caches the other watched literal as its blocker.
            self.watches[_code(clause[0])].append((index, clause[1]))
            self.watches[_code(clause[1])].append((index, clause[0]))
        else:
            for lit in clause:
                self.occurs[_code(lit)].append(index)
        return index

    def _reduce_learnts(self) -> None:
        """Halve the learnt-clause database, keeping the glue.

        Binary clauses, "glue" clauses (LBD <= 2) and clauses locked as
        the reason of a literal on the current trail are always kept; the
        remaining candidates are ranked by (LBD, size, index) and the
        worse half is dropped.  Learnt clauses are implied by the input
        CNF, so deletion never changes the verdict — it only bounds the
        watcher lists the propagation loop has to traverse.  The ranking
        is deterministic, so identical inputs still yield identical
        models.
        """
        locked = {
            self.reason[abs(lit)]
            for lit in self.trail
            if self.reason[abs(lit)] is not None
        }
        candidates = [
            index
            for index in self.learnt
            if index not in locked
            and self.lbd[index] > 2
            and len(self.clauses[index]) > 2
        ]
        if len(candidates) < 2:
            return
        candidates.sort(
            key=lambda index: (self.lbd[index], len(self.clauses[index]), index)
        )
        drop = set(candidates[len(candidates) // 2 :])
        for index in drop:
            self.clauses[index] = None
            del self.lbd[index]
        self.learnt = [index for index in self.learnt if index not in drop]
        self.learnt_dropped += len(drop)
        # Detach the tombstoned clauses from the propagation index.
        if self.propagation == "watch":
            for watch_list in self.watches:
                if watch_list:
                    watch_list[:] = [
                        pair for pair in watch_list if pair[0] not in drop
                    ]
        else:
            for occur_list in self.occurs:
                if occur_list:
                    occur_list[:] = [
                        index for index in occur_list if index not in drop
                    ]

    def _enqueue(self, lit: Lit, reason: Optional[int]) -> bool:
        value = self._value(lit)
        if value == -1:
            return False
        if value == 1:
            return True
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else -1
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.saved_phase[var] = lit > 0
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        if self.propagation == "scan":
            return self._propagate_scan()
        return self._propagate_watch()

    def _propagate_watch(self) -> Optional[int]:
        value = self._value
        clauses = self.clauses
        while self.queue_head < len(self.trail):
            lit = self.trail[self.queue_head]
            self.queue_head += 1
            self.propagations += 1
            falsified = -lit
            watch_list = self.watches[_code(falsified)]
            if not watch_list:
                continue
            keep = 0  # in-place compaction: watchers [0, keep) survive
            i = 0
            conflict: Optional[int] = None
            while i < len(watch_list):
                index, blocker = watch_list[i]
                i += 1
                if value(blocker) == 1:
                    watch_list[keep] = (index, blocker)
                    keep += 1
                    continue
                clause = clauses[index]
                self.clause_visits += 1
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                # clause[1] is the falsified watcher now.
                first = clause[0]
                if first != blocker and value(first) == 1:
                    watch_list[keep] = (index, first)
                    keep += 1
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[_code(clause[1])].append((index, first))
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit (or conflicting) under the current trail.
                watch_list[keep] = (index, first)
                keep += 1
                if not self._enqueue(first, index):
                    conflict = index
                    while i < len(watch_list):
                        watch_list[keep] = watch_list[i]
                        keep += 1
                        i += 1
                    break
            del watch_list[keep:]
            if conflict is not None:
                return conflict
        return None

    def _propagate_scan(self) -> Optional[int]:
        """Reference propagation: re-scan every clause containing the
        freshly falsified literal in full.  Kept for differential tests and
        the propagation microbench; never the default."""
        value = self._value
        clauses = self.clauses
        while self.queue_head < len(self.trail):
            lit = self.trail[self.queue_head]
            self.queue_head += 1
            self.propagations += 1
            falsified = -lit
            for index in self.occurs[_code(falsified)]:
                clause = clauses[index]
                self.clause_visits += 1
                unit: Optional[Lit] = None
                satisfied = False
                unassigned = 0
                for other in clause:
                    status = value(other)
                    if status == 1:
                        satisfied = True
                        break
                    if status == 0:
                        unassigned += 1
                        unit = other
                if satisfied:
                    continue
                if unassigned == 0:
                    return index
                if unassigned == 1:
                    self._enqueue(unit, index)
        return None

    def _analyze(self, conflict_index: int):
        """First-UIP conflict analysis; returns (learnt clause, backjump)."""
        learnt: List[Lit] = [0]  # reserve slot for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        index = len(self.trail) - 1
        clause = self.clauses[conflict_index]
        current_level = self._decision_level()

        while True:
            for reason_lit in clause:
                if reason_lit == -lit:
                    # Skip the literal whose reason clause we are expanding.
                    continue
                var = abs(reason_lit)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(reason_lit)
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = -self.trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason_index = self.reason[var]
            assert reason_index is not None, "UIP literal must have a reason"
            clause = self.clauses[reason_index]

        learnt[0] = lit
        learnt = self._minimise(learnt, seen)
        if len(learnt) == 1:
            return learnt, 0
        # Move the second-highest level literal to index 1 for watching.
        best = max(range(1, len(learnt)), key=lambda k: self.level[abs(learnt[k])])
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self.level[abs(learnt[1])]

    def _minimise(self, learnt: List[Lit], seen: List[bool]) -> List[Lit]:
        """Drop literals implied by the rest of the learnt clause."""
        for lit in learnt[1:]:
            seen[abs(lit)] = True
        result = [learnt[0]]
        for lit in learnt[1:]:
            reason_index = self.reason[abs(lit)]
            if reason_index is None:
                result.append(lit)
                continue
            redundant = all(
                seen[abs(other)] or self.level[abs(other)] == 0
                for other in self.clauses[reason_index]
                if abs(other) != abs(lit)
            )
            if not redundant:
                result.append(lit)
        for lit in learnt[1:]:
            seen[abs(lit)] = False
        return result

    def _assumption_core(
        self, assumptions: Sequence[Lit], failed: Optional[Lit] = None
    ) -> List[Lit]:
        """A subset of assumptions sufficient for unsatisfiability.

        When assumption *failed* is found falsified, its complement was
        implied by the trail; walking that literal's implication graph back
        to its roots collects exactly the assumptions involved.  (At that
        point every decision on the trail is an assumption: free decisions
        only happen once all assumptions are placed, and any backjump that
        unassigns an assumption removes the free decisions above it.)  The
        core is sufficient but not guaranteed minimal.
        """
        assumption_set = set(assumptions)
        core: Set[Lit] = set()
        if failed is None:
            return []
        core.add(failed)
        pending: List[int] = [abs(failed)]
        visited: Set[int] = set()
        while pending:
            var = pending.pop()
            if var in visited or self.level[var] == 0:
                continue  # root facts need no assumptions
            visited.add(var)
            reason_index = self.reason[var]
            if reason_index is None:
                lit = var if self.assign[var] == 1 else -var
                if lit in assumption_set:
                    core.add(lit)
                continue
            for other in self.clauses[reason_index]:
                if abs(other) != var:
                    pending.append(abs(other))
        return sorted(core, key=abs)

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        heapq.heappush(self.heap, (-self.activity[var], var))
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            self.heap = [(-self.activity[v], v) for v in range(1, self.num_vars + 1)]
            heapq.heapify(self.heap)

    def _pick_branch(self) -> Optional[Lit]:
        while self.heap:
            negated_activity, var = self.heap[0]
            if self.assign[var] != 0 or -negated_activity != self.activity[var]:
                heapq.heappop(self.heap)  # stale entry
                continue
            return var if self.saved_phase[var] else -var
        # Heap exhausted: fall back to a linear scan for untouched vars.
        for var in range(1, self.num_vars + 1):
            if self.assign[var] == 0:
                return var if self.saved_phase[var] else -var
        return None

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for lit in self.trail[boundary:]:
            var = abs(lit)
            self.assign[var] = 0
            self.reason[var] = None
            heapq.heappush(self.heap, (-self.activity[var], var))
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.queue_head = min(self.queue_head, len(self.trail))

    def _unsat_result(self, core: List[Lit]) -> SatResult:
        return SatResult(
            False,
            failed_assumptions=core,
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
            restarts=self.restarts,
            clause_visits=self.clause_visits,
        )


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,… (*i* is 1-based)."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


def solve(cnf: CNF, assumptions: Sequence[Lit] = ()) -> SatResult:
    """One-shot convenience wrapper around :class:`CDCLSolver`."""
    return CDCLSolver(cnf).solve(assumptions)
