"""Conflict-driven clause learning SAT solver.

A compact but complete CDCL implementation standing in for the paper's use
of Yices 2 (Section IV-E solves the time-abstraction optimisation "via
bit-blasting"):

* two-watched-literal propagation,
* first-UIP conflict analysis with clause minimisation,
* exponential VSIDS activity with phase saving,
* Luby-sequence restarts,
* incremental solving under assumptions with failed-assumption cores.

The solver is deterministic: identical inputs yield identical models, which
keeps the benchmark tables and tests reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .cnf import CNF, Lit


@dataclass
class SatResult:
    """Outcome of a :meth:`CDCLSolver.solve` call."""

    satisfiable: bool
    model: Optional[Dict[int, bool]] = None
    failed_assumptions: Optional[List[Lit]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    def __bool__(self) -> bool:
        return self.satisfiable

    def value(self, lit: Lit) -> bool:
        if self.model is None:
            raise ValueError("no model available (unsatisfiable result?)")
        assignment = self.model[abs(lit)]
        return assignment if lit > 0 else not assignment


class CDCLSolver:
    """CDCL solver over a :class:`~repro.sat.cnf.CNF` instance."""

    def __init__(self, cnf: CNF) -> None:
        self.num_vars = cnf.num_vars
        # clause database: each clause is a list of literals; index 0/1 are
        # the watched literals.
        self.clauses: List[List[Lit]] = []
        self.watchers: Dict[Lit, List[int]] = {}
        self.assign: List[int] = [0] * (self.num_vars + 1)  # 0 unset, ±1
        self.level: List[int] = [0] * (self.num_vars + 1)
        self.reason: List[Optional[int]] = [None] * (self.num_vars + 1)
        self.trail: List[Lit] = []
        self.trail_lim: List[int] = []
        self.queue_head = 0
        self.activity: List[float] = [0.0] * (self.num_vars + 1)
        # Max-heap (negated activity) with lazy deletion for branch picking.
        self.heap: List[tuple] = []
        self.var_inc = 1.0
        self.var_decay = 1.0 / 0.95
        self.saved_phase: List[bool] = [False] * (self.num_vars + 1)
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        for clause in cnf.clauses:
            self.add_clause(clause)
        self.heap = [(0.0, var) for var in range(1, self.num_vars + 1)]
        heapq.heapify(self.heap)

    # ------------------------------------------------------------------ API
    def add_clause(self, lits: Iterable[Lit]) -> None:
        """Add a clause at decision level 0."""
        if not self.ok:
            return
        seen: Set[Lit] = set()
        clause: List[Lit] = []
        for lit in lits:
            if abs(lit) > self.num_vars:
                self._grow(abs(lit))
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value == 1 and self.level[abs(lit)] == 0:
                return  # already satisfied at root
            if value == -1 and self.level[abs(lit)] == 0:
                continue  # falsified at root: drop the literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self.ok = False
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self.ok = False
            elif self._propagate() is not None:
                self.ok = False
            return
        self._attach(clause)

    def solve(self, assumptions: Sequence[Lit] = ()) -> SatResult:
        """Search for a model extending *assumptions*."""
        if not self.ok:
            return SatResult(False, failed_assumptions=[], conflicts=self.conflicts)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self.ok = False
            return SatResult(False, failed_assumptions=[], conflicts=self.conflicts)

        assumption_list = list(assumptions)
        restart_threshold = 100
        luby_index = 1
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return self._unsat_result([])
                learnt, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    index = self._attach(learnt)
                    self._enqueue(learnt[0], index)
                self.var_inc *= self.var_decay
                continue

            if conflicts_since_restart >= restart_threshold * _luby(luby_index):
                luby_index += 1
                conflicts_since_restart = 0
                self._backtrack(0)
                continue

            # Place pending assumptions as decisions.  Already-satisfied
            # assumptions are skipped without opening a decision level —
            # empty levels would break the first-UIP invariant.
            pending: Optional[Lit] = None
            for lit in assumption_list:
                value = self._value(lit)
                if value == -1:
                    core = self._assumption_core(assumption_list, failed=lit)
                    self._backtrack(0)
                    return self._unsat_result(core)
                if value == 0:
                    pending = lit
                    break
            if pending is not None:
                self.trail_lim.append(len(self.trail))
                self._enqueue(pending, None)
                continue

            lit = self._pick_branch()
            if lit is None:
                model = {
                    var: self.assign[var] == 1 for var in range(1, self.num_vars + 1)
                }
                self._backtrack(0)
                return SatResult(
                    True,
                    model=model,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                )
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)

    # ------------------------------------------------------------ internals
    def _grow(self, var: int) -> None:
        extra = var - self.num_vars
        self.assign.extend([0] * extra)
        self.level.extend([0] * extra)
        self.reason.extend([None] * extra)
        self.activity.extend([0.0] * extra)
        self.saved_phase.extend([False] * extra)
        for fresh in range(self.num_vars + 1, var + 1):
            heapq.heappush(self.heap, (0.0, fresh))
        self.num_vars = var

    def _value(self, lit: Lit) -> int:
        value = self.assign[abs(lit)]
        return value if lit > 0 else -value

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _attach(self, clause: List[Lit]) -> int:
        index = len(self.clauses)
        self.clauses.append(clause)
        self.watchers.setdefault(clause[0], []).append(index)
        self.watchers.setdefault(clause[1], []).append(index)
        return index

    def _enqueue(self, lit: Lit, reason: Optional[int]) -> bool:
        value = self._value(lit)
        if value == -1:
            return False
        if value == 1:
            return True
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else -1
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.saved_phase[var] = lit > 0
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self.queue_head < len(self.trail):
            lit = self.trail[self.queue_head]
            self.queue_head += 1
            self.propagations += 1
            falsified = -lit
            watch_list = self.watchers.get(falsified)
            if not watch_list:
                continue
            new_list: List[int] = []
            conflict: Optional[int] = None
            i = 0
            while i < len(watch_list):
                index = watch_list[i]
                i += 1
                clause = self.clauses[index]
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                # clause[1] is the falsified watcher now.
                first = clause[0]
                if self._value(first) == 1:
                    new_list.append(index)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watchers.setdefault(clause[1], []).append(index)
                        moved = True
                        break
                if moved:
                    continue
                new_list.append(index)
                if not self._enqueue(first, index):
                    conflict = index
                    new_list.extend(watch_list[i:])
                    break
            self.watchers[falsified] = new_list
            if conflict is not None:
                return conflict
        return None

    def _analyze(self, conflict_index: int):
        """First-UIP conflict analysis; returns (learnt clause, backjump)."""
        learnt: List[Lit] = [0]  # reserve slot for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        index = len(self.trail) - 1
        clause = self.clauses[conflict_index]
        current_level = self._decision_level()

        while True:
            for reason_lit in clause:
                if reason_lit == -lit:
                    # Skip the literal whose reason clause we are expanding.
                    continue
                var = abs(reason_lit)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(reason_lit)
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = -self.trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason_index = self.reason[var]
            assert reason_index is not None, "UIP literal must have a reason"
            clause = self.clauses[reason_index]

        learnt[0] = lit
        learnt = self._minimise(learnt, seen)
        if len(learnt) == 1:
            return learnt, 0
        # Move the second-highest level literal to index 1 for watching.
        best = max(range(1, len(learnt)), key=lambda k: self.level[abs(learnt[k])])
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self.level[abs(learnt[1])]

    def _minimise(self, learnt: List[Lit], seen: List[bool]) -> List[Lit]:
        """Drop literals implied by the rest of the learnt clause."""
        for lit in learnt[1:]:
            seen[abs(lit)] = True
        result = [learnt[0]]
        for lit in learnt[1:]:
            reason_index = self.reason[abs(lit)]
            if reason_index is None:
                result.append(lit)
                continue
            redundant = all(
                seen[abs(other)] or self.level[abs(other)] == 0
                for other in self.clauses[reason_index]
                if abs(other) != abs(lit)
            )
            if not redundant:
                result.append(lit)
        for lit in learnt[1:]:
            seen[abs(lit)] = False
        return result

    def _assumption_core(
        self, assumptions: Sequence[Lit], failed: Optional[Lit] = None
    ) -> List[Lit]:
        """A (not necessarily minimal) subset of assumptions causing UNSAT."""
        assumption_set = set(assumptions)
        core: Set[Lit] = set()
        worklist: List[int] = []
        if failed is not None:
            core.add(failed)
            worklist.append(abs(failed))
        for lit in self.trail:
            if lit in assumption_set:
                core.add(lit)
        return sorted(core, key=abs)

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        heapq.heappush(self.heap, (-self.activity[var], var))
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            self.heap = [(-self.activity[v], v) for v in range(1, self.num_vars + 1)]
            heapq.heapify(self.heap)

    def _pick_branch(self) -> Optional[Lit]:
        while self.heap:
            negated_activity, var = self.heap[0]
            if self.assign[var] != 0 or -negated_activity != self.activity[var]:
                heapq.heappop(self.heap)  # stale entry
                continue
            return var if self.saved_phase[var] else -var
        # Heap exhausted: fall back to a linear scan for untouched vars.
        for var in range(1, self.num_vars + 1):
            if self.assign[var] == 0:
                return var if self.saved_phase[var] else -var
        return None

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for lit in self.trail[boundary:]:
            var = abs(lit)
            self.assign[var] = 0
            self.reason[var] = None
            heapq.heappush(self.heap, (-self.activity[var], var))
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.queue_head = min(self.queue_head, len(self.trail))

    def _unsat_result(self, core: List[Lit]) -> SatResult:
        return SatResult(
            False,
            failed_assumptions=core,
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
        )


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,… (*i* is 1-based)."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


def solve(cnf: CNF, assumptions: Sequence[Lit] = ()) -> SatResult:
    """One-shot convenience wrapper around :class:`CDCLSolver`."""
    return CDCLSolver(cnf).solve(assumptions)
