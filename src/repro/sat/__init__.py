"""SAT substrate: CNF, Tseitin encoding, CDCL and a brute-force reference."""

from .brute import solve_brute
from .cdcl import CDCLSolver, SatResult, solve
from .cnf import CNF, Clause, Lit
from .tseitin import NotPropositional, assert_formula, encode

__all__ = [
    "CDCLSolver",
    "CNF",
    "Clause",
    "Lit",
    "NotPropositional",
    "SatResult",
    "assert_formula",
    "encode",
    "solve",
    "solve_brute",
]
