"""Bounded LTL synthesis via SAT (Finkbeiner & Schewe).

The G4LTL replacement's reference engine.  To decide whether a system with
``n`` states can realize a specification ``phi`` over inputs ``I`` and
outputs ``O``:

1. build the Büchi automaton of ``!phi`` (GPVW) and read it as a
   *universal co-Büchi* automaton: the closed loop must not let any run
   visit a rejecting state infinitely often;
2. guess a Mealy machine with ``n`` states and an annotation
   ``lambda : S x Q -> {bot, 0..k}`` bounding how often rejecting states
   can still be visited;  the existence of a consistent annotation is
   equivalent to correctness of the machine (for sufficiently large
   ``k``), and is expressible in SAT;
3. a satisfying assignment yields the controller directly.

Unrealizability is semi-decided through the *dual* game: the environment,
now the constructive player, moves first each step (a Moore machine over
the outputs) and tries to enforce ``!phi``; bounded synthesis of that
machine witnesses unrealizability.

Incremental solving across bounds
---------------------------------

The realizability driver grows ``num_states`` (and with it the annotation
bound ``k``) one step at a time, and the encoding grows *monotonically*
with both: new states and counters only ever add variables and clauses.
:class:`IncrementalBoundedSynthesizer` therefore keeps ONE
:class:`~repro.sat.cdcl.CDCLSolver` alive across the whole bound ladder
(the assumption mechanism of MiniSat-style solvers).  Only two clause
families are *retracted* by a larger bound: the at-least-one successor
rows (which would forbid routing to states that do not exist yet) and the
counter-overflow caps (which pin the annotation at the current ``k``).
Both are rephrased so even they become permanent: every transition row
carries an *escape literal* ``e`` meaning "the successor lies beyond the
current state count" (``row[0..n-1] + [e]`` is permanent; growing ``n``
extends it with ``[-e_n, row[n..n'-1], e_n']``), and the unary annotation
counters are allocated one *phantom* level ahead, so the overflow clause
at ``j + bump = k + 1`` is just the ordinary propagation clause targeting
``u[k+1]``.  The bound-specific part collapses to binary *muting* clauses
``[-e, -activation]`` / ``[-u_(k+1), -activation]`` gated behind a
per-configuration activation literal and solved under assumptions;
growing the bound adds the unit ``[-old_activation]`` and re-mutes the
new frontier.  Because conflicts now resolve against permanent clauses,
the learnt clauses mention the escape/phantom variables — not the retired
activation literal — and keep pruning the search at every later bound,
alongside the surviving VSIDS activity and saved phases.
``encoding="fresh"`` keeps the from-scratch construction as the
differential reference, the same pattern as ``propagation="scan"`` and
``exploration="concrete"``.

Both encodings extract the controller from the *canonical* model — the
greedy polarity-preferred completion computed by :func:`_canonical_model`
— so the machine is a pure function of the constraint set, not of the
search path, and the differential suites can assert byte-identical
machines across encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..automata.buchi import BuchiAutomaton, Label
from ..automata.gpvw import translate
from ..logic.ast import Formula, Not
from ..sat.cdcl import CDCLSolver
from ..sat.cnf import CNF
from .mealy import Letter, MealyMachine, all_letters

#: Encoding schemes of :class:`IncrementalBoundedSynthesizer`.
ENCODING_MODES = ("incremental", "fresh")

#: The integer counters of :class:`~repro.sat.cdcl.CDCLSolver.stats` that
#: are reported per synthesis step (as deltas in incremental mode).
_COUNTER_KEYS = (
    "propagations",
    "conflicts",
    "decisions",
    "restarts",
    "clause_visits",
    "learnt_clauses",
)


@dataclass(frozen=True)
class BoundedSynthesisResult:
    """Outcome of one bounded synthesis attempt (fixed n, k)."""

    realizable: bool
    machine: Optional[MealyMachine]
    num_states: int
    annotation_bound: int
    sat_vars: int = 0
    sat_clauses: int = 0
    #: Per-attempt SAT work — propagations, conflicts, restarts, clause
    #: visits (deltas of :meth:`repro.sat.cdcl.CDCLSolver.stats` when the
    #: solver is persistent), plus the incremental-reuse counters
    #: ``incremental_solves`` (solve calls served by a carried-over solver)
    #: and ``learnt_carried`` (learnt clauses alive when the attempt
    #: started) — so callers can aggregate SAT work across the synthesis
    #: loop and see the reuse.
    solver_stats: Dict[str, int] = field(default_factory=dict, compare=False)


def synthesize(
    specification: Formula,
    inputs: Sequence[str],
    outputs: Sequence[str],
    num_states: int,
    annotation_bound: Optional[int] = None,
    moore_environment: bool = False,
) -> BoundedSynthesisResult:
    """One bounded-synthesis attempt for the *system* player.

    ``moore_environment=True`` runs the dual encoding instead: a Moore
    machine over ``outputs`` (the environment's moves are then the
    specification's inputs) — used by :func:`synthesize_environment`.
    """
    return IncrementalBoundedSynthesizer.for_system(
        specification, inputs, outputs,
        moore_environment=moore_environment, encoding="fresh",
    ).solve(num_states, annotation_bound)


def synthesize_environment(
    specification: Formula,
    inputs: Sequence[str],
    outputs: Sequence[str],
    num_states: int,
    annotation_bound: Optional[int] = None,
) -> BoundedSynthesisResult:
    """Bounded synthesis of an environment strategy enforcing ``!phi``.

    The environment is a Moore machine emitting input letters; success
    proves the original specification unrealizable.
    """
    return IncrementalBoundedSynthesizer.for_environment(
        specification, inputs, outputs, encoding="fresh",
    ).solve(num_states, annotation_bound)


def default_annotation_bound(num_states: int, num_rejecting: int) -> int:
    """The ``k`` used when the caller does not pick one.

    Monotone in ``num_states`` (for a fixed automaton), which is what lets
    the incremental encoding grow ``k`` alongside the state count.
    """
    return max(2, min(num_states * max(1, num_rejecting), 8))


class IncrementalBoundedSynthesizer:
    """Bounded synthesis that persists SAT work across a bound ladder.

    One instance owns the (degeneralized) co-Büchi automaton and, in
    ``"incremental"`` mode, one persistent CDCL solver.  Each
    :meth:`solve` call grows ``num_states``/``annotation_bound``
    monotonically: fresh variables are allocated for new states and
    counters, permanent clauses are added once, and the bound-specific
    clause families are re-gated behind a new activation literal (see the
    module docstring).  ``"fresh"`` mode rebuilds the whole encoding per
    call — the differential reference the tests and benchmarks compare
    against.  Both modes extract canonical machines, so a SAT answer
    yields the byte-identical controller either way.
    """

    def __init__(
        self,
        automaton: BuchiAutomaton,
        adversary: Tuple[str, ...],
        controlled: Tuple[str, ...],
        moore: bool,
        encoding: str = "incremental",
    ) -> None:
        if encoding not in ENCODING_MODES:
            raise ValueError(f"unknown encoding mode: {encoding!r}")
        self.automaton = automaton
        self.adversary = tuple(adversary)
        self.controlled = tuple(controlled)
        self.moore = moore
        self.encoding = encoding
        self.rejecting = (
            automaton.accepting_sets[0] if automaton.accepting_sets else set()
        )
        self.states = sorted(automaton.reachable_states())
        self.letters = all_letters(self.adversary)
        # Persistent incremental state (unused in fresh mode).
        self.cnf = CNF()
        self.solver: Optional[CDCLSolver] = None
        self.num_states = 0
        self.annotation_bound = -1
        self.activation: Optional[int] = None
        self.clauses_added = 0
        self.delta: Dict[Tuple[int, Letter, int], int] = {}
        self.gamma: Dict[Tuple[int, Letter, str], int] = {}
        self.defined: Dict[Tuple[int, int], int] = {}
        self.counter: Dict[Tuple[int, int, int], int] = {}
        #: Per-row escape literal: "successor index >= current num_states".
        self.escape: Dict[Tuple[int, Letter], int] = {}

    # ------------------------------------------------------------- factories
    @classmethod
    def for_system(
        cls,
        specification: Formula,
        inputs: Sequence[str],
        outputs: Sequence[str],
        moore_environment: bool = False,
        encoding: str = "incremental",
    ) -> "IncrementalBoundedSynthesizer":
        """Synthesize the *system* player against ``!specification``."""
        automaton = translate(Not(specification)).degeneralize()
        return cls(
            automaton,
            adversary=tuple(sorted(inputs)),
            controlled=tuple(sorted(outputs)),
            moore=moore_environment,
            encoding=encoding,
        )

    @classmethod
    def for_environment(
        cls,
        specification: Formula,
        inputs: Sequence[str],
        outputs: Sequence[str],
        encoding: str = "incremental",
    ) -> "IncrementalBoundedSynthesizer":
        """Synthesize an environment (Moore) strategy enforcing ``!phi``."""
        automaton = translate(specification).degeneralize()
        return cls(
            automaton,
            adversary=tuple(sorted(outputs)),
            controlled=tuple(sorted(inputs)),
            moore=True,
            encoding=encoding,
        )

    # ------------------------------------------------------------------ API
    def solve(
        self, num_states: int, annotation_bound: Optional[int] = None
    ) -> BoundedSynthesisResult:
        """One synthesis attempt at ``(num_states, annotation_bound)``.

        In incremental mode consecutive calls must not shrink either
        bound — the encoding only grows.
        """
        if annotation_bound is None:
            annotation_bound = default_annotation_bound(
                num_states, len(self.rejecting)
            )
        if self.encoding == "fresh":
            return _synthesize_against(
                self.automaton,
                adversary=self.adversary,
                controlled=self.controlled,
                num_states=num_states,
                annotation_bound=annotation_bound,
                moore=self.moore,
            )
        if num_states < self.num_states or annotation_bound < self.annotation_bound:
            raise ValueError(
                "incremental encoding only grows: "
                f"({num_states}, {annotation_bound}) shrinks "
                f"({self.num_states}, {self.annotation_bound})"
            )
        if self.solver is None:
            self.solver = CDCLSolver(self.cnf)
        before = self._counter_snapshot()
        learnt_carried = len(self.solver.learnt)
        if (
            num_states > self.num_states
            or annotation_bound > self.annotation_bound
            or self.activation is None
        ):
            self._grow(num_states, annotation_bound)
        result = self.solver.solve([self.activation])
        machine: Optional[MealyMachine] = None
        if result:
            model = _canonical_model(
                self.solver,
                [self.activation],
                _decision_order(
                    self.delta, self.gamma, num_states, self.letters,
                    self.controlled, self.moore,
                ),
                dict(result.model),
            )
            machine = _extract_machine(
                model, self.delta, self.gamma, num_states,
                self.adversary, self.controlled, self.letters,
            )
        stats = self._stats_delta(before)
        stats["incremental_solves"] = stats.pop("solves")
        stats["learnt_carried"] = learnt_carried
        stats["clauses_added"] = stats.pop("clauses_added_total")
        return BoundedSynthesisResult(
            bool(result),
            machine,
            num_states,
            annotation_bound,
            self.cnf.num_vars,
            self.clauses_added,
            solver_stats=stats,
        )

    # ------------------------------------------------------------ internals
    def _counter_snapshot(self) -> Dict[str, int]:
        stats = self.solver.stats()
        snapshot = {key: stats[key] for key in _COUNTER_KEYS}
        incremental = stats["incremental"]
        snapshot["solves"] = incremental["solves"]
        snapshot["clauses_added_total"] = incremental["clauses_added"]
        return snapshot

    def _stats_delta(self, before: Dict[str, int]) -> Dict[str, int]:
        after = self._counter_snapshot()
        return {key: after[key] - before[key] for key in after}

    def _add(self, clause: List[int]) -> None:
        self.solver.add_clause(clause)
        self.clauses_added += 1

    def _grow(self, n2: int, k2: int) -> None:
        """Extend the persistent encoding from (n1, k1) to (n2, k2).

        Permanent (monotone) clauses are emitted exactly once: a clause
        over old states/counters was already added by an earlier call —
        the per-call emission sets are nested because both bounds only
        grow — so each family below skips the already-emitted region.
        Escape literals keep the successor rows permanent and the phantom
        counter level keeps the overflow caps permanent (see the module
        docstring); only the binary muting clauses are gated behind the
        fresh activation literal.
        """
        n1, k1 = self.num_states, self.annotation_bound
        cnf = self.cnf
        automaton = self.automaton
        letters = self.letters
        # Retire the previous configuration's muting clauses at root level.
        if self.activation is not None:
            self._add([-self.activation])
        act = cnf.new_var(f"act{n2},{k2}")
        self.activation = act

        # Transition choice: fresh delta variables for pairs touching a new
        # state, pairwise at-most-one for new pairs, and the permanent
        # at-least-one row closed by this configuration's escape literal —
        # growing n rewrites the old escape as "route to a new state or
        # escape further", so clauses learnt about it stay meaningful.
        delta, escape = self.delta, self.escape
        for s in range(n2):
            for sigma in letters:
                for t in range(n2):
                    if s < n1 and t < n1:
                        continue
                    delta[(s, sigma, t)] = cnf.new_var(
                        f"d{s},{'.'.join(sorted(sigma))},{t}"
                    )
        for s in range(n2):
            for sigma in letters:
                row = [delta[(s, sigma, t)] for t in range(n2)]
                for i in range(n2):
                    for j in range(i + 1, n2):
                        if s < n1 and j < n1:
                            continue
                        self._add([-row[i], -row[j]])
                if s >= n1:
                    exit_var = cnf.new_var(
                        f"e{s},{'.'.join(sorted(sigma))},{n2}"
                    )
                    escape[(s, sigma)] = exit_var
                    self._add(row + [exit_var])
                elif n2 > n1:
                    old_exit = escape[(s, sigma)]
                    exit_var = cnf.new_var(
                        f"e{s},{'.'.join(sorted(sigma))},{n2}"
                    )
                    escape[(s, sigma)] = exit_var
                    self._add([-old_exit] + row[n1:] + [exit_var])
                self._add([-escape[(s, sigma)], -act])

        # Output choice: per (state, letter) for Mealy, per state for Moore
        # (aliased to every letter) — variables only, no clauses.
        gamma = self.gamma
        for s in range(n1, n2):
            for sigma in letters if not self.moore else [frozenset()]:
                for prop in self.controlled:
                    gamma[(s, sigma, prop)] = cnf.new_var(
                        f"g{s},{'.'.join(sorted(sigma))},{prop}"
                    )
            if self.moore:
                for sigma in letters:
                    for prop in self.controlled:
                        gamma[(s, sigma, prop)] = gamma[(s, frozenset(), prop)]

        # Annotation: b[s][q] (defined) and unary counters u[s][q][j],
        # allocated through the phantom level k2 + 1 so the overflow caps
        # below are ordinary (permanent) propagation clauses; the muting
        # clause pins the phantom level to false for this configuration.
        defined, counter = self.defined, self.counter
        for s in range(n2):
            for q in self.states:
                if s >= n1:
                    defined[(s, q)] = cnf.new_var(f"b{s},{q}")
                    previous = defined[(s, q)]
                    start = 1
                else:
                    previous = counter[(s, q, k1 + 1)]
                    start = k1 + 2
                for j in range(start, k2 + 2):
                    var = cnf.new_var(f"u{s},{q},{j}")
                    counter[(s, q, j)] = var
                    self._add([-var, previous])  # >= j implies >= j-1
                    previous = var
                self._add([-counter[(s, q, k2 + 1)], -act])

        # Initial annotation (state 0 exists from the first call on).
        if n1 == 0:
            for q0 in automaton.initial:
                self._add([defined[(0, q0)]])

        def at_least(s: int, q: int, j: int) -> int:
            return defined[(s, q)] if j <= 0 else counter[(s, q, j)]

        adversary_set = frozenset(self.adversary)
        controlled_set = frozenset(self.controlled)
        rejecting = self.rejecting

        # Core constraints: every matching automaton edge propagates the
        # annotation to the machine's successor state.  The j + bump =
        # k2 + 1 case targets the muted phantom level — under this
        # configuration's assumption it degenerates to the overflow cap.
        for q in self.states:
            edges = automaton.successors(q)
            for s in range(n2):
                for sigma in letters:
                    for label, q2 in edges:
                        input_part = label.restrict(adversary_set)
                        if not input_part.matches(sigma):
                            continue
                        output_pos = sorted(label.pos & controlled_set)
                        output_neg = sorted(label.neg & controlled_set)
                        guard = [gamma[(s, sigma, p)] for p in output_pos]
                        guard += [-gamma[(s, sigma, p)] for p in output_neg]
                        bump = 1 if q2 in rejecting else 0
                        for t in range(n2):
                            base = [-delta[(s, sigma, t)]] + [-g for g in guard]
                            for j in range(0, k2 + 1):
                                if s < n1 and t < n1 and j <= k1:
                                    continue  # emitted by an earlier call
                                source = at_least(s, q, j)
                                target = at_least(t, q2, j + bump)
                                self._add(base + [-source, target])
        self.num_states = n2
        self.annotation_bound = k2


def _decision_order(
    delta: Dict[Tuple[int, Letter, int], int],
    gamma: Dict[Tuple[int, Letter, str], int],
    num_states: int,
    letters: List[Letter],
    controlled: Tuple[str, ...],
    moore: bool,
) -> List[Tuple[int, bool]]:
    """The canonicalization order over the machine-defining variables.

    Successor variables first (preferring *true*, so every row picks its
    smallest feasible successor), then the distinct output variables
    (preferring *false*, so don't-care outputs stay off — matching the
    safety game's first-safe-letter convention).  The order is a function
    of the configuration, never of variable-allocation history, so the
    incremental and fresh encodings canonicalize identically.
    """
    order: List[Tuple[int, bool]] = []
    for s in range(num_states):
        for sigma in letters:
            for t in range(num_states):
                order.append((delta[(s, sigma, t)], True))
    for s in range(num_states):
        for sigma in letters if not moore else [frozenset()]:
            for prop in controlled:
                order.append((gamma[(s, sigma, prop)], False))
    return order


def _canonical_model(
    solver: CDCLSolver,
    assumptions: List[int],
    decisions: List[Tuple[int, bool]],
    model: Dict[int, bool],
) -> Dict[int, bool]:
    """Greedy polarity-preferred model completion.

    Walks *decisions* in order; each variable is pinned to its preferred
    polarity whenever some model extends the pinned prefix that way, else
    to the opposite.  The result over the decision variables is the
    unique preference-greedy assignment of the constraint set — the same
    for any two equisatisfiable encodings — which makes the extracted
    machine independent of the search path.  A solve call is only paid
    when the current witness model disagrees with the preference, so on
    typical encodings canonicalization is a handful of assumption-only
    propagations.
    """
    fixed = list(assumptions)
    for var, prefer_true in decisions:
        preferred = var if prefer_true else -var
        if model[var] == prefer_true:
            fixed.append(preferred)
            continue
        probe = solver.solve(fixed + [preferred])
        if probe:
            model = dict(probe.model)
            fixed.append(preferred)
        else:
            fixed.append(-preferred)
    return model


def _extract_machine(
    model: Dict[int, bool],
    delta: Dict[Tuple[int, Letter, int], int],
    gamma: Dict[Tuple[int, Letter, str], int],
    num_states: int,
    adversary: Tuple[str, ...],
    controlled: Tuple[str, ...],
    letters: List[Letter],
) -> MealyMachine:
    machine = MealyMachine(
        inputs=adversary,
        outputs=controlled,
        num_states=num_states,
        initial=0,
    )
    for s in range(num_states):
        for sigma in letters:
            successor = next(
                t for t in range(num_states) if model[delta[(s, sigma, t)]]
            )
            output = frozenset(
                prop for prop in controlled if model[abs(gamma[(s, sigma, prop)])]
            )
            machine.add_transition(s, sigma, successor, output)
    return machine


def _synthesize_against(
    automaton: BuchiAutomaton,
    adversary: Tuple[str, ...],
    controlled: Tuple[str, ...],
    num_states: int,
    annotation_bound: Optional[int],
    moore: bool,
) -> BoundedSynthesisResult:
    """The from-scratch encoding: one CNF, one solver, one bound."""
    rejecting = automaton.accepting_sets[0] if automaton.accepting_sets else set()
    states = sorted(automaton.reachable_states())
    if annotation_bound is None:
        annotation_bound = default_annotation_bound(num_states, len(rejecting))
    k = annotation_bound

    cnf = CNF()
    letters = all_letters(adversary)

    # Transition choice: exactly one successor per (state, adversary letter).
    delta: Dict[Tuple[int, Letter, int], int] = {}
    for s in range(num_states):
        for sigma in letters:
            row = []
            for t in range(num_states):
                var = cnf.new_var(f"d{s},{'.'.join(sorted(sigma))},{t}")
                delta[(s, sigma, t)] = var
                row.append(var)
            cnf.add_exactly_one(row)

    # Output choice: per (state, letter) for Mealy, per state for Moore.
    gamma: Dict[Tuple[int, Letter, str], int] = {}
    for s in range(num_states):
        for sigma in letters if not moore else [frozenset()]:
            for prop in controlled:
                var = cnf.new_var(f"g{s},{'.'.join(sorted(sigma))},{prop}")
                gamma[(s, sigma, prop)] = var
    if moore:
        # Outputs ignore the letter; alias every letter to the state row.
        for s in range(num_states):
            for sigma in letters:
                for prop in controlled:
                    gamma[(s, sigma, prop)] = gamma[(s, frozenset(), prop)]

    # Annotation: b[s][q] (defined) and unary counters u[s][q][j] (>= j).
    defined: Dict[Tuple[int, int], int] = {}
    counter: Dict[Tuple[int, int, int], int] = {}
    for s in range(num_states):
        for q in states:
            defined[(s, q)] = cnf.new_var(f"b{s},{q}")
            previous = defined[(s, q)]
            for j in range(1, k + 1):
                var = cnf.new_var(f"u{s},{q},{j}")
                counter[(s, q, j)] = var
                cnf.add([-var, previous])  # >= j implies >= j-1
                previous = var

    def at_least(s: int, q: int, j: int) -> Optional[int]:
        """Literal for lambda(s,q) >= j; None when j exceeds the bound."""
        if j <= 0:
            return defined[(s, q)]
        if j > k:
            return None
        return counter[(s, q, j)]

    # Initial annotation.
    for q0 in automaton.initial:
        cnf.add([defined[(0, q0)]])

    adversary_set = frozenset(adversary)
    controlled_set = frozenset(controlled)

    # Core constraints: every matching automaton edge propagates the
    # annotation to the machine's successor state.
    for q in states:
        edges = automaton.successors(q)
        for s in range(num_states):
            for sigma in letters:
                for label, q2 in edges:
                    input_part = label.restrict(adversary_set)
                    if not input_part.matches(sigma):
                        continue
                    output_pos = sorted(label.pos & controlled_set)
                    output_neg = sorted(label.neg & controlled_set)
                    guard = [gamma[(s, sigma, p)] for p in output_pos]
                    guard += [-gamma[(s, sigma, p)] for p in output_neg]
                    bump = 1 if q2 in rejecting else 0
                    for t in range(num_states):
                        base = [-delta[(s, sigma, t)]] + [-g for g in guard]
                        for j in range(0, k + 1):
                            source = at_least(s, q, j)
                            target = at_least(t, q2, j + bump)
                            if source is None:
                                continue
                            if target is None:
                                # Counter overflow: the edge must not fire.
                                cnf.add(base + [-source])
                            else:
                                cnf.add(base + [-source, target])
    solver = CDCLSolver(cnf)
    result = solver.solve()

    def flat_stats() -> Dict[str, int]:
        stats = solver.stats()
        flat = {key: stats[key] for key in _COUNTER_KEYS}
        flat["incremental_solves"] = 0
        flat["learnt_carried"] = 0
        flat["clauses_added"] = 0
        return flat

    if not result:
        return BoundedSynthesisResult(
            False, None, num_states, k, cnf.num_vars, len(cnf.clauses),
            solver_stats=flat_stats(),
        )

    model = _canonical_model(
        solver,
        [],
        _decision_order(delta, gamma, num_states, letters, controlled, moore),
        dict(result.model),
    )
    machine = _extract_machine(
        model, delta, gamma, num_states, adversary, controlled, letters
    )
    return BoundedSynthesisResult(
        True, machine, num_states, k, cnf.num_vars, len(cnf.clauses),
        solver_stats=flat_stats(),
    )
