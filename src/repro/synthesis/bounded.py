"""Bounded LTL synthesis via SAT (Finkbeiner & Schewe).

The G4LTL replacement's reference engine.  To decide whether a system with
``n`` states can realize a specification ``phi`` over inputs ``I`` and
outputs ``O``:

1. build the Büchi automaton of ``!phi`` (GPVW) and read it as a
   *universal co-Büchi* automaton: the closed loop must not let any run
   visit a rejecting state infinitely often;
2. guess a Mealy machine with ``n`` states and an annotation
   ``lambda : S x Q -> {bot, 0..k}`` bounding how often rejecting states
   can still be visited;  the existence of a consistent annotation is
   equivalent to correctness of the machine (for sufficiently large
   ``k``), and is expressible in SAT;
3. a satisfying assignment yields the controller directly.

Unrealizability is semi-decided through the *dual* game: the environment,
now the constructive player, moves first each step (a Moore machine over
the outputs) and tries to enforce ``!phi``; bounded synthesis of that
machine witnesses unrealizability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..automata.buchi import BuchiAutomaton, Label
from ..automata.gpvw import translate
from ..logic.ast import Formula, Not
from ..sat.cdcl import CDCLSolver
from ..sat.cnf import CNF
from .mealy import Letter, MealyMachine, all_letters


@dataclass(frozen=True)
class BoundedSynthesisResult:
    """Outcome of one bounded synthesis attempt (fixed n, k)."""

    realizable: bool
    machine: Optional[MealyMachine]
    num_states: int
    annotation_bound: int
    sat_vars: int = 0
    sat_clauses: int = 0
    #: :meth:`repro.sat.cdcl.CDCLSolver.stats` snapshot of the solve —
    #: propagations, conflicts, restarts, clause visits — so callers can
    #: aggregate SAT work across the synthesis loop.
    solver_stats: Dict[str, int] = field(default_factory=dict, compare=False)


def synthesize(
    specification: Formula,
    inputs: Sequence[str],
    outputs: Sequence[str],
    num_states: int,
    annotation_bound: Optional[int] = None,
    moore_environment: bool = False,
) -> BoundedSynthesisResult:
    """One bounded-synthesis attempt for the *system* player.

    ``moore_environment=True`` runs the dual encoding instead: a Moore
    machine over ``outputs`` (the environment's moves are then the
    specification's inputs) — used by :func:`synthesize_environment`.
    """
    automaton = translate(Not(specification)).degeneralize()
    return _synthesize_against(
        automaton,
        adversary=tuple(sorted(inputs)),
        controlled=tuple(sorted(outputs)),
        num_states=num_states,
        annotation_bound=annotation_bound,
        moore=moore_environment,
    )


def synthesize_environment(
    specification: Formula,
    inputs: Sequence[str],
    outputs: Sequence[str],
    num_states: int,
    annotation_bound: Optional[int] = None,
) -> BoundedSynthesisResult:
    """Bounded synthesis of an environment strategy enforcing ``!phi``.

    The environment is a Moore machine emitting input letters; success
    proves the original specification unrealizable.
    """
    automaton = translate(specification).degeneralize()
    return _synthesize_against(
        automaton,
        adversary=tuple(sorted(outputs)),
        controlled=tuple(sorted(inputs)),
        num_states=num_states,
        annotation_bound=annotation_bound,
        moore=True,
    )


def _synthesize_against(
    automaton: BuchiAutomaton,
    adversary: Tuple[str, ...],
    controlled: Tuple[str, ...],
    num_states: int,
    annotation_bound: Optional[int],
    moore: bool,
) -> BoundedSynthesisResult:
    rejecting = automaton.accepting_sets[0] if automaton.accepting_sets else set()
    states = sorted(automaton.reachable_states())
    if annotation_bound is None:
        annotation_bound = max(2, min(num_states * max(1, len(rejecting)), 8))
    k = annotation_bound

    cnf = CNF()
    letters = all_letters(adversary)

    # Transition choice: exactly one successor per (state, adversary letter).
    delta: Dict[Tuple[int, Letter, int], int] = {}
    for s in range(num_states):
        for sigma in letters:
            row = []
            for t in range(num_states):
                var = cnf.new_var(f"d{s},{'.'.join(sorted(sigma))},{t}")
                delta[(s, sigma, t)] = var
                row.append(var)
            cnf.add_exactly_one(row)

    # Output choice: per (state, letter) for Mealy, per state for Moore.
    gamma: Dict[Tuple[int, Letter, str], int] = {}
    for s in range(num_states):
        for sigma in letters if not moore else [frozenset()]:
            for prop in controlled:
                var = cnf.new_var(f"g{s},{'.'.join(sorted(sigma))},{prop}")
                gamma[(s, sigma, prop)] = var
    if moore:
        # Outputs ignore the letter; alias every letter to the state row.
        for s in range(num_states):
            for sigma in letters:
                for prop in controlled:
                    gamma[(s, sigma, prop)] = gamma[(s, frozenset(), prop)]

    # Annotation: b[s][q] (defined) and unary counters u[s][q][j] (>= j).
    defined: Dict[Tuple[int, int], int] = {}
    counter: Dict[Tuple[int, int, int], int] = {}
    for s in range(num_states):
        for q in states:
            defined[(s, q)] = cnf.new_var(f"b{s},{q}")
            previous = defined[(s, q)]
            for j in range(1, k + 1):
                var = cnf.new_var(f"u{s},{q},{j}")
                counter[(s, q, j)] = var
                cnf.add([-var, previous])  # >= j implies >= j-1
                previous = var

    def at_least(s: int, q: int, j: int) -> Optional[int]:
        """Literal for lambda(s,q) >= j; None when j exceeds the bound."""
        if j <= 0:
            return defined[(s, q)]
        if j > k:
            return None
        return counter[(s, q, j)]

    # Initial annotation.
    for q0 in automaton.initial:
        cnf.add([defined[(0, q0)]])

    adversary_set = frozenset(adversary)
    controlled_set = frozenset(controlled)

    # Core constraints: every matching automaton edge propagates the
    # annotation to the machine's successor state.
    for q in states:
        edges = automaton.successors(q)
        for s in range(num_states):
            for sigma in letters:
                for label, q2 in edges:
                    input_part = label.restrict(adversary_set)
                    if not input_part.matches(sigma):
                        continue
                    output_pos = sorted(label.pos & controlled_set)
                    output_neg = sorted(label.neg & controlled_set)
                    guard = [gamma[(s, sigma, p)] for p in output_pos]
                    guard += [-gamma[(s, sigma, p)] for p in output_neg]
                    bump = 1 if q2 in rejecting else 0
                    for t in range(num_states):
                        base = [-delta[(s, sigma, t)]] + [-g for g in guard]
                        for j in range(0, k + 1):
                            source = at_least(s, q, j)
                            target = at_least(t, q2, j + bump)
                            if source is None:
                                continue
                            if target is None:
                                # Counter overflow: the edge must not fire.
                                cnf.add(base + [-source])
                            else:
                                cnf.add(base + [-source, target])
                            if j == 0 and bump == 0:
                                # definedness propagation is j == 0 case
                                pass
    solver = CDCLSolver(cnf)
    result = solver.solve()
    if not result:
        return BoundedSynthesisResult(
            False, None, num_states, k, cnf.num_vars, len(cnf.clauses),
            solver_stats=solver.stats(),
        )

    machine = MealyMachine(
        inputs=adversary,
        outputs=controlled,
        num_states=num_states,
        initial=0,
    )
    for s in range(num_states):
        for sigma in letters:
            successor = next(
                t
                for t in range(num_states)
                if result.model[delta[(s, sigma, t)]]
            )
            output = frozenset(
                prop
                for prop in controlled
                if result.model[abs(gamma[(s, sigma, prop)])]
            )
            machine.add_transition(s, sigma, successor, output)
    return BoundedSynthesisResult(
        True, machine, num_states, k, cnf.num_vars, len(cnf.clauses),
        solver_stats=solver.stats(),
    )
