"""Inconsistency localization (Section V-B, first bullet).

"The process starts from a subset of consistent formulas.  We can add more
formulas continuously to the subset to check which one is not consistent
with the subset.  Once we have located the problem, we could filter out
other formulas that do not contain any propositions of the located
formulas."

:func:`localize` implements exactly that incremental growth, followed by a
shrinking pass that removes formulas irrelevant to the conflict, yielding
an (inclusion-)minimal unrealizable core.

The growth loop issues O(n) realizability queries over overlapping subsets
and the shrink loop another O(core²) — almost all of whose components have
been analysed before.  With interned formulas the realizability layer's
component cache answers those repeats without re-translating a single
formula, which is what keeps localization affordable on Table-I-sized
specifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..logic.ast import Formula, atoms
from .realizability import (
    Engine,
    RealizabilityResult,
    SynthesisLimits,
    Verdict,
    check_realizability,
)

Checker = Callable[[Sequence[Formula]], Verdict]


@dataclass(frozen=True)
class LocalizationResult:
    """An unrealizable core with bookkeeping for reporting."""

    culprit: int  # index whose addition broke realizability
    core: Tuple[int, ...]  # minimal set of indices jointly unrealizable
    checks: int  # number of realizability queries spent


def default_checker(
    inputs: Sequence[str],
    outputs: Sequence[str],
    engine: Engine = Engine.SAFETY_GAME,
    limits: SynthesisLimits = SynthesisLimits(),
) -> Checker:
    """A checker closure over a fixed I/O partition."""

    def run(formulas: Sequence[Formula]) -> Verdict:
        return check_realizability(
            list(formulas), inputs, outputs, engine=engine, limits=limits
        ).verdict

    return run


def localize(
    formulas: Sequence[Formula],
    checker: Checker,
) -> Optional[LocalizationResult]:
    """Locate a minimal unrealizable subset by incremental growth.

    Returns ``None`` when the whole specification checks out realizable
    (or the engines cannot decide it).
    """
    formulas = list(formulas)
    checks = 0
    culprit: Optional[int] = None
    prefix: List[int] = []
    for index in range(len(formulas)):
        prefix.append(index)
        checks += 1
        if checker([formulas[i] for i in prefix]) is Verdict.UNREALIZABLE:
            culprit = index
            break
    if culprit is None:
        return None

    # Filter: keep only formulas sharing propositions with the culprit
    # (transitively), as the paper suggests, then shrink to a minimal core.
    relevant = _proposition_closure(formulas, prefix, culprit)
    core = list(relevant)
    position = 0
    while position < len(core):
        candidate = core[:position] + core[position + 1 :]
        if culprit not in candidate:
            position += 1
            continue
        checks += 1
        if checker([formulas[i] for i in candidate]) is Verdict.UNREALIZABLE:
            core = candidate
        else:
            position += 1
    return LocalizationResult(culprit, tuple(core), checks)


def _proposition_closure(
    formulas: Sequence[Formula], candidates: Sequence[int], culprit: int
) -> List[int]:
    """Indices connected to the culprit through shared propositions."""
    # atoms() is cached per interned node, but hoisting the lookups keeps
    # the fixpoint loop free of repeated frozenset construction.
    support = {index: atoms(formulas[index]) for index in candidates}
    support[culprit] = atoms(formulas[culprit])
    names = set(support[culprit])
    selected = {culprit}
    changed = True
    while changed:
        changed = False
        for index in candidates:
            if index in selected:
                continue
            if support[index] & names:
                selected.add(index)
                names |= support[index]
                changed = True
    return sorted(selected)
