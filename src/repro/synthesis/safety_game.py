"""The G4LTL-style engine: k-co-Büchi determinization to a safety game.

G4LTL checks realizability by strengthening the universal co-Büchi
condition ("rejecting states visited finitely often") to a k-co-Büchi one
("… at most k times"), which determinizes cheaply into a *counting-function*
safety automaton: each game position maps every automaton state to the
maximal number of rejecting visits on any run reaching it (or absent).
Solving the resulting safety game by backward induction yields a
controller; growing ``k`` recovers completeness in the limit.

Positions are explored on the fly, and only from input/output letters over
the automaton's support, so requirements mentioning few propositions stay
cheap regardless of the global alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..automata.buchi import BuchiAutomaton
from ..automata.gpvw import translate
from ..logic.ast import Formula, Not
from .mealy import Letter, MealyMachine, all_letters

CountingFunction = Tuple[Tuple[int, int], ...]  # sorted ((state, count), ...)


class StateSpaceLimit(RuntimeError):
    """Raised when the explored game graph exceeds the configured cap."""


@dataclass(frozen=True)
class SafetyGameResult:
    """Outcome of one k-bounded safety-game analysis."""

    realizable: bool
    machine: Optional[MealyMachine]
    bound: int
    positions_explored: int


def solve(
    specification: Formula,
    inputs: Sequence[str],
    outputs: Sequence[str],
    bound: int = 2,
    max_positions: int = 200_000,
) -> SafetyGameResult:
    """Solve the ``bound``-co-Büchi safety game for *specification*.

    ``realizable=True`` is definitive; ``False`` only means "not winnable
    within this bound" — the caller grows the bound or consults the dual
    engine for unrealizability.
    """
    automaton = translate(Not(specification)).degeneralize()
    rejecting = automaton.accepting_sets[0]
    game = _Game(automaton, rejecting, tuple(sorted(inputs)), tuple(sorted(outputs)),
                 bound, max_positions)
    return game.solve()


class _Game:
    def __init__(
        self,
        automaton: BuchiAutomaton,
        rejecting: Set[int],
        inputs: Tuple[str, ...],
        outputs: Tuple[str, ...],
        bound: int,
        max_positions: int,
    ) -> None:
        self.automaton = automaton
        self.rejecting = rejecting
        self.inputs = inputs
        self.outputs = outputs
        self.bound = bound
        self.max_positions = max_positions
        self.input_letters = all_letters(inputs)
        self.output_letters = all_letters(outputs)
        # Bitmask compilation: propositions get bit positions, transition
        # guards become (positive mask, negative mask) pairs, and letters
        # become integers — letter matching is then two AND operations,
        # which is what keeps the 2^|O| output enumeration tolerable.
        self.bit_of = {
            name: index
            for index, name in enumerate(sorted(set(inputs) | set(outputs)))
        }
        self.input_masks = [self._mask(letter) for letter in self.input_letters]
        self.output_masks = [self._mask(letter) for letter in self.output_letters]
        self.compiled: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for state in automaton.reachable_states():
            rows = []
            alphabet = frozenset(self.bit_of)
            for label, successor in automaton.successors(state):
                if label.pos - alphabet:
                    # A positive literal over a proposition outside the
                    # alphabet can never hold: the edge is dead.
                    continue
                # Negative literals over unknown propositions always hold
                # (the proposition is never emitted) and are dropped.
                pos = self._mask(label.pos)
                neg = self._mask(label.neg & alphabet)
                bump = 1 if successor in rejecting else 0
                rows.append((pos, neg, successor, bump))
            self.compiled[state] = rows
        initial: Dict[int, int] = {}
        for q in automaton.initial:
            bump = 1 if q in rejecting else 0
            initial[q] = max(initial.get(q, 0), bump)
        self.initial = _freeze(initial)
        # position -> {input letter -> {output letter -> successor or None}}
        self.successors: Dict[
            CountingFunction, Dict[Letter, Dict[Letter, Optional[CountingFunction]]]
        ] = {}

    def _mask(self, names: FrozenSet[str]) -> int:
        mask = 0
        for name in names:
            mask |= 1 << self.bit_of[name]
        return mask

    # ------------------------------------------------------------- exploration
    def _update_mask(
        self, position: CountingFunction, letter: int
    ) -> Optional[CountingFunction]:
        """Deterministic counting-function successor; None = unsafe."""
        result: Dict[int, int] = {}
        bound = self.bound
        get = result.get
        for state, count in position:
            for pos, neg, successor, bump in self.compiled[state]:
                if letter & pos != pos or letter & neg:
                    continue
                bumped = count + bump
                if bumped > bound:
                    return None
                if get(successor, -1) < bumped:
                    result[successor] = bumped
        return _freeze(result)

    def _explore(self) -> None:
        worklist = [self.initial]
        self.successors[self.initial] = {}
        while worklist:
            position = worklist.pop()
            table = self.successors[position]
            for sigma, sigma_mask in zip(self.input_letters, self.input_masks):
                row: Dict[Letter, Optional[CountingFunction]] = {}
                cache: Dict[int, Optional[CountingFunction]] = {}
                for out, out_mask in zip(self.output_letters, self.output_masks):
                    combined = sigma_mask | out_mask
                    if combined in cache:
                        successor = cache[combined]
                    else:
                        successor = self._update_mask(position, combined)
                        cache[combined] = successor
                    row[out] = successor
                    if successor is not None and successor not in self.successors:
                        if len(self.successors) >= self.max_positions:
                            raise StateSpaceLimit(
                                f"safety game exceeded {self.max_positions} positions"
                            )
                        self.successors[successor] = {}
                        worklist.append(successor)
                table[sigma] = row

    # ------------------------------------------------------------------ solve
    def solve(self) -> SafetyGameResult:
        self._explore()
        losing: Set[CountingFunction] = set()
        changed = True
        while changed:
            changed = False
            for position, table in self.successors.items():
                if position in losing:
                    continue
                if self._is_losing(table, losing):
                    losing.add(position)
                    changed = True
        explored = len(self.successors)
        if self.initial in losing:
            return SafetyGameResult(False, None, self.bound, explored)
        machine = self._extract(losing)
        return SafetyGameResult(True, machine, self.bound, explored)

    def _is_losing(
        self,
        table: Dict[Letter, Dict[Letter, Optional[CountingFunction]]],
        losing: Set[CountingFunction],
    ) -> bool:
        for row in table.values():
            if all(
                successor is None or successor in losing
                for successor in row.values()
            ):
                return True
        return False

    def _extract(self, losing: Set[CountingFunction]) -> MealyMachine:
        """Deterministic strategy over the winning region."""
        order: Dict[CountingFunction, int] = {self.initial: 0}
        machine = MealyMachine(
            inputs=self.inputs, outputs=self.outputs, num_states=0
        )
        worklist = [self.initial]
        transitions: List[Tuple[int, Letter, CountingFunction, Letter]] = []
        while worklist:
            position = worklist.pop()
            source = order[position]
            for sigma in self.input_letters:
                row = self.successors[position][sigma]
                chosen: Optional[Tuple[Letter, CountingFunction]] = None
                for out in self.output_letters:
                    successor = row[out]
                    if successor is not None and successor not in losing:
                        chosen = (out, successor)
                        break
                assert chosen is not None, "winning position must have a move"
                out, successor = chosen
                if successor not in order:
                    order[successor] = len(order)
                    worklist.append(successor)
                transitions.append((source, sigma, successor, out))
        machine.num_states = len(order)
        for source, sigma, successor, out in transitions:
            machine.add_transition(source, sigma, order[successor], out)
        return machine


def _freeze(mapping: Dict[int, int]) -> CountingFunction:
    return tuple(sorted(mapping.items()))
