"""The G4LTL-style engine: k-co-Büchi determinization to a safety game.

G4LTL checks realizability by strengthening the universal co-Büchi
condition ("rejecting states visited finitely often") to a k-co-Büchi one
("… at most k times"), which determinizes cheaply into a *counting-function*
safety automaton: each game position maps every automaton state to the
maximal number of rejecting visits on any run reaching it (or absent).
Solving the resulting safety game by backward induction yields a
controller; growing ``k`` recovers completeness in the limit.

Positions are explored on the fly over **partial letters**: only the
propositions that actually appear in some transition guard (the label
support) are enumerated, every other proposition stays symbolic.  Two
concrete letters that agree on the support take identical transitions, so
the quotient is exact — the game over partial letters has the same
positions, the same losing region and yields the same controller as the
game over all ``2^|I| * 2^|O|`` concrete letters, at a cost independent of
how many don't-care outputs the interface declares.  The pre-quotient
concrete enumeration is kept behind ``exploration="concrete"`` as the
reference for the golden equivalence tests and benchmarks.

The losing region is likewise computed **during** exploration rather than
as a post-hoc fixpoint: every position keeps a safe-move counter per
input row and a predecessor list, a row exhausting its safe moves marks
the position losing, and the standard attractor cascade decrements the
counters of its predecessors — each edge is touched O(1) times instead of
once per ``while changed`` sweep.  The payoff is on unrealizable-at-bound
games: the moment the *initial* position falls into the losing region the
verdict is final, exploration aborts, and every position still waiting on
the worklist is never expanded (counted as ``positions_pruned``).  The
full-exploration + post-hoc fixpoint path is kept behind
``solving="offline"`` as the differential reference, the same pattern as
``exploration="concrete"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..automata.buchi import BuchiAutomaton
from ..automata.gpvw import translate
from ..logic.ast import Formula, Not
from .mealy import Letter, MealyMachine, all_letters

CountingFunction = Tuple[Tuple[int, int], ...]  # sorted ((state, count), ...)

#: Letter-enumeration schemes for :func:`solve`.
EXPLORATION_MODES = ("partial", "concrete")

#: Attractor-computation schemes for :func:`solve`.
SOLVING_MODES = ("onthefly", "offline")


class StateSpaceLimit(RuntimeError):
    """Raised when the explored game graph exceeds the configured cap."""


@dataclass(frozen=True)
class SafetyGameResult:
    """Outcome of one k-bounded safety-game analysis."""

    realizable: bool
    machine: Optional[MealyMachine]
    bound: int
    positions_explored: int
    #: Work counters: letters enumerated (= counting-function updates), the
    #: size of the enumerated input/output letter sets and of the support,
    #: the losing-region size and the positions the early abort skipped.
    stats: Dict[str, int] = field(default_factory=dict, compare=False)


def solve(
    specification: Formula,
    inputs: Sequence[str],
    outputs: Sequence[str],
    bound: int = 2,
    max_positions: int = 200_000,
    exploration: str = "partial",
    solving: str = "onthefly",
) -> SafetyGameResult:
    """Solve the ``bound``-co-Büchi safety game for *specification*.

    ``realizable=True`` is definitive; ``False`` only means "not winnable
    within this bound" — the caller grows the bound or consults the dual
    engine for unrealizability.  ``exploration`` picks the letter scheme:
    ``"partial"`` (support-projected letters, the default) or
    ``"concrete"`` (every subset of the declared alphabet, kept as the
    equivalence-test reference).  ``solving`` picks the attractor scheme:
    ``"onthefly"`` (interleaved with exploration, aborting once the
    initial position is losing — the default) or ``"offline"`` (full
    exploration followed by the post-hoc fixpoint, kept as the reference).
    """
    automaton = translate(Not(specification)).degeneralize()
    return solve_automaton(
        automaton, inputs, outputs,
        bound=bound, max_positions=max_positions,
        exploration=exploration, solving=solving,
    )


def solve_automaton(
    automaton: BuchiAutomaton,
    inputs: Sequence[str],
    outputs: Sequence[str],
    bound: int = 2,
    max_positions: int = 200_000,
    exploration: str = "partial",
    solving: str = "onthefly",
) -> SafetyGameResult:
    """:func:`solve` for a pre-built (degeneralized) co-Büchi automaton.

    An automaton without accepting sets has no rejecting states: no
    counter can ever exceed the bound and the game is a plain safety
    check over the transition structure.
    """
    if exploration not in EXPLORATION_MODES:
        raise ValueError(f"unknown exploration mode: {exploration!r}")
    if solving not in SOLVING_MODES:
        raise ValueError(f"unknown solving mode: {solving!r}")
    rejecting = automaton.accepting_sets[0] if automaton.accepting_sets else set()
    game = _Game(automaton, rejecting, tuple(sorted(inputs)), tuple(sorted(outputs)),
                 bound, max_positions, exploration, solving)
    return game.solve()


class _Game:
    def __init__(
        self,
        automaton: BuchiAutomaton,
        rejecting: Set[int],
        inputs: Tuple[str, ...],
        outputs: Tuple[str, ...],
        bound: int,
        max_positions: int,
        exploration: str = "partial",
        solving: str = "onthefly",
    ) -> None:
        self.automaton = automaton
        self.rejecting = rejecting
        self.inputs = inputs
        self.outputs = outputs
        self.bound = bound
        self.max_positions = max_positions
        self.exploration = exploration
        self.solving = solving
        # Bitmask compilation: propositions get bit positions, transition
        # guards become (positive mask, negative mask) pairs, and letters
        # become integers — letter matching is then two AND operations.
        self.bit_of = {
            name: index
            for index, name in enumerate(sorted(set(inputs) | set(outputs)))
        }
        self.compiled: Dict[int, List[Tuple[int, int, int, int]]] = {}
        support = 0
        for state in automaton.reachable_states():
            rows = []
            alphabet = frozenset(self.bit_of)
            for label, successor in automaton.successors(state):
                if label.pos - alphabet:
                    # A positive literal over a proposition outside the
                    # alphabet can never hold: the edge is dead.
                    continue
                # Negative literals over unknown propositions always hold
                # (the proposition is never emitted) and are dropped.
                pos = self._mask(label.pos)
                neg = self._mask(label.neg & alphabet)
                bump = 1 if successor in rejecting else 0
                rows.append((pos, neg, successor, bump))
                support |= pos | neg
            self.compiled[state] = rows
        # Partial letters: every proposition outside the guard support is a
        # don't-care — transitions cannot distinguish letters that agree on
        # the support, so enumerating support subsets is an exact quotient.
        if exploration == "partial":
            self.enum_inputs = tuple(
                name for name in inputs if support & (1 << self.bit_of[name])
            )
            self.enum_outputs = tuple(
                name for name in outputs if support & (1 << self.bit_of[name])
            )
        else:
            self.enum_inputs = inputs
            self.enum_outputs = outputs
        #: Concrete input letters are projected onto this mask to find
        #: their row (the identity projection in concrete mode).
        self.row_input_mask = self._mask(frozenset(self.enum_inputs))
        self.input_letters = all_letters(self.enum_inputs)
        self.output_letters = all_letters(self.enum_outputs)
        self.input_masks = [self._mask(letter) for letter in self.input_letters]
        self.output_masks = [self._mask(letter) for letter in self.output_letters]
        self.support_size = bin(support).count("1")
        initial: Dict[int, int] = {}
        for q in automaton.initial:
            bump = 1 if q in rejecting else 0
            initial[q] = max(initial.get(q, 0), bump)
        self.initial = _freeze(initial)
        # position -> {input letter mask -> {output letter mask -> successor}}
        self.successors: Dict[
            CountingFunction, Dict[int, Dict[int, Optional[CountingFunction]]]
        ] = {}
        self.letters_enumerated = 0
        # On-the-fly attractor state: the losing region so far, the number
        # of not-yet-losing moves per (position, input row), the reverse
        # edges feeding the cascade (one entry per edge occurrence, so a
        # successor's fall into the losing region decrements each counter
        # exactly as often as the row counted it), and the number of
        # discovered-but-never-expanded positions at the early abort.
        self.losing: Set[CountingFunction] = set()
        self.safe_moves: Dict[Tuple[CountingFunction, int], int] = {}
        self.predecessors: Dict[
            CountingFunction, List[Tuple[CountingFunction, int]]
        ] = {}
        self.positions_pruned = 0

    def _mask(self, names: FrozenSet[str]) -> int:
        mask = 0
        for name in names:
            mask |= 1 << self.bit_of[name]
        return mask

    # ------------------------------------------------------------- exploration
    def _update_mask(
        self, position: CountingFunction, letter: int
    ) -> Optional[CountingFunction]:
        """Deterministic counting-function successor; None = unsafe."""
        result: Dict[int, int] = {}
        bound = self.bound
        get = result.get
        for state, count in position:
            for pos, neg, successor, bump in self.compiled[state]:
                if letter & pos != pos or letter & neg:
                    continue
                bumped = count + bump
                if bumped > bound:
                    return None
                if get(successor, -1) < bumped:
                    result[successor] = bumped
        return _freeze(result)

    def _explore(self) -> None:
        worklist = [self.initial]
        self.successors[self.initial] = {}
        while worklist:
            position = worklist.pop()
            table = self.successors[position]
            for sigma_mask in self.input_masks:
                row: Dict[int, Optional[CountingFunction]] = {}
                for out_mask in self.output_masks:
                    self.letters_enumerated += 1
                    successor = self._update_mask(position, sigma_mask | out_mask)
                    row[out_mask] = successor
                    if successor is not None and successor not in self.successors:
                        if len(self.successors) >= self.max_positions:
                            raise StateSpaceLimit(
                                f"safety game exceeded {self.max_positions} positions"
                            )
                        self.successors[successor] = {}
                        worklist.append(successor)
                table[sigma_mask] = row

    def _explore_onthefly(self) -> None:
        """Exploration interleaved with the counter-based attractor.

        Losing positions are still fully expanded — the attractor needs
        their outgoing edges and the explored graph must match the
        offline reference on realizable games — but the instant the
        *initial* position turns losing the verdict can no longer change,
        so everything still waiting on the worklist is abandoned.
        """
        worklist = [self.initial]
        self.successors[self.initial] = {}
        while worklist:
            position = worklist.pop()
            table = self.successors[position]
            for sigma_mask in self.input_masks:
                row: Dict[int, Optional[CountingFunction]] = {}
                safe = 0
                for out_mask in self.output_masks:
                    self.letters_enumerated += 1
                    successor = self._update_mask(position, sigma_mask | out_mask)
                    row[out_mask] = successor
                    if successor is None:
                        continue
                    if successor not in self.successors:
                        if len(self.successors) >= self.max_positions:
                            raise StateSpaceLimit(
                                f"safety game exceeded {self.max_positions} positions"
                            )
                        self.successors[successor] = {}
                        worklist.append(successor)
                    self.predecessors.setdefault(successor, []).append(
                        (position, sigma_mask)
                    )
                    if successor not in self.losing:
                        safe += 1
                table[sigma_mask] = row
                self.safe_moves[(position, sigma_mask)] = safe
                if safe == 0 and position not in self.losing:
                    self._mark_losing(position)
                    if self.initial in self.losing:
                        self.positions_pruned = len(worklist)
                        return

    def _mark_losing(self, position: CountingFunction) -> None:
        """Attractor cascade: pull predecessors whose rows run dry."""
        stack = [position]
        while stack:
            fallen = stack.pop()
            if fallen in self.losing:
                continue
            self.losing.add(fallen)
            for predecessor, sigma_mask in self.predecessors.get(fallen, ()):
                if predecessor in self.losing:
                    continue
                key = (predecessor, sigma_mask)
                self.safe_moves[key] -= 1
                if self.safe_moves[key] == 0:
                    stack.append(predecessor)

    # ------------------------------------------------------------------ solve
    def solve(self) -> SafetyGameResult:
        if self.solving == "onthefly":
            self._explore_onthefly()
            losing = self.losing
        else:
            self._explore()
            losing = self._offline_losing()
        # Explored = actually expanded; positions the early abort left on
        # the worklist were discovered by name but never cost a letter
        # enumeration, so they count as pruned, not explored.
        explored = len(self.successors) - self.positions_pruned
        stats = {
            "positions": explored,
            "positions_discovered": len(self.successors),
            "letters_enumerated": self.letters_enumerated,
            "input_letters": len(self.input_letters),
            "output_letters": len(self.output_letters),
            "support_propositions": self.support_size,
            "alphabet_propositions": len(self.bit_of),
            "losing_positions": len(losing),
            "positions_pruned": self.positions_pruned,
        }
        if self.initial in losing:
            return SafetyGameResult(False, None, self.bound, explored, stats)
        machine = self._extract(losing)
        return SafetyGameResult(True, machine, self.bound, explored, stats)

    def _offline_losing(self) -> Set[CountingFunction]:
        """The post-hoc O(positions^2) fixpoint (reference path)."""
        losing: Set[CountingFunction] = set()
        changed = True
        while changed:
            changed = False
            for position, table in self.successors.items():
                if position in losing:
                    continue
                if self._is_losing(table, losing):
                    losing.add(position)
                    changed = True
        return losing

    def _is_losing(
        self,
        table: Dict[int, Dict[int, Optional[CountingFunction]]],
        losing: Set[CountingFunction],
    ) -> bool:
        for row in table.values():
            if all(
                successor is None or successor in losing
                for successor in row.values()
            ):
                return True
        return False

    def _extract(self, losing: Set[CountingFunction]) -> MealyMachine:
        """Deterministic strategy over the winning region.

        The machine is total over the full *concrete* input alphabet: each
        concrete input letter is projected onto the enumerated support to
        find its row.  The chosen output letter is the first safe one in
        ``all_letters`` order; don't-care outputs stay off, which is also
        what the first safe letter of the concrete enumeration looks like —
        so both exploration modes extract the identical machine.
        """
        order: Dict[CountingFunction, int] = {self.initial: 0}
        machine = MealyMachine(
            inputs=self.inputs, outputs=self.outputs, num_states=0
        )
        worklist = [self.initial]
        transitions: List[Tuple[int, Letter, CountingFunction, Letter]] = []
        concrete_inputs = [
            (sigma, self._mask(sigma) & self.row_input_mask)
            for sigma in all_letters(self.inputs)
        ]
        while worklist:
            position = worklist.pop()
            source = order[position]
            table = self.successors[position]
            for sigma, sigma_row_mask in concrete_inputs:
                row = table[sigma_row_mask]
                chosen: Optional[Tuple[Letter, CountingFunction]] = None
                for out, out_mask in zip(self.output_letters, self.output_masks):
                    successor = row[out_mask]
                    if successor is not None and successor not in losing:
                        chosen = (out, successor)
                        break
                assert chosen is not None, "winning position must have a move"
                out, successor = chosen
                if successor not in order:
                    order[successor] = len(order)
                    worklist.append(successor)
                transitions.append((source, sigma, successor, out))
        machine.num_states = len(order)
        for source, sigma, successor, out in transitions:
            machine.add_transition(source, sigma, order[successor], out)
        return machine


def _freeze(mapping: Dict[int, int]) -> CountingFunction:
    return tuple(sorted(mapping.items()))
