"""The G4LTL-style engine: k-co-Büchi determinization to a safety game.

G4LTL checks realizability by strengthening the universal co-Büchi
condition ("rejecting states visited finitely often") to a k-co-Büchi one
("… at most k times"), which determinizes cheaply into a *counting-function*
safety automaton: each game position maps every automaton state to the
maximal number of rejecting visits on any run reaching it (or absent).
Solving the resulting safety game by backward induction yields a
controller; growing ``k`` recovers completeness in the limit.

Positions are explored on the fly over **partial letters**: only the
propositions that actually appear in some transition guard (the label
support) are enumerated, every other proposition stays symbolic.  Two
concrete letters that agree on the support take identical transitions, so
the quotient is exact — the game over partial letters has the same
positions, the same losing region and yields the same controller as the
game over all ``2^|I| * 2^|O|`` concrete letters, at a cost independent of
how many don't-care outputs the interface declares.  The pre-quotient
concrete enumeration is kept behind ``exploration="concrete"`` as the
reference for the golden equivalence tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..automata.buchi import BuchiAutomaton
from ..automata.gpvw import translate
from ..logic.ast import Formula, Not
from .mealy import Letter, MealyMachine, all_letters

CountingFunction = Tuple[Tuple[int, int], ...]  # sorted ((state, count), ...)

#: Letter-enumeration schemes for :func:`solve`.
EXPLORATION_MODES = ("partial", "concrete")


class StateSpaceLimit(RuntimeError):
    """Raised when the explored game graph exceeds the configured cap."""


@dataclass(frozen=True)
class SafetyGameResult:
    """Outcome of one k-bounded safety-game analysis."""

    realizable: bool
    machine: Optional[MealyMachine]
    bound: int
    positions_explored: int
    #: Work counters: letters enumerated (= counting-function updates), the
    #: size of the enumerated input/output letter sets and of the support.
    stats: Dict[str, int] = field(default_factory=dict, compare=False)


def solve(
    specification: Formula,
    inputs: Sequence[str],
    outputs: Sequence[str],
    bound: int = 2,
    max_positions: int = 200_000,
    exploration: str = "partial",
) -> SafetyGameResult:
    """Solve the ``bound``-co-Büchi safety game for *specification*.

    ``realizable=True`` is definitive; ``False`` only means "not winnable
    within this bound" — the caller grows the bound or consults the dual
    engine for unrealizability.  ``exploration`` picks the letter scheme:
    ``"partial"`` (support-projected letters, the default) or
    ``"concrete"`` (every subset of the declared alphabet, kept as the
    equivalence-test reference).
    """
    if exploration not in EXPLORATION_MODES:
        raise ValueError(f"unknown exploration mode: {exploration!r}")
    automaton = translate(Not(specification)).degeneralize()
    rejecting = automaton.accepting_sets[0]
    game = _Game(automaton, rejecting, tuple(sorted(inputs)), tuple(sorted(outputs)),
                 bound, max_positions, exploration)
    return game.solve()


class _Game:
    def __init__(
        self,
        automaton: BuchiAutomaton,
        rejecting: Set[int],
        inputs: Tuple[str, ...],
        outputs: Tuple[str, ...],
        bound: int,
        max_positions: int,
        exploration: str = "partial",
    ) -> None:
        self.automaton = automaton
        self.rejecting = rejecting
        self.inputs = inputs
        self.outputs = outputs
        self.bound = bound
        self.max_positions = max_positions
        self.exploration = exploration
        # Bitmask compilation: propositions get bit positions, transition
        # guards become (positive mask, negative mask) pairs, and letters
        # become integers — letter matching is then two AND operations.
        self.bit_of = {
            name: index
            for index, name in enumerate(sorted(set(inputs) | set(outputs)))
        }
        self.compiled: Dict[int, List[Tuple[int, int, int, int]]] = {}
        support = 0
        for state in automaton.reachable_states():
            rows = []
            alphabet = frozenset(self.bit_of)
            for label, successor in automaton.successors(state):
                if label.pos - alphabet:
                    # A positive literal over a proposition outside the
                    # alphabet can never hold: the edge is dead.
                    continue
                # Negative literals over unknown propositions always hold
                # (the proposition is never emitted) and are dropped.
                pos = self._mask(label.pos)
                neg = self._mask(label.neg & alphabet)
                bump = 1 if successor in rejecting else 0
                rows.append((pos, neg, successor, bump))
                support |= pos | neg
            self.compiled[state] = rows
        # Partial letters: every proposition outside the guard support is a
        # don't-care — transitions cannot distinguish letters that agree on
        # the support, so enumerating support subsets is an exact quotient.
        if exploration == "partial":
            self.enum_inputs = tuple(
                name for name in inputs if support & (1 << self.bit_of[name])
            )
            self.enum_outputs = tuple(
                name for name in outputs if support & (1 << self.bit_of[name])
            )
        else:
            self.enum_inputs = inputs
            self.enum_outputs = outputs
        #: Concrete input letters are projected onto this mask to find
        #: their row (the identity projection in concrete mode).
        self.row_input_mask = self._mask(frozenset(self.enum_inputs))
        self.input_letters = all_letters(self.enum_inputs)
        self.output_letters = all_letters(self.enum_outputs)
        self.input_masks = [self._mask(letter) for letter in self.input_letters]
        self.output_masks = [self._mask(letter) for letter in self.output_letters]
        self.support_size = bin(support).count("1")
        initial: Dict[int, int] = {}
        for q in automaton.initial:
            bump = 1 if q in rejecting else 0
            initial[q] = max(initial.get(q, 0), bump)
        self.initial = _freeze(initial)
        # position -> {input letter mask -> {output letter mask -> successor}}
        self.successors: Dict[
            CountingFunction, Dict[int, Dict[int, Optional[CountingFunction]]]
        ] = {}
        self.letters_enumerated = 0

    def _mask(self, names: FrozenSet[str]) -> int:
        mask = 0
        for name in names:
            mask |= 1 << self.bit_of[name]
        return mask

    # ------------------------------------------------------------- exploration
    def _update_mask(
        self, position: CountingFunction, letter: int
    ) -> Optional[CountingFunction]:
        """Deterministic counting-function successor; None = unsafe."""
        result: Dict[int, int] = {}
        bound = self.bound
        get = result.get
        for state, count in position:
            for pos, neg, successor, bump in self.compiled[state]:
                if letter & pos != pos or letter & neg:
                    continue
                bumped = count + bump
                if bumped > bound:
                    return None
                if get(successor, -1) < bumped:
                    result[successor] = bumped
        return _freeze(result)

    def _explore(self) -> None:
        worklist = [self.initial]
        self.successors[self.initial] = {}
        while worklist:
            position = worklist.pop()
            table = self.successors[position]
            for sigma_mask in self.input_masks:
                row: Dict[int, Optional[CountingFunction]] = {}
                for out_mask in self.output_masks:
                    self.letters_enumerated += 1
                    successor = self._update_mask(position, sigma_mask | out_mask)
                    row[out_mask] = successor
                    if successor is not None and successor not in self.successors:
                        if len(self.successors) >= self.max_positions:
                            raise StateSpaceLimit(
                                f"safety game exceeded {self.max_positions} positions"
                            )
                        self.successors[successor] = {}
                        worklist.append(successor)
                table[sigma_mask] = row

    # ------------------------------------------------------------------ solve
    def solve(self) -> SafetyGameResult:
        self._explore()
        losing: Set[CountingFunction] = set()
        changed = True
        while changed:
            changed = False
            for position, table in self.successors.items():
                if position in losing:
                    continue
                if self._is_losing(table, losing):
                    losing.add(position)
                    changed = True
        explored = len(self.successors)
        stats = {
            "positions": explored,
            "letters_enumerated": self.letters_enumerated,
            "input_letters": len(self.input_letters),
            "output_letters": len(self.output_letters),
            "support_propositions": self.support_size,
            "alphabet_propositions": len(self.bit_of),
        }
        if self.initial in losing:
            return SafetyGameResult(False, None, self.bound, explored, stats)
        machine = self._extract(losing)
        return SafetyGameResult(True, machine, self.bound, explored, stats)

    def _is_losing(
        self,
        table: Dict[int, Dict[int, Optional[CountingFunction]]],
        losing: Set[CountingFunction],
    ) -> bool:
        for row in table.values():
            if all(
                successor is None or successor in losing
                for successor in row.values()
            ):
                return True
        return False

    def _extract(self, losing: Set[CountingFunction]) -> MealyMachine:
        """Deterministic strategy over the winning region.

        The machine is total over the full *concrete* input alphabet: each
        concrete input letter is projected onto the enumerated support to
        find its row.  The chosen output letter is the first safe one in
        ``all_letters`` order; don't-care outputs stay off, which is also
        what the first safe letter of the concrete enumeration looks like —
        so both exploration modes extract the identical machine.
        """
        order: Dict[CountingFunction, int] = {self.initial: 0}
        machine = MealyMachine(
            inputs=self.inputs, outputs=self.outputs, num_states=0
        )
        worklist = [self.initial]
        transitions: List[Tuple[int, Letter, CountingFunction, Letter]] = []
        concrete_inputs = [
            (sigma, self._mask(sigma) & self.row_input_mask)
            for sigma in all_letters(self.inputs)
        ]
        while worklist:
            position = worklist.pop()
            source = order[position]
            table = self.successors[position]
            for sigma, sigma_row_mask in concrete_inputs:
                row = table[sigma_row_mask]
                chosen: Optional[Tuple[Letter, CountingFunction]] = None
                for out, out_mask in zip(self.output_letters, self.output_masks):
                    successor = row[out_mask]
                    if successor is not None and successor not in losing:
                        chosen = (out, successor)
                        break
                assert chosen is not None, "winning position must have a move"
                out, successor = chosen
                if successor not in order:
                    order[successor] = len(order)
                    worklist.append(successor)
                transitions.append((source, sigma, successor, out))
        machine.num_states = len(order)
        for source, sigma, successor, out in transitions:
            machine.add_transition(source, sigma, order[successor], out)
        return machine


def _freeze(mapping: Dict[int, int]) -> CountingFunction:
    return tuple(sorted(mapping.items()))
