"""Variable-partitioned compositional checking.

Industrial specifications are conjunctions of many requirements, most of
which touch only a few propositions.  Two requirements that share no
proposition cannot interact, so the conjunction is realizable iff every
*variable-connected component* is realizable — each component gets its own
controller and the controllers run side by side.  This keeps the alphabet
of each synthesis call small, which is what makes explicit-letter engines
tractable (the same observation underlies G4LTL's performance on the
paper's Table I specifications).

Soundness: components share no variables at all, in particular no outputs,
so the parallel composition of per-component controllers is well-defined;
inputs not constrained by any component are ignored.  Completeness: a
counterstrategy for one component is a counterstrategy for the whole
conjunction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..logic.ast import Formula, atoms


@dataclass(frozen=True)
class Component:
    """A variable-connected group of requirements."""

    indices: Tuple[int, ...]  # positions in the original formula list
    formulas: Tuple[Formula, ...]
    variables: FrozenSet[str]


def decompose(formulas: Sequence[Formula]) -> List[Component]:
    """Group *formulas* into variable-connected components (union-find)."""
    parent = list(range(len(formulas)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[ry] = rx

    owner: Dict[str, int] = {}
    variable_sets = [atoms(formula) for formula in formulas]
    for index, names in enumerate(variable_sets):
        for name in names:
            if name in owner:
                union(owner[name], index)
            else:
                owner[name] = index

    grouped: Dict[int, List[int]] = {}
    for index in range(len(formulas)):
        grouped.setdefault(find(index), []).append(index)

    components = []
    for indices in sorted(grouped.values()):
        variables: Set[str] = set()
        for index in indices:
            variables |= variable_sets[index]
        components.append(
            Component(
                tuple(indices),
                tuple(formulas[index] for index in indices),
                frozenset(variables),
            )
        )
    return components
