"""The realizability driver: SpecCC's stage 2.

Combines satisfiability pre-checking, variable-partitioned decomposition,
the safety-game engine (realizable verdicts, G4LTL-style) and dual bounded
synthesis (unrealizable verdicts) into a single entry point,
:func:`check_realizability`.  Every produced controller is re-verified
against its component's specification by the independent model checker in
:mod:`repro.synthesis.verify` before it is returned.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..automata import gpvw
from ..core.graph import shared_graph
from ..obs.trace import span as _obs_span
from ..automata.ltlsat import satisfiable
from ..logic.ast import Formula, conj
from ..logic.semantics import LassoWord
from .bounded import IncrementalBoundedSynthesizer
from .mealy import MealyMachine
from .modular import Component, decompose
from .safety_game import StateSpaceLimit, solve as solve_game
from .verify import satisfies_specification


class Verdict(enum.Enum):
    REALIZABLE = "realizable"
    UNREALIZABLE = "unrealizable"
    UNKNOWN = "unknown"


class Engine(enum.Enum):
    """Which algorithm attempts the constructive (system) direction."""

    SAFETY_GAME = "game"  # G4LTL's k-co-Büchi reduction
    BOUNDED_SAT = "bounded"  # Finkbeiner-Schewe SAT encoding


@dataclass
class ComponentResult:
    """Realizability outcome for one variable-connected component."""

    component: Component
    verdict: Verdict
    controller: Optional[MealyMachine] = None
    counterstrategy: Optional[MealyMachine] = None
    unsat_witness: bool = False
    method: str = ""  # which engine decided: obligations / game / bounded / ...
    seconds: float = 0.0


@dataclass
class RealizabilityResult:
    """Aggregated outcome for a whole specification."""

    verdict: Verdict
    components: List[ComponentResult] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def controllers(self) -> List[MealyMachine]:
        return [
            part.controller
            for part in self.components
            if part.controller is not None
        ]

    def failing_indices(self) -> Tuple[int, ...]:
        """Requirement indices of non-realizable components."""
        indices: List[int] = []
        for part in self.components:
            if part.verdict is not Verdict.REALIZABLE:
                indices.extend(part.component.indices)
        return tuple(indices)


@dataclass(frozen=True)
class SynthesisLimits:
    """Search budgets for the semi-decision procedures."""

    max_system_states: int = 3
    max_environment_states: int = 3
    max_game_bound: int = 3
    max_game_positions: int = 200_000
    verify_controllers: bool = True
    #: Try the obligation-based certificate (fast, alphabet-independent)
    #: before the exact engines.
    use_obligations: bool = True
    #: Components with more propositions than this skip the explicit
    #: engines (their alphabets are out of reach) and the satisfiability
    #: pre-check (tableau blow-up); the obligation check still applies.
    max_explicit_variables: int = 12
    #: The satisfiability pre-check builds one tableau for the whole
    #: conjunction, which blows up combinatorially past a handful of
    #: liveness requirements; cap the number of formulas it sees.
    max_precheck_formulas: int = 6
    #: Letter-enumeration scheme of the safety game: ``"partial"``
    #: (support-projected letters) or ``"concrete"`` (the full
    #: ``2^|I| * 2^|O|`` reference, used by equivalence tests/benchmarks).
    game_exploration: str = "partial"
    #: Attractor scheme of the safety game: ``"onthefly"`` (interleaved
    #: with exploration, early abort once the initial position is losing)
    #: or ``"offline"`` (full exploration + post-hoc fixpoint reference).
    game_solving: str = "onthefly"
    #: SAT encoding of the bounded-synthesis bound ladder:
    #: ``"incremental"`` (one persistent solver per component/direction,
    #: learnt clauses survive bound growth) or ``"fresh"`` (a new solver
    #: per attempt, the differential reference).
    encoding: str = "incremental"


class _ComponentOutcome(NamedTuple):
    """The partition-independent part of a component analysis."""

    verdict: "Verdict"
    controller: Optional[MealyMachine]
    counterstrategy: Optional[MealyMachine]
    unsat_witness: bool
    method: str


# Component-outcome cache: a component's analysis is a pure function of its
# formulas, its *local* input/output split, the engine and the limits — not
# of the global partition.  The partition-repair loop in core/pipeline.py
# and the subset-growth localization checker therefore rehit this cache for
# every component the current repair/growth step did not actually change,
# and the per-formula Büchi automata behind it (gpvw/ltlsat caches) are
# never rebuilt.  The cache lives on the process-wide analysis graph
# (:func:`repro.core.graph.shared_graph`, stage ``"components"`` — a
# bounded, thread-safe LRU) so sessions, batch threads and pool workers
# all read the same nodes and the same hit/miss counters.
_ComponentKey = Tuple[
    Tuple[Formula, ...], Tuple[str, ...], Tuple[str, ...], "Engine", "SynthesisLimits"
]

# Engine-work accumulators: how much the SAT solver and the safety game
# actually did since the last clear_caches().  Cached component outcomes
# add nothing here — the counters measure work performed, which is exactly
# what the synthesis benchmarks want to assert shrank.  Guarded by their
# own lock so batch workers can record concurrently.
_stats_lock = threading.Lock()


def _zero_synthesis_stats() -> Dict[str, int]:
    return {
        "game_solves": 0,
        "game_positions": 0,
        "game_letters": 0,
        "sat_solves": 0,
        "sat_propagations": 0,
        "sat_conflicts": 0,
        "sat_decisions": 0,
        "sat_restarts": 0,
        "sat_clause_visits": 0,
        "game_positions_pruned": 0,
        "sat_incremental_solves": 0,
        "sat_learnt_carried": 0,
    }


_synthesis_stats: Dict[str, int] = _zero_synthesis_stats()


def _record_game(stats: Dict[str, int]) -> None:
    with _stats_lock:
        _synthesis_stats["game_solves"] += 1
        _synthesis_stats["game_positions"] += stats.get("positions", 0)
        _synthesis_stats["game_letters"] += stats.get("letters_enumerated", 0)
        _synthesis_stats["game_positions_pruned"] += stats.get("positions_pruned", 0)


def _record_sat(stats: Dict[str, int]) -> None:
    with _stats_lock:
        _synthesis_stats["sat_solves"] += 1
        _synthesis_stats["sat_propagations"] += stats.get("propagations", 0)
        _synthesis_stats["sat_conflicts"] += stats.get("conflicts", 0)
        _synthesis_stats["sat_decisions"] += stats.get("decisions", 0)
        _synthesis_stats["sat_restarts"] += stats.get("restarts", 0)
        _synthesis_stats["sat_clause_visits"] += stats.get("clause_visits", 0)
        _synthesis_stats["sat_incremental_solves"] += stats.get("incremental_solves", 0)
        _synthesis_stats["sat_learnt_carried"] += stats.get("learnt_carried", 0)


def synthesis_stats() -> Dict[str, int]:
    """Aggregated engine-work counters since the last :func:`clear_caches`.

    ``game_*`` counts safety-game exploration (positions, enumerated
    letters, counting-function updates); ``sat_*`` counts CDCL work across
    every bounded-synthesis solve (propagations, conflicts, restarts and
    the clause visits the watcher lists exist to minimise).
    """
    with _stats_lock:
        return dict(_synthesis_stats)


class CacheInfo(NamedTuple):
    """Component-outcome cache statistics.

    The first two fields keep the historical ``(size, capacity)`` tuple
    shape; ``hits``/``misses`` count lookups since the last
    :func:`clear_caches` and let callers (sessions, benchmarks, tests)
    assert reuse instead of guessing from timings.
    """

    size: int
    capacity: int
    hits: int
    misses: int


def reset_synthesis_stats() -> None:
    """Zero the engine-work accumulators without touching any cache.

    Part of the single observability reset
    (:func:`repro.obs.metrics.reset_counters`); callers wanting *all*
    counter surfaces zeroed together should use that instead.
    """
    with _stats_lock:
        _synthesis_stats.clear()
        _synthesis_stats.update(_zero_synthesis_stats())


def clear_caches() -> None:
    """Reset every formula-level cache behind the realizability stack.

    Clears the shared analysis graph (component outcomes *and* the
    Algorithm 1 semantics memo) and the GPVW translation cache, then
    routes every counter surface through the one observability reset
    (:func:`repro.obs.metrics.reset_counters`) so the graph stage
    counters and the engine accumulators can never zero on divergent
    paths.  Benchmarks use this to measure cold paths; ordinary callers
    never need it — all caches are keyed by interned formulas / content
    signatures and semantically transparent.
    """
    from ..obs.metrics import reset_counters

    shared_graph().clear()
    gpvw.clear_translation_cache()
    reset_counters()


def component_cache_info() -> CacheInfo:
    """Size/capacity/hit/miss statistics of the component-outcome cache."""
    stats = shared_graph().stats()["components"]
    return CacheInfo(stats.size, stats.capacity, stats.hits, stats.misses)


def cache_snapshot() -> dict:
    """One picklable snapshot of every cache/work counter in this process.

    Plain dicts of ints only — worker-pool processes ship these back to
    the parent over the pipe, and the parent diffs two snapshots to
    attribute hits/misses to one task.  The shape is exactly what
    :meth:`repro.SpecCC.cache_stats` returns.
    """
    from ..automata.gpvw import translation_cache_size
    from ..logic.ast import interned_count

    shared = shared_graph().snapshot()
    info = shared["components"]
    return {
        "component_cache": {
            "size": info["size"],
            "capacity": info["capacity"],
            "hits": info["hits"],
            "misses": info["misses"],
        },
        "semantics": shared["semantics"],
        "automaton_cache": {"size": translation_cache_size()},
        "interned_nodes": interned_count(),
        "synthesis": synthesis_stats(),
    }


def check_realizability(
    formulas: Sequence[Formula],
    inputs: Sequence[str],
    outputs: Sequence[str],
    engine: Engine = Engine.SAFETY_GAME,
    limits: SynthesisLimits = SynthesisLimits(),
    modular: bool = True,
) -> RealizabilityResult:
    """Decide (semi-) realizability of the conjunction of *formulas*.

    Inputs/outputs are global; each component only sees its own support.
    """
    start = time.perf_counter()
    formulas = list(formulas)
    if not formulas:
        return RealizabilityResult(Verdict.REALIZABLE, [], 0.0)
    if modular:
        components = decompose(formulas)
    else:
        names = frozenset(name for f in formulas for name in _atoms(f))
        components = [
            Component(tuple(range(len(formulas))), tuple(formulas), names)
        ]
    input_set = frozenset(inputs)
    output_set = frozenset(outputs)
    results = [
        check_component(component, input_set, output_set, engine, limits)
        for component in components
    ]
    overall = aggregate_verdict(result.verdict for result in results)
    return RealizabilityResult(overall, results, time.perf_counter() - start)


def aggregate_verdict(verdicts) -> Verdict:
    """Combine per-component verdicts into the specification verdict.

    Realizable iff every component is; a single unrealizable component
    refutes the conjunction; otherwise the engines could not decide.
    """
    verdicts = list(verdicts)
    if all(v is Verdict.REALIZABLE for v in verdicts):
        return Verdict.REALIZABLE
    if any(v is Verdict.UNREALIZABLE for v in verdicts):
        return Verdict.UNREALIZABLE
    return Verdict.UNKNOWN


def _atoms(formula: Formula):
    from ..logic.ast import atoms

    return atoms(formula)


def check_component(
    component: Component,
    input_set: frozenset,
    output_set: frozenset,
    engine: Engine = Engine.SAFETY_GAME,
    limits: SynthesisLimits = SynthesisLimits(),
) -> ComponentResult:
    """Check one variable-connected component against a global partition.

    Components are the individually checkable unit of the whole stack: the
    analysis depends only on the component's formulas and its *local* I/O
    split, so outcomes are served from the process-wide LRU whenever the
    same component reappears — across repair iterations, localization
    subsets, session edits, and concurrent batch workers alike.  Safe to
    call from multiple threads.
    """
    start = time.perf_counter()
    local_inputs = tuple(sorted(component.variables & input_set))
    local_outputs = tuple(sorted(component.variables & output_set))
    key: _ComponentKey = (
        component.formulas, local_inputs, local_outputs, engine, limits
    )
    with _obs_span(
        "solve.component",
        formulas=len(component.formulas),
        inputs=len(local_inputs),
        outputs=len(local_outputs),
    ) as sp:
        if sp.id is not None:  # only probe membership when actually tracing
            sp.set(cached=shared_graph().contains("components", key))
        outcome = shared_graph().compute(
            "components",
            key,
            lambda: _analyze_component(
                component.formulas, local_inputs, local_outputs, engine, limits
            ),
        )
        sp.set(verdict=outcome.verdict.value, method=outcome.method)
    return ComponentResult(
        component,
        outcome.verdict,
        controller=outcome.controller,
        counterstrategy=outcome.counterstrategy,
        unsat_witness=outcome.unsat_witness,
        method=outcome.method,
        seconds=time.perf_counter() - start,
    )


def _analyze_component(
    formulas: Tuple[Formula, ...],
    local_inputs: Tuple[str, ...],
    local_outputs: Tuple[str, ...],
    engine: Engine,
    limits: SynthesisLimits,
) -> _ComponentOutcome:
    specification = conj(formulas)
    # The component's variable set is a function of its formulas (union of
    # their atoms), so it is safe to derive under the cache key.
    explicit_ok = len(_atoms(specification)) <= limits.max_explicit_variables
    precheck_ok = explicit_ok and len(formulas) <= limits.max_precheck_formulas

    # Cheap first stage: an unsatisfiable conjunction is never realizable.
    # (Skipped for large components: the tableau would blow up.)
    if precheck_ok and satisfiable(specification) is None:
        return _ComponentOutcome(
            Verdict.UNREALIZABLE, None, None, True, "satisfiability"
        )

    # A component without outputs is realizable iff the environment cannot
    # violate it, i.e. the formula is valid over input behaviours.
    if not local_outputs and precheck_ok:
        from ..automata.ltlsat import is_valid

        verdict = Verdict.REALIZABLE if is_valid(specification) else Verdict.UNREALIZABLE
        return _ComponentOutcome(verdict, None, None, False, "validity")

    # Obligation certificate: alphabet-independent, decides the
    # condition/response fragment that covers the case studies.
    if limits.use_obligations:
        from .invariants import ObligationOutcome, check_obligations

        certificate = check_obligations(formulas, local_outputs)
        if certificate.outcome is ObligationOutcome.REALIZABLE:
            return _ComponentOutcome(
                Verdict.REALIZABLE, None, None, False, "obligations"
            )

    if not explicit_ok:
        return _ComponentOutcome(Verdict.UNKNOWN, None, None, False, "too-large")

    controller: Optional[MealyMachine] = None
    counterstrategy: Optional[MealyMachine] = None
    verdict = Verdict.UNKNOWN

    # Dual (environment) synthesis enumerates the *output* alphabet as the
    # adversary; it is only tractable for small output supports.
    dual_ok = len(local_outputs) <= 8

    # One persistent synthesizer per direction: the bound-growth loops
    # below only ever grow num_states, so in the default "incremental"
    # encoding every attempt after the first reuses the learnt clauses,
    # activity and phases of the previous one (see synthesis.bounded).
    # Built lazily — a component settled without the dual never pays for
    # translating the positive specification.
    _env_synth: List[IncrementalBoundedSynthesizer] = []

    def environment_synth() -> IncrementalBoundedSynthesizer:
        if not _env_synth:
            _env_synth.append(
                IncrementalBoundedSynthesizer.for_environment(
                    specification, local_inputs, local_outputs,
                    encoding=limits.encoding,
                )
            )
        return _env_synth[0]

    if engine is Engine.SAFETY_GAME:
        for bound in range(1, limits.max_game_bound + 1):
            with _obs_span("solve.game", bound=bound) as sp:
                try:
                    outcome = solve_game(
                        specification,
                        local_inputs,
                        local_outputs,
                        bound=bound,
                        max_positions=limits.max_game_positions,
                        exploration=limits.game_exploration,
                        solving=limits.game_solving,
                    )
                except StateSpaceLimit:
                    sp.set(limit="positions")
                    break
                _record_game(outcome.stats)
                sp.set(realizable=outcome.realizable, **outcome.stats)
            if outcome.realizable:
                controller = outcome.machine
                verdict = Verdict.REALIZABLE
                break
            # Not winnable at this bound: consult the dual before growing k.
            if dual_ok:
                with _obs_span(
                    "solve.bounded", direction="environment", states=bound
                ) as sp:
                    dual = environment_synth().solve(num_states=bound)
                    _record_sat(dual.solver_stats)
                    sp.set(realizable=dual.realizable, **dual.solver_stats)
                if dual.realizable:
                    counterstrategy = dual.machine
                    verdict = Verdict.UNREALIZABLE
                    break
    else:
        system_synth = IncrementalBoundedSynthesizer.for_system(
            specification, local_inputs, local_outputs, encoding=limits.encoding
        )
        for size in range(1, max(limits.max_system_states, limits.max_environment_states) + 1):
            if size <= limits.max_system_states:
                with _obs_span(
                    "solve.bounded", direction="system", states=size
                ) as sp:
                    attempt = system_synth.solve(num_states=size)
                    _record_sat(attempt.solver_stats)
                    sp.set(realizable=attempt.realizable, **attempt.solver_stats)
                if attempt.realizable:
                    controller = attempt.machine
                    verdict = Verdict.REALIZABLE
                    break
            if size <= limits.max_environment_states and dual_ok:
                with _obs_span(
                    "solve.bounded", direction="environment", states=size
                ) as sp:
                    dual = environment_synth().solve(num_states=size)
                    _record_sat(dual.solver_stats)
                    sp.set(realizable=dual.realizable, **dual.solver_stats)
                if dual.realizable:
                    counterstrategy = dual.machine
                    verdict = Verdict.UNREALIZABLE
                    break

    if (
        controller is not None
        and limits.verify_controllers
        and not satisfies_specification(controller, specification)
    ):
        raise AssertionError(
            "synthesized controller failed independent verification — "
            "this indicates an engine bug, please report it"
        )
    return _ComponentOutcome(
        verdict,
        controller,
        counterstrategy,
        False,
        "game" if engine is Engine.SAFETY_GAME else "bounded",
    )
