"""Stage 2 of SpecCC: LTL realizability checking (the G4LTL substitute).

Two engines — a k-co-Büchi safety-game reduction (G4LTL's algorithm) and
SAT-based bounded synthesis (Finkbeiner-Schewe) — plus variable-partitioned
modular decomposition, controller verification and inconsistency
localization.
"""

from .bounded import (
    BoundedSynthesisResult,
    IncrementalBoundedSynthesizer,
    synthesize,
    synthesize_environment,
)
from .localization import LocalizationResult, default_checker, localize
from .mealy import Letter, MealyMachine, all_letters
from .modular import Component, decompose
from .realizability import (
    ComponentResult,
    Engine,
    RealizabilityResult,
    SynthesisLimits,
    Verdict,
    check_realizability,
    synthesis_stats,
)
from .safety_game import SafetyGameResult, StateSpaceLimit, solve_automaton
from .safety_game import solve as solve_safety_game
from .verify import satisfies_specification, violation_witness

__all__ = [
    "BoundedSynthesisResult",
    "Component",
    "ComponentResult",
    "Engine",
    "IncrementalBoundedSynthesizer",
    "Letter",
    "LocalizationResult",
    "MealyMachine",
    "RealizabilityResult",
    "SafetyGameResult",
    "StateSpaceLimit",
    "SynthesisLimits",
    "Verdict",
    "all_letters",
    "check_realizability",
    "decompose",
    "default_checker",
    "localize",
    "satisfies_specification",
    "solve_automaton",
    "solve_safety_game",
    "synthesis_stats",
    "synthesize",
    "synthesize_environment",
    "violation_witness",
]
