"""Independent verification of synthesized controllers.

A Mealy machine satisfies a specification iff no behaviour it can exhibit
(over any input sequence) violates the formula, i.e. the product of the
machine's computation graph with the Büchi automaton of the *negated*
specification is empty.  The synthesis engines never certify their own
output: every controller in the test suite goes through this checker.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..logic.ast import Formula, Not
from ..logic.semantics import LassoWord
from ..automata.buchi import BuchiAutomaton, Label
from ..automata.emptiness import Witness, find_witness
from ..automata.gpvw import translate
from .mealy import MealyMachine, all_letters


def violation_witness(
    machine: MealyMachine, specification: Formula
) -> Optional[LassoWord]:
    """An input/output trace of *machine* violating *specification*, if any.

    Returns ``None`` when the controller is correct.
    """
    negated = translate(Not(specification))
    product = BuchiAutomaton(atoms=negated.atoms)
    index: Dict[Tuple[int, int], int] = {}

    def state_for(machine_state: int, automaton_state: int) -> int:
        key = (machine_state, automaton_state)
        if key not in index:
            index[key] = product.new_state(f"m{machine_state}&a{automaton_state}")
        return index[key]

    letters = all_letters(machine.inputs)
    worklist = []
    for initial in negated.initial:
        product.initial.add(state_for(machine.initial, initial))
        worklist.append((machine.initial, initial))
    seen = set(worklist)
    while worklist:
        machine_state, automaton_state = worklist.pop()
        src = index[(machine_state, automaton_state)]
        for input_letter in letters:
            successor, output = machine.step(machine_state, input_letter)
            combined = input_letter | output
            for label, dst in negated.successors(automaton_state):
                if not label.matches(combined):
                    continue
                product.add_transition(
                    src,
                    Label(frozenset(combined), frozenset()),
                    state_for(successor, dst),
                )
                if (successor, dst) not in seen:
                    seen.add((successor, dst))
                    worklist.append((successor, dst))

    product.accepting_sets = [
        {
            index[(m, a)]
            for (m, a) in index
            if a in accepting
        }
        for accepting in negated.accepting_sets
    ]
    witness = find_witness(product)
    if witness is None:
        return None
    return witness.word


def satisfies_specification(machine: MealyMachine, specification: Formula) -> bool:
    """True when every behaviour of *machine* satisfies *specification*."""
    return violation_witness(machine, specification) is None
