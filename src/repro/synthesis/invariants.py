"""Obligation-based realizability for requirement-shaped specifications.

Industrial requirement sets — including all three of the paper's case
studies — consist almost exclusively of *condition/response* formulas:

* ``G (cond -> resp)``            invariants (possibly with ``X`` delays),
* ``G (cond -> F resp)``          triggered progress,
* ``F resp``                      plain existence,
* ``G (cond -> (!r -> resp W r))``  hold-until-release (Req-49),

where conditions are propositional over anything and responses are
propositional constraints over *output* variables.  For this fragment a
*sound* certificate check exists:

    if for every subset of simultaneously-active conditions the system can
    pick one output letter satisfying all activated responses at once,
    then the specification is realizable —

a controller simply tracks which obligations are pending (delays,
until-releases and eventually-goals included) and discharges all of them
every step.  Conditions are abstracted to independent adversary flags, so
the check quantifies over ``2^m`` flag vectors; a CEGIS loop decides it
with a handful of SAT calls, independent of the number of input variables
— which is what lets SpecCC handle the paper's 50-variable CARA
mode-switching specification that explicit-alphabet engines cannot touch.

Soundness notes:

* a flag vector is *harder* for the system than the real condition
  semantics (real conditions may be correlated), so REALIZABLE answers are
  definitive; INCONCLUSIVE sends the caller to the exact engines;
* *anti-causal* obligations — condition strictly later than response, e.g.
  Req-28's ``G (X X X !bp -> trigger)`` — are treated as permanently
  active, because the controller cannot observe the future: it must hold
  the response unconditionally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..logic.ast import (
    And,
    Atom,
    Bool,
    Finally,
    Formula,
    Globally,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    WeakUntil,
    atoms,
    next_depth,
)
from ..sat.cdcl import CDCLSolver
from ..sat.cnf import CNF
from ..sat.tseitin import encode


_GOAL_DELAY = 10**9  # sentinel delay for Eventually responses


class ObligationOutcome(enum.Enum):
    REALIZABLE = "realizable"
    INCONCLUSIVE = "inconclusive"  # joint discharge failed at some vector
    NOT_APPLICABLE = "not-applicable"  # formulas outside the fragment


@dataclass(frozen=True)
class Obligation:
    """One condition/response pair extracted from a requirement."""

    condition_inputs: FrozenSet[str]  # informational, for reports
    response: Formula  # propositional, over outputs only
    always_active: bool = False  # anti-causal: cannot wait for the flag
    #: Eventually-goals have no deadline: the controller may serve them one
    #: at a time (round-robin), so they are checked individually against
    #: the invariants instead of jointly with each other.
    is_goal: bool = False
    #: A same-step condition entirely over outputs (e.g. the robot mutex
    #: "G (in_room_1_robot_1 -> !in_room_1_robot_2)").  The system controls
    #: both sides, so instead of an adversarial flag the whole implication
    #: constrains every responder letter directly.
    self_condition: Optional[Formula] = None


@dataclass(frozen=True)
class ObligationCheckResult:
    outcome: ObligationOutcome
    obligations: Tuple[Obligation, ...] = ()
    cegis_iterations: int = 0
    #: Indices of jointly-undischargeable obligations (when inconclusive).
    conflict: Optional[Tuple[int, ...]] = None


# ---------------------------------------------------------------------------
# Fragment recognition


def extract_obligations(
    formula: Formula, outputs: FrozenSet[str]
) -> Optional[List[Obligation]]:
    """Decompose one requirement, or ``None`` if outside the fragment."""
    delay = 0
    while isinstance(formula, Next):
        delay += 1
        formula = formula.operand
    if isinstance(formula, Globally):
        return _from_body(formula.operand, outputs, frozenset(), 0)
    if isinstance(formula, Finally):
        return _terminal(formula.operand, outputs, frozenset(), 0, _GOAL_DELAY)
    if _is_propositional(formula):
        return _terminal(formula, outputs, frozenset(), 0, delay)
    return None


def _from_body(
    body: Formula,
    outputs: FrozenSet[str],
    inputs: FrozenSet[str],
    condition_delay: int,
) -> Optional[List[Obligation]]:
    """Handle the (possibly nested) implication body of an invariant."""
    if isinstance(body, Globally):
        return _from_body(body.operand, outputs, inputs, condition_delay)
    if isinstance(body, Implies):
        condition, response = body.left, body.right
        if not _is_propositional(_strip_all_next(condition)):
            return None
        combined = inputs | (atoms(condition) - outputs)
        depth = max(condition_delay, next_depth(condition))
        extracted = _terminal(response, outputs, combined, depth, 0)
        if (
            extracted is not None
            and len(extracted) == 1
            and not extracted[0].is_goal
            and not inputs
            and depth == 0
            and atoms(condition) <= outputs
            and _is_propositional(condition)
        ):
            obligation = extracted[0]
            return [
                Obligation(
                    obligation.condition_inputs,
                    obligation.response,
                    always_active=obligation.always_active,
                    self_condition=condition,
                )
            ]
        return extracted
    return _terminal(body, outputs, inputs, condition_delay, 0)


def _terminal(
    response: Formula,
    outputs: FrozenSet[str],
    inputs: FrozenSet[str],
    condition_delay: int,
    response_delay: int,
) -> Optional[List[Obligation]]:
    while isinstance(response, Next):
        response_delay += 1
        response = response.operand
    if isinstance(response, Finally):
        # Eventually: the controller may discharge at any later step.
        return _terminal(response.operand, outputs, inputs, condition_delay, _GOAL_DELAY)
    if isinstance(response, Globally) or isinstance(response, Implies):
        nested = _from_body(response, outputs, inputs, condition_delay)
        return nested
    if isinstance(response, WeakUntil):
        # resp W release: obliged to hold resp until released — holding it
        # forever is sufficient, so the obligation is resp itself.
        return _terminal(response.left, outputs, inputs, condition_delay, response_delay)
    if not _is_propositional(response):
        return None
    response = _strip_all_next(response)
    if not atoms(response) <= outputs:
        return None  # the environment could falsify the response
    is_goal = response_delay >= _GOAL_DELAY
    anti_causal = (not is_goal) and condition_delay > response_delay
    return [Obligation(inputs, response, always_active=anti_causal, is_goal=is_goal)]


def _is_propositional(formula: Formula) -> bool:
    if isinstance(formula, (Atom, Bool)):
        return True
    if isinstance(formula, (Not, And, Or, Implies, Iff)):
        return all(_is_propositional(child) for child in formula.children())
    return False


def _strip_all_next(formula: Formula) -> Formula:
    if isinstance(formula, Next):
        return _strip_all_next(formula.operand)
    if not formula.children():
        return formula
    return type(formula)(*[_strip_all_next(child) for child in formula.children()])


# ---------------------------------------------------------------------------
# The CEGIS joint-dischargeability check


def _evaluate(formula: Formula, letter: Dict[str, bool]) -> bool:
    if isinstance(formula, Bool):
        return formula.value
    if isinstance(formula, Atom):
        return letter.get(formula.name, False)
    if isinstance(formula, Not):
        return not _evaluate(formula.operand, letter)
    if isinstance(formula, And):
        return _evaluate(formula.left, letter) and _evaluate(formula.right, letter)
    if isinstance(formula, Or):
        return _evaluate(formula.left, letter) or _evaluate(formula.right, letter)
    if isinstance(formula, Implies):
        return (not _evaluate(formula.left, letter)) or _evaluate(formula.right, letter)
    if isinstance(formula, Iff):
        return _evaluate(formula.left, letter) == _evaluate(formula.right, letter)
    raise TypeError(f"not propositional: {formula!r}")


def check_obligations(
    formulas: Sequence[Formula],
    outputs: Sequence[str],
    max_iterations: int = 10_000,
) -> ObligationCheckResult:
    """The certificate check.

    Invariant obligations must be *jointly* dischargeable for every flag
    vector: ``forall flags exists letter: AND_j (flag_j -> resp_j)``.
    Eventually-goals carry no deadline, so the controller may serve them
    round-robin: each goal is checked *individually* on top of the
    invariants.  Both quantifications are decided by CEGIS: a *falsifier*
    proposes a flag vector not covered by any output letter found so far;
    a *responder* finds a letter discharging the activated responses; the
    letter's cover is blocked and the loop repeats.
    """
    output_set = frozenset(outputs)
    obligations: List[Obligation] = []
    for formula in formulas:
        extracted = extract_obligations(formula, output_set)
        if extracted is None:
            return ObligationCheckResult(ObligationOutcome.NOT_APPLICABLE)
        obligations.extend(extracted)
    if not obligations:
        return ObligationCheckResult(ObligationOutcome.REALIZABLE, ())

    invariants = [o for o in obligations if not o.is_goal]
    goals = [o for o in obligations if o.is_goal]

    total_iterations = 0
    outcome, iterations, conflict = _cegis(invariants, max_iterations)
    total_iterations += iterations
    if outcome is not ObligationOutcome.REALIZABLE:
        return ObligationCheckResult(
            outcome, tuple(obligations), total_iterations, conflict
        )
    for goal in goals:
        pinned = Obligation(
            goal.condition_inputs, goal.response, always_active=True
        )
        outcome, iterations, conflict = _cegis(
            invariants + [pinned], max_iterations
        )
        total_iterations += iterations
        if outcome is not ObligationOutcome.REALIZABLE:
            return ObligationCheckResult(
                outcome, tuple(obligations), total_iterations, conflict
            )
    return ObligationCheckResult(
        ObligationOutcome.REALIZABLE, tuple(obligations), total_iterations
    )


def _constraint_of(obligation: Obligation) -> Formula:
    """What the responder letter must satisfy for this obligation."""
    if obligation.self_condition is not None:
        return Implies(obligation.self_condition, obligation.response)
    return obligation.response


def _cegis(
    obligations: List[Obligation], max_iterations: int
) -> Tuple[ObligationOutcome, int, Optional[Tuple[int, ...]]]:
    """Decide ``forall flags exists letter: AND_j (flag_j -> resp_j)``.

    Self-conditioned obligations (condition over same-step outputs) are
    not flagged: their implication constrains every responder letter.
    """
    if not obligations:
        return ObligationOutcome.REALIZABLE, 0, None
    flagged = [
        j for j, o in enumerate(obligations) if o.self_condition is None
    ]
    constrained = [
        j for j, o in enumerate(obligations) if o.self_condition is not None
    ]
    falsifier_cnf = CNF()
    flags = {j: falsifier_cnf.new_var(f"f{j}") for j in flagged}
    for j in flagged:
        if obligations[j].always_active:
            falsifier_cnf.add([flags[j]])
    falsifier = CDCLSolver(falsifier_cnf)

    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        vector = falsifier.solve()
        if not vector:
            return ObligationOutcome.REALIZABLE, iterations, None
        active = [j for j in flagged if vector.model[flags[j]]]

        responder_cnf = CNF()
        for j in active:
            responder_cnf.add([encode(obligations[j].response, responder_cnf)])
        for j in constrained:
            responder_cnf.add(
                [encode(_constraint_of(obligations[j]), responder_cnf)]
            )
        response = CDCLSolver(responder_cnf).solve()
        if not response:
            return (
                ObligationOutcome.INCONCLUSIVE,
                iterations,
                tuple(active) + tuple(constrained),
            )
        letter = {
            name: response.model[responder_cnf.var(name)]
            for name in responder_cnf._names
            if not name.startswith("__")
        }
        uncovered = [
            flags[j]
            for j in flagged
            if not _evaluate(obligations[j].response, letter)
        ]
        if not uncovered:
            return ObligationOutcome.REALIZABLE, iterations, None
        falsifier.add_clause(uncovered)
    return ObligationOutcome.INCONCLUSIVE, iterations, None
