"""Mealy machines: the controllers produced by LTL synthesis.

A Mealy machine reads one input letter (a set of input propositions) per
step and reacts with an output letter in the same step — the reactive
semantics G4LTL uses for PLC code generation.  Machines are total over the
declared input alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain, combinations
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

Letter = FrozenSet[str]


def all_letters(propositions: Sequence[str]) -> List[Letter]:
    """Every subset of *propositions*, smallest first, deterministic order."""
    ordered = sorted(propositions)
    subsets = chain.from_iterable(
        combinations(ordered, size) for size in range(len(ordered) + 1)
    )
    return [frozenset(subset) for subset in subsets]


@dataclass
class MealyMachine:
    """A deterministic, complete Mealy machine."""

    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    num_states: int
    initial: int = 0
    # (state, input letter) -> (successor, output letter)
    transitions: Dict[Tuple[int, Letter], Tuple[int, Letter]] = field(
        default_factory=dict
    )

    def add_transition(
        self, state: int, letter: Iterable[str], successor: int, output: Iterable[str]
    ) -> None:
        self.transitions[(state, frozenset(letter))] = (
            successor,
            frozenset(output),
        )

    def step(self, state: int, letter: Iterable[str]) -> Tuple[int, Letter]:
        key = (state, frozenset(letter) & frozenset(self.inputs))
        if key not in self.transitions:
            raise KeyError(f"machine is not total: missing {key}")
        return self.transitions[key]

    def run(self, word: Sequence[Iterable[str]]) -> List[Letter]:
        """Feed a finite input word; return the produced output letters."""
        state = self.initial
        produced: List[Letter] = []
        for letter in word:
            state, output = self.step(state, letter)
            produced.append(output)
        return produced

    def check_total(self) -> None:
        """Raise when some (state, letter) transition is missing."""
        for state in range(self.num_states):
            for letter in all_letters(self.inputs):
                if (state, letter) not in self.transitions:
                    raise ValueError(
                        f"missing transition from state {state} on {set(letter) or '{}'}"
                    )

    def reachable_states(self) -> FrozenSet[int]:
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            state = stack.pop()
            for letter in all_letters(self.inputs):
                successor, _ = self.transitions.get((state, letter), (None, None))
                if successor is not None and successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return frozenset(seen)

    def to_dot(self) -> str:
        """GraphViz rendering for documentation and debugging."""
        lines = ["digraph mealy {", "  rankdir=LR;", '  init [shape=point];']
        for state in sorted(self.reachable_states()):
            lines.append(f"  s{state} [shape=circle];")
        lines.append(f"  init -> s{self.initial};")
        for (state, letter), (successor, output) in sorted(
            self.transitions.items(), key=lambda kv: (kv[0][0], sorted(kv[0][1]))
        ):
            in_text = ",".join(sorted(letter)) or "-"
            out_text = ",".join(sorted(output)) or "-"
            lines.append(f'  s{state} -> s{successor} [label="{in_text}/{out_text}"];')
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        """Human-readable transition table."""
        lines = [
            f"Mealy machine: {self.num_states} states, "
            f"inputs={sorted(self.inputs)}, outputs={sorted(self.outputs)}"
        ]
        for (state, letter), (successor, output) in sorted(
            self.transitions.items(), key=lambda kv: (kv[0][0], sorted(kv[0][1]))
        ):
            in_text = "{" + ",".join(sorted(letter)) + "}"
            out_text = "{" + ",".join(sorted(output)) + "}"
            lines.append(f"  s{state} --{in_text}/{out_text}--> s{successor}")
        return "\n".join(lines)
