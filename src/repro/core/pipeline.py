"""SpecCC: the requirement-consistency maintenance framework (Figure 1).

The pipeline chains the three stages of the paper:

1. **Translation** — structured English requirements are parsed, reasoned
   over semantically (Algorithm 1), translated to LTL, time-abstracted
   (Section IV-E) and partitioned into inputs/outputs (Section IV-F).
2. **Realizability** — the conjunction is checked by LTL synthesis; success
   yields a controller per variable-connected component, i.e. the
   specification is consistent in the implementability sense.
3. **Heuristic refinement** — on failure, the inconsistent requirements are
   located by incremental subset growth, and the input/output partition is
   adjusted before re-analysis (Section V-B).

Stages 2-3 revisit the same formulas over and over: every partition-repair
iteration re-checks every component, and localization grows subsets one
requirement at a time.  The whole pipeline therefore runs on an
**incremental analysis graph** (:mod:`repro.core.graph`): parses,
vocabulary, Algorithm 1 components, raw formulas, theta rewrites and the
partition are per-document nodes keyed by content signatures, while
semantic-analysis components and realizability component outcomes live on
the process-wide shared graph — formulas are interned
(:mod:`repro.logic.ast`), so the realizability layer recognises repeats
and serves component verdicts and Büchi automata from its stage without
rebuilding anything a repair did not touch.  The caches are semantically
transparent; :meth:`SpecCC.clear_caches` resets the process-wide ones
(benchmarking, or bounding memory in long-lived services), while each
tool's per-document translation graph is bounded by retain-pruning and
cleared via :meth:`SpecCC.clear_translation_cache`.

:class:`SpecCC` is the façade a user interacts with; it returns a
:class:`ConsistencyReport` mirroring what the prototype tool prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..logic.ast import Formula
from ..nlp.antonyms import AntonymDictionary
from ..obs.trace import span as _obs_span
from ..smt.timeopt import Sign
from ..synthesis.localization import LocalizationResult, default_checker, localize
from ..synthesis.mealy import MealyMachine
from ..synthesis.realizability import (
    Engine,
    RealizabilityResult,
    SynthesisLimits,
    Verdict,
    check_realizability,
)
from ..translate.partition import Partition
from ..translate.timeabs import AbstractionMethod
from ..translate.translator import (
    SpecificationTranslation,
    TranslationOptions,
    Translator,
)

# --------------------------------------------------------- fault hook point
# Deterministic fault injection (repro.service.faults) needs a seam where
# "the pipeline raised mid-analysis" can be provoked on schedule.  The hook
# is process-global, None in ordinary operation, and installed only inside
# worker processes by their initializer; it receives the stage name
# ("check_translated" / "check_component") and may raise.
_FAULT_HOOK = None


def set_fault_hook(hook) -> None:
    """Install (or with ``None`` clear) the process-wide fault hook."""
    global _FAULT_HOOK
    _FAULT_HOOK = hook


def _fire_fault(stage: str) -> None:
    hook = _FAULT_HOOK
    if hook is not None:
        hook(stage)


@dataclass
class ConsistencyReport:
    """Everything SpecCC learned about one specification."""

    translation: SpecificationTranslation
    realizability: RealizabilityResult
    partition: Partition
    verdict: Verdict
    localization: Optional[LocalizationResult] = None
    repaired_partition: Optional[Partition] = None
    repair_attempts: int = 0
    seconds: float = 0.0

    @property
    def consistent(self) -> bool:
        return self.verdict is Verdict.REALIZABLE

    @property
    def controllers(self) -> List[MealyMachine]:
        return self.realizability.controllers

    def inconsistent_requirements(self) -> List[str]:
        """Identifiers of requirements implicated in the inconsistency."""
        if self.localization is None:
            return []
        return [
            self.translation.requirements[index].identifier
            for index in self.localization.core
        ]

    def summary(self) -> str:
        lines = [
            f"verdict: {self.verdict.value}",
            f"formulas: {len(self.translation.requirements)}",
            f"inputs({len(self.partition.inputs)}): {', '.join(sorted(self.partition.inputs))}",
            f"outputs({len(self.partition.outputs)}): {', '.join(sorted(self.partition.outputs))}",
            f"time: {self.seconds:.2f}s",
        ]
        if self.localization is not None:
            culprits = ", ".join(self.inconsistent_requirements())
            lines.append(f"inconsistent requirements: {culprits}")
        if self.repaired_partition is not None:
            lines.append(
                f"partition repaired after {self.repair_attempts} adjustment(s)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class SpecCCConfig:
    """All knobs of the pipeline in one place."""

    translation: TranslationOptions = TranslationOptions()
    abstraction: AbstractionMethod = AbstractionMethod.OPTIMAL
    error_bound: int = 5
    engine: Engine = Engine.SAFETY_GAME
    limits: SynthesisLimits = SynthesisLimits()
    modular: bool = True
    localize_on_failure: bool = True
    #: Try moving suspect inputs to outputs when synthesis fails
    #: (Section V-B, second bullet).  0 disables the repair loop.
    max_partition_repairs: int = 3


class SpecCC:
    """The Specification Consistency Checking tool."""

    def __init__(
        self,
        config: SpecCCConfig = SpecCCConfig(),
        dictionary: Optional[AntonymDictionary] = None,
        signs: Optional[Sequence[Sign]] = None,
    ) -> None:
        self.config = config
        self.translator = Translator(
            options=config.translation,
            dictionary=dictionary,
            abstraction=config.abstraction,
            error_bound=config.error_bound,
            signs=signs,
        )

    @staticmethod
    def clear_caches() -> None:
        """Reset the process-wide caches (shared graph, automata, engine
        counters).  Per-tool translation graphs are instance state — see
        :meth:`clear_translation_cache`."""
        from ..synthesis.realizability import clear_caches

        clear_caches()

    def clear_translation_cache(self) -> None:
        """Drop this tool's per-document translation graph (all stages)."""
        self.translator.cache().clear()

    @staticmethod
    def cache_stats() -> dict:
        """Observability into the process-wide caches.

        Returns component-outcome cache hits/misses and the Algorithm 1
        semantics-memo counters (both stages of the shared analysis
        graph, reset by :meth:`clear_caches`), the formula→automaton
        cache size, the live interned-node count and the
        synthesis-engine work counters (SAT propagations/conflicts/
        restarts/clause visits plus the incremental-solver reuse pair
        ``sat_incremental_solves``/``sat_learnt_carried``, safety-game
        positions/letter updates plus ``game_positions_pruned`` from the
        on-the-fly early abort),
        so sessions, benchmarks and tests can assert reuse and engine
        work instead of guessing from timings.  The returned value is
        plain picklable data — worker-pool processes ship it across the
        pipe unchanged.
        """
        from ..synthesis.realizability import cache_snapshot

        return cache_snapshot()

    def translation_cache_stats(self) -> dict:
        """Node counts of this tool's per-document translation graph."""
        return self.translator.cache().stats()

    #: Sentences the :meth:`prewarm` default workload runs: a
    #: condition/response pair sharing one component plus an antonym
    #: negation, which together touch the parser, the semantic analysis,
    #: time abstraction, partitioning, GPVW translation and both verdict
    #: directions of the realizability stack.
    PREWARM_SENTENCES: Tuple[str, ...] = (
        "If the sensor is active, the valve is opened.",
        "If the sensor is normal, the valve is not opened.",
    )

    def prewarm(self, sentences: Optional[Sequence[str]] = None) -> dict:
        """Warm a fresh process before it serves traffic.

        Worker-pool initializers call this once per spawned process: the
        first real request then pays neither the lazy imports (grammar
        tables, automata translation, synthesis engines) nor an entirely
        cold formula pool.  The workload is deliberately tiny — checking
        *sentences* (default :attr:`PREWARM_SENTENCES`) as one throwaway
        document — and its cache entries are semantically transparent,
        so prewarming can never change a later verdict.  Returns the
        post-warm :meth:`cache_stats` snapshot.
        """
        workload = list(sentences) if sentences is not None else list(
            self.PREWARM_SENTENCES
        )
        if workload:
            self.check(
                [(f"W{index}", text) for index, text in enumerate(workload, 1)]
            )
        return self.cache_stats()

    # ------------------------------------------------------------- pipeline
    def check(
        self, requirements: Sequence[Tuple[str, str]]
    ) -> ConsistencyReport:
        """Run the full loop on ``(identifier, sentence)`` requirements."""
        start = time.perf_counter()
        with _obs_span("check", requirements=len(requirements)) as sp:
            translation = self.translator.translate(requirements)
            report = self.check_translated(translation)
            sp.set(verdict=report.verdict.value)
        report.seconds = time.perf_counter() - start
        return report

    def check_document(self, document: str) -> ConsistencyReport:
        start = time.perf_counter()
        with _obs_span("check", bytes=len(document)) as sp:
            translation = self.translator.translate_document(document)
            report = self.check_translated(translation)
            sp.set(verdict=report.verdict.value)
        report.seconds = time.perf_counter() - start
        return report

    def check_translated(
        self, translation: SpecificationTranslation
    ) -> ConsistencyReport:
        """Stages 2-3 on an already-translated specification."""
        _fire_fault("check_translated")
        start = time.perf_counter()
        formulas = list(translation.formulas)
        partition = translation.partition
        with _obs_span("pipeline.realizability", formulas=len(formulas)) as sp:
            result = self._realizability(formulas, partition)
            sp.set(verdict=result.verdict.value, components=len(result.components))
        repairs = 0
        repaired: Optional[Partition] = None

        # Section V-B: adjust the heuristic partition before giving up.
        while (
            result.verdict is not Verdict.REALIZABLE
            and repairs < self.config.max_partition_repairs
        ):
            with _obs_span("pipeline.repair", attempt=repairs + 1) as sp:
                candidate = self._repair_partition(formulas, partition, result)
                if candidate is None:
                    sp.set(moved=None)
                    break
                repairs += 1
                partition = candidate
                result = self._realizability(formulas, partition)
                sp.set(verdict=result.verdict.value)
            if result.verdict is Verdict.REALIZABLE:
                repaired = partition

        localization = None
        if (
            result.verdict is not Verdict.REALIZABLE
            and self.config.localize_on_failure
        ):
            with _obs_span("pipeline.localization", formulas=len(formulas)) as sp:
                checker = default_checker(
                    sorted(partition.inputs),
                    sorted(partition.outputs),
                    engine=self.config.engine,
                    limits=self.config.limits,
                )
                localization = localize(formulas, checker)
                sp.set(core=len(localization.core))

        return ConsistencyReport(
            translation=translation,
            realizability=result,
            partition=partition,
            verdict=result.verdict,
            localization=localization,
            repaired_partition=repaired,
            repair_attempts=repairs,
            seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------- component-level API
    def check_formulas(
        self, formulas: Sequence[Formula], partition: Partition
    ) -> RealizabilityResult:
        """Stage 2 only: realizability of *formulas* under *partition*.

        No repair loop, no localization — the unit the service layer
        composes.  Component outcomes are cached process-wide, so repeated
        calls over overlapping formula sets are cheap.
        """
        return self._realizability(list(formulas), partition)

    def check_component(self, component, partition: Partition):
        """Check a single variable-connected component under *partition*.

        Components (from :func:`repro.synthesis.modular.decompose`) are the
        individually checkable, individually cacheable unit; sessions and
        batch workers use this to re-analyse only what an edit dirtied.
        """
        from ..synthesis.realizability import check_component

        _fire_fault("check_component")
        return check_component(
            component,
            frozenset(partition.inputs),
            frozenset(partition.outputs),
            engine=self.config.engine,
            limits=self.config.limits,
        )

    # ------------------------------------------------------------- internals
    def _realizability(
        self, formulas: List[Formula], partition: Partition
    ) -> RealizabilityResult:
        return check_realizability(
            formulas,
            sorted(partition.inputs),
            sorted(partition.outputs),
            engine=self.config.engine,
            limits=self.config.limits,
            modular=self.config.modular,
        )

    def _repair_partition(
        self,
        formulas: List[Formula],
        partition: Partition,
        result: RealizabilityResult,
    ) -> Optional[Partition]:
        """Move one suspect input to the outputs.

        The paper: "The propositions belonging to the intermediated
        variables in the located formulas are targets to be adjusted."  A
        variable that is an input globally but appears on the response side
        of a failing component's requirement is such an intermediate.
        """
        from ..translate.partition import classify_requirement

        failing = result.failing_indices()
        candidates: List[str] = []
        for index in failing:
            classified = classify_requirement(formulas[index])
            for name in sorted(classified.outputs):
                if name in partition.inputs and name not in candidates:
                    candidates.append(name)
        if not candidates:
            # Fall back: any input of a failing component.
            for part in result.components:
                if part.verdict is Verdict.REALIZABLE:
                    continue
                for name in sorted(part.component.variables):
                    if name in partition.inputs and name not in candidates:
                        candidates.append(name)
        if not candidates:
            return None
        return partition.move_to_output(candidates[0])
