"""The incremental analysis graph: dependency-tracked pipeline stages.

Every stage of the SpecCC pipeline — parsing, per-sentence vocabulary
extraction, semantic analysis (Algorithm 1), per-sentence LTL translation,
time abstraction, partitioning, component realizability — is a pure
function of content the earlier stages produced.  This module gives those
stages one shared shape: a **node** is ``(stage, key)`` where the key is a
content signature of everything the computation reads, the node's value is
the computed artefact, and **edges** record which other nodes the value
was derived from.  Because keys are content signatures, invalidation is
free: an edit changes the signature, the changed node misses, and every
node whose signature is unaffected by the edit keeps hitting — editing one
sentence re-runs Algorithm 1 only for the vocabulary components that
sentence actually touches.

Two graph flavours cover the pipeline:

* **Per-document graphs** (``lru=False``) back a
  :class:`~repro.translate.translator.TranslationCache`: stages grow
  freely during one translation pass and :meth:`AnalysisGraph.retain`
  afterwards prunes any stage that outgrew its bound back to the keys the
  pass actually touched — exactly the hot set the next edit's re-check
  needs.
* **The process-wide shared graph** (:func:`shared_graph`, ``lru=True``)
  hosts the stages whose values are valid across documents, sessions and
  worker threads alike: semantic-analysis components (Algorithm 1) and
  realizability component outcomes.  Those stages evict least-recently
  used entries at insert time, since no single pass owns them.

All operations are thread safe (batch checking translates documents
concurrently over shared stages).  Values must be deterministic functions
of their keys: when two threads race on a miss, both compute, one insert
wins, and the results are identical by construction — which is also why
the caches are semantically transparent and reports stay byte-identical
to cache-less runs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

#: A node address: ``(stage name, content-signature key)``.
NodeId = Tuple[str, Hashable]


class StageStats(NamedTuple):
    """Size and traffic counters of one stage's memo."""

    size: int
    capacity: int
    hits: int
    misses: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "size": self.size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }


class _Stage:
    """One stage's bounded memo (always accessed under the graph lock)."""

    __slots__ = ("name", "capacity", "entries", "hits", "misses")

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        self.entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def stats(self) -> StageStats:
        return StageStats(len(self.entries), self.capacity, self.hits, self.misses)


class AnalysisGraph:
    """A dependency-tracked memo over named pipeline stages.

    *stages* names the stages the graph accepts; *max_entries* bounds each
    stage's memo (override per stage via *capacities*).  With ``lru=True``
    a stage evicts its least-recently-used entry as soon as an insert
    exceeds the bound; with ``lru=False`` stages may grow past the bound
    during a pass and are pruned by :meth:`retain` afterwards.
    """

    def __init__(
        self,
        stages: Sequence[str],
        max_entries: int = 2048,
        capacities: Optional[Mapping[str, int]] = None,
        lru: bool = False,
    ) -> None:
        capacities = dict(capacities or {})
        self._lock = threading.Lock()
        self._lru = lru
        self._stages: Dict[str, _Stage] = {
            name: _Stage(name, capacities.get(name, max_entries))
            for name in stages
        }
        #: node -> nodes its value was derived from (only non-empty sets).
        self._deps: Dict[NodeId, Tuple[NodeId, ...]] = {}

    # ------------------------------------------------------------- helpers
    def _stage(self, stage: str) -> _Stage:
        try:
            return self._stages[stage]
        except KeyError:
            raise KeyError(f"unknown stage {stage!r}") from None

    def stage_names(self) -> Tuple[str, ...]:
        return tuple(self._stages)

    # ------------------------------------------------------------- compute
    def compute(
        self,
        stage: str,
        key: Hashable,
        fn: Callable[[], object],
        deps: Sequence[NodeId] = (),
        touched: Optional[Mapping[str, set]] = None,
    ) -> object:
        """The cached value of node ``(stage, key)``, computing on a miss.

        *fn* runs outside the lock (it may be expensive); on a race the
        first insert wins and both callers observe identical values.
        *deps* records the edge set of the node — which nodes *fn* read —
        for observability (:meth:`dependencies` / :meth:`dependents`) and
        for :meth:`retain`'s edge garbage collection.  *touched*, when
        given, is a caller-local ``{stage: set(keys)}`` map the node is
        added to, feeding the end-of-pass :meth:`retain`.
        """
        if touched is not None:
            touched[stage].add(key)
        memo = self._stage(stage)
        with self._lock:
            if key in memo.entries:
                memo.hits += 1
                if self._lru:
                    memo.entries.move_to_end(key)
                return memo.entries[key]
            memo.misses += 1
        value = fn()
        with self._lock:
            if key not in memo.entries:
                memo.entries[key] = value
                if deps:
                    self._deps[(stage, key)] = tuple(deps)
                if self._lru:
                    while len(memo.entries) > memo.capacity:
                        evicted, _ = memo.entries.popitem(last=False)
                        self._deps.pop((stage, evicted), None)
            else:
                value = memo.entries[key]
        return value

    def contains(self, stage: str, key: Hashable) -> bool:
        """Pure membership probe — no counters, no LRU reordering."""
        with self._lock:
            return key in self._stage(stage).entries

    def get(self, stage: str, key: Hashable, default: object = None) -> object:
        """Counter-free peek at a node's value."""
        with self._lock:
            return self._stage(stage).entries.get(key, default)

    # --------------------------------------------------------------- edges
    def dependencies(self, stage: str, key: Hashable) -> Tuple[NodeId, ...]:
        """The nodes ``(stage, key)`` was computed from (recorded edges)."""
        with self._lock:
            return self._deps.get((stage, key), ())

    def dependents(self, stage: str, key: Hashable) -> Tuple[NodeId, ...]:
        """Reverse edges: the recorded nodes derived from ``(stage, key)``.

        Answers "what does editing this invalidate?" for diagnostics; the
        pipeline itself never needs the reverse direction because content
        signatures self-invalidate.
        """
        target = (stage, key)
        with self._lock:
            return tuple(
                node for node, deps in self._deps.items() if target in deps
            )

    # ------------------------------------------------------------- hygiene
    def retain(self, touched: Mapping[str, Iterable[Hashable]]) -> None:
        """End-of-pass GC: prune stages that outgrew their bound.

        For every stage in *touched* whose memo exceeds its capacity, keep
        only the keys the finished pass touched (the hot set the next
        incremental re-check will read) and drop the edges of everything
        pruned.  Cheap in the steady state: under-bound stages are left
        alone.
        """
        with self._lock:
            for name, keys in touched.items():
                memo = self._stages.get(name)
                if memo is None or len(memo.entries) <= memo.capacity:
                    continue
                keep = OrderedDict(
                    (key, memo.entries[key])
                    for key in keys
                    if key in memo.entries
                )
                for key in memo.entries:
                    if key not in keep:
                        self._deps.pop((name, key), None)
                memo.entries = keep

    def set_capacity(self, capacity: int, stage: Optional[str] = None) -> None:
        with self._lock:
            stages: List[_Stage] = (
                [self._stage(stage)] if stage is not None else list(self._stages.values())
            )
            for memo in stages:
                memo.capacity = capacity

    def clear(self) -> None:
        """Drop every node, edge and counter (benchmarks; memory bounds)."""
        with self._lock:
            for memo in self._stages.values():
                memo.entries.clear()
                memo.hits = 0
                memo.misses = 0
            self._deps.clear()

    def reset_counters(self) -> None:
        """Zero every stage's hit/miss counters, keeping cached values.

        The observability reset (:func:`repro.obs.metrics.reset_counters`)
        calls this so counter surfaces zero together without evicting
        anything — resetting telemetry must never change what computes.
        """
        with self._lock:
            for memo in self._stages.values():
                memo.hits = 0
                memo.misses = 0

    # ------------------------------------------------------- observability
    def stats(self) -> Dict[str, StageStats]:
        with self._lock:
            return {name: memo.stats() for name, memo in self._stages.items()}

    def sizes(self) -> Dict[str, int]:
        with self._lock:
            return {name: len(memo.entries) for name, memo in self._stages.items()}

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Picklable per-stage counters (worker processes ship these)."""
        return {name: stats.as_dict() for name, stats in self.stats().items()}


# ------------------------------------------------------ the shared graph
#: Stages whose nodes are valid process-wide: Algorithm 1 vocabulary
#: components (``semantics``) and realizability component outcomes
#: (``components``).  Sessions, one-shot checks, batch threads and pool
#: workers all read the same nodes, so reuse crosses every entry point.
SHARED_STAGE_CAPACITIES: Dict[str, int] = {
    "semantics": 4096,
    "components": 2048,
}

_shared = AnalysisGraph(
    stages=tuple(SHARED_STAGE_CAPACITIES),
    capacities=SHARED_STAGE_CAPACITIES,
    lru=True,
)


def shared_graph() -> AnalysisGraph:
    """The process-wide analysis graph (cross-document stages)."""
    return _shared
