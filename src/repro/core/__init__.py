"""SpecCC pipeline: the paper's primary contribution, end to end."""

from .pipeline import ConsistencyReport, SpecCC, SpecCCConfig

__all__ = ["ConsistencyReport", "SpecCC", "SpecCCConfig"]
