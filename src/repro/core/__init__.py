"""SpecCC pipeline: the paper's primary contribution, end to end."""

# graph first: lower layers (translate, synthesis) import it while
# pipeline's own import below is still in progress.
from .graph import AnalysisGraph, StageStats, shared_graph
from .pipeline import ConsistencyReport, SpecCC, SpecCCConfig

__all__ = [
    "AnalysisGraph",
    "ConsistencyReport",
    "SpecCC",
    "SpecCCConfig",
    "StageStats",
    "shared_graph",
]
