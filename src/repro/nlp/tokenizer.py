"""Tokenisation of requirement documents.

A specification file is a sequence of requirements, one sentence each
(Section IV-C: "A specification here is a set of sentences").  The
tokenizer lower-cases words, keeps hyphenated compounds ("auto-control")
as single tokens, separates punctuation, and splits a document into
sentences at full stops.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class Token:
    """A single word or punctuation mark with its position."""

    text: str
    index: int

    @property
    def is_word(self) -> bool:
        return bool(re.match(r"[a-z0-9]", self.text))


_TOKEN_RE = re.compile(
    r"""
      [a-zA-Z][a-zA-Z0-9]*(?:[-'][a-zA-Z0-9]+)*   # words, incl. hyphenated
    | [0-9]+                                      # numbers
    | [.,;:!?()]                                  # punctuation
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Tokenise one sentence (or fragment) into lower-case tokens."""
    tokens = []
    for index, match in enumerate(_TOKEN_RE.finditer(text)):
        tokens.append(Token(match.group().lower(), index))
    return tokens


def split_sentences(document: str) -> Iterator[str]:
    """Split a requirement document into sentences.

    Sentences end at a full stop or at a line break; blank lines and
    comment lines (starting with ``#``) are skipped, so requirement files
    can carry annotations.
    """
    for raw_line in document.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        for part in re.split(r"\.\s+|\.$", line):
            part = part.strip()
            if part:
                yield part


def tokenize_document(document: str) -> List[List[Token]]:
    """Tokenise every sentence of *document*."""
    return [tokenize(sentence) for sentence in split_sentences(document)]
