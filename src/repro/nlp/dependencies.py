"""Typed dependency extraction from parsed clauses.

The paper uses the Stanford parser's dependency relations in two places:

* clause decomposition (handled structurally by :mod:`repro.nlp.grammar`);
* the ``<subject, dependent>`` pairs feeding Algorithm 1's antonym
  analysis, where the dependents are the adjectives/adverbs predicated of
  each subject.

:func:`extract_dependencies` reproduces the second: for every clause it
emits relations named after the Stanford scheme (``nsubj``, ``nsubjpass``,
``acomp``, ``neg``, ``conj``) that downstream modules consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from .grammar import Clause, Sentence


@dataclass(frozen=True)
class Dependency:
    """A typed dependency ``relation(head, dependent)``."""

    relation: str
    head: str
    dependent: str


def clause_dependencies(clause: Clause) -> List[Dependency]:
    """Dependencies of a single clause."""
    deps: List[Dependency] = []
    predicate = clause.verb or clause.complement or ""
    subject_relation = "nsubjpass" if clause.passive else "nsubj"
    for subject in clause.subjects:
        deps.append(Dependency(subject_relation, predicate, subject))
    for left, right in zip(clause.subjects, clause.subjects[1:]):
        deps.append(Dependency("conj", left, right))
    if clause.complement is not None and clause.verb is None:
        for subject in clause.subjects:
            deps.append(Dependency("acomp", subject, clause.complement))
    if clause.object is not None:
        deps.append(Dependency("dobj", predicate, clause.object))
    if clause.negated:
        deps.append(Dependency("neg", predicate, "not"))
    if clause.particle is not None:
        deps.append(Dependency("prt", predicate, clause.particle))
    return deps


def extract_dependencies(sentences: Sequence[Sentence]) -> List[Dependency]:
    """All dependencies of a specification, in order."""
    deps: List[Dependency] = []
    for sentence in sentences:
        for clause in sentence.all_clauses():
            deps.extend(clause_dependencies(clause))
    return deps


def subject_dependents(sentences: Sequence[Sentence]) -> Dict[str, Set[str]]:
    """Algorithm 1's input: for each subject, the set of adjective/adverb
    dependents (antonym candidates) observed across the specification."""
    table: Dict[str, Set[str]] = {}
    for dep in extract_dependencies(sentences):
        if dep.relation == "acomp":
            table.setdefault(dep.head, set()).add(dep.dependent)
    return table


def sentence_vocabulary(sentence: Sentence) -> tuple:
    """One sentence's contribution to Algorithm 1's input, hashably.

    A sorted ``((subject, (dependents...)), ...)`` tuple — the analysis
    graph's per-sentence *vocabulary node*.  Unioning these over a
    document reproduces :func:`subject_dependents` exactly, which is what
    lets the semantic analysis attribute an edit to the vocabulary
    components it actually touches.
    """
    return tuple(
        (subject, tuple(sorted(dependents)))
        for subject, dependents in sorted(subject_dependents([sentence]).items())
    )


def candidate_subjects(sentence: Sentence) -> frozenset:
    """Subjects of *sentence* that can own antonym-candidate propositions.

    A proposition is an antonym candidate when its clause carries an
    adjective complement; :meth:`SemanticAnalysis.reduce
    <repro.translate.semantics.SemanticAnalysis.reduce>` then reads
    exactly the antonym pairs of the proposition's subject.  The set
    therefore bounds which slice of a specification-wide analysis one
    sentence's translation can depend on.  Pronoun subjects resolve to
    the main clause's first subject, mirroring the template layer.
    """
    main = sentence.main.clauses[0].subjects[0] if sentence.main.clauses else None
    subjects: Set[str] = set()
    for clause in sentence.all_clauses():
        if clause.complement is None:
            continue
        for subject in clause.subjects:
            if subject == "it" and main is not None:
                subject = main
            subjects.add(subject)
    return frozenset(subjects)
